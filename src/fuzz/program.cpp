#include "fuzz/program.h"

#include <array>
#include <sstream>

namespace sack::fuzz {

namespace {

constexpr std::array<std::string_view, kOpCount> kOpNames = {
    "open",     "close",      "read",       "write",     "lseek",
    "dup",      "stat",       "mkdir",      "rmdir",     "unlink",
    "rename",   "symlink",    "link",       "chmod",     "truncate",
    "setxattr", "getxattr",   "readdir",    "chdir",     "mmap",
    "munmap",   "pipe",       "socket",     "socketpair", "bind",
    "listen",   "connect",    "accept",     "send",      "recv",
    "fork",     "kill",       "waitpid",    "execve",    "sds_event",
    "heartbeat", "policy_reload", "clock_tick",
};

}  // namespace

std::string_view op_name(OpCode code) {
  return kOpNames.at(static_cast<std::size_t>(code));
}

OpCode op_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kOpNames.size(); ++i) {
    if (kOpNames[i] == name) return static_cast<OpCode>(i);
  }
  return OpCode::kCount;
}

std::string Program::to_text() const {
  std::ostringstream out;
  for (const Op& op : ops) {
    out << op_name(op.code) << ' ' << op.a << ' ' << op.b << ' ' << op.c
        << ' ' << op.d << '\n';
  }
  return out.str();
}

Program Program::from_text(std::string_view text) {
  Program prog;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string name;
    if (!(ls >> name)) continue;
    OpCode code = op_from_name(name);
    if (code == OpCode::kCount) continue;
    Op op;
    op.code = code;
    ls >> op.a >> op.b >> op.c >> op.d;  // missing args stay 0
    prog.ops.push_back(op);
  }
  return prog;
}

}  // namespace sack::fuzz
