// Runtime mediation oracle.
//
// Consumes the MediationWitness event stream a live kernel emits and checks,
// per syscall invocation, the same contract sack-hookcheck proves statically
// from docs/hook_manifest.toml — but against what actually happened:
//
//   guarded-mutation   every state-mutation site must be preceded, in the
//                      same syscall scope, by an allow verdict from one of
//                      its guard hooks (see kSiteGuards in oracle.cpp) —
//                      unless the syscall is listed [unmediated] in the
//                      manifest;
//   no-swallow         a chain denial must surface as the syscall's errno
//                      (exactly, except for `capable` chains, whose callers
//                      legitimately remap the error as real kernels do);
//   no-reorder         a guard verdict arriving only after the mutation it
//                      guards is a violation (the mutation finds no prior
//                      allow verdict);
//   manifest-drift     a syscall scope whose name appears in neither the
//                      manifest's [syscall.*] list nor [unmediated] is
//                      unknown to the contract and flagged;
//   paired-chains      every chain_verdict must match a pending hook_enter
//                      (LIFO, so nested dispatches like capable() inside a
//                      hook body pair correctly);
//   first-deny-wins    a module's denial (module_verdict) must surface as
//                      that chain's verdict — a later module in the stack
//                      allowing cannot overwrite it (this is the witness
//                      that an SFI denial is never swallowed);
//   universal-gate     when the manifest declares universal_require hooks
//                      (the SFI task_syscall gate), every non-exempt scope
//                      must run the gate chain, and the gate must have
//                      allowed before any mutation site fires — even in
//                      [unmediated] syscalls, which have no per-object hook
//                      but still carry the flow gate.
//
// Events arriving outside any syscall scope (boot, harness setup,
// advance_clock_ms ticks) are intentionally ignored: the contract is scoped
// to the syscall surface.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/manifest.h"
#include "kernel/lsm/module.h"
#include "kernel/lsm/witness.h"

namespace sack::fuzz {

struct Violation {
  std::string rule;     // "guarded-mutation", "no-swallow", ...
  std::string syscall;  // scope the violation was observed in
  std::string detail;
};

// One completed hook chain inside a syscall scope.
struct ChainRecord {
  std::string hook;
  Errno verdict = Errno::ok;
};

class MediationOracle final : public kernel::MediationWitness {
 public:
  explicit MediationOracle(analysis::Manifest manifest);

  // --- witness interface (called by the kernel) ---
  void syscall_enter(std::string_view name) override;
  void syscall_exit(std::string_view name) override;
  void hook_enter(std::string_view hook) override;
  void chain_verdict(Errno verdict) override;
  void module_verdict(std::string_view module, Errno verdict) override;
  void mutation(std::string_view site) override;

  // --- executor interface ---
  // Report the errno the syscall wrapper returned for the op whose outermost
  // scope most recently closed; this is where no-swallow is decided.
  void syscall_result(Errno err);

  // Chains observed in the most recently completed outermost scope, for
  // coverage accounting.
  const std::vector<ChainRecord>& last_chains() const { return last_chains_; }
  const std::string& last_syscall() const { return last_name_; }

  const std::vector<Violation>& violations() const { return violations_; }
  void clear_violations() { violations_.clear(); }

  std::uint64_t syscalls_observed() const { return syscalls_observed_; }
  std::uint64_t chains_observed() const { return chains_observed_; }
  std::uint64_t mutations_observed() const { return mutations_observed_; }

 private:
  struct Scope {
    std::string name;
    bool unmediated = false;
    bool universal_exempt = false;        // listed in universal_exempt
    bool gate_seen = false;               // a universal-gate chain completed
    bool gate_allowed = false;            // ...and its verdict was ok
    std::vector<ChainRecord> chains;      // completed, in order
    std::vector<std::string> pending;     // dispatched, verdict outstanding
    Errno first_denial = Errno::ok;
    bool denial_from_capable = false;
    // Short-circuiting module denial awaiting its chain_verdict.
    Errno module_denial = Errno::ok;
    std::string module_denier;
  };

  void violate(std::string rule, const std::string& syscall,
               std::string detail);

  analysis::Manifest manifest_;
  std::vector<std::string> known_syscalls_;  // manifest [syscall.*] names
  bool universal_active_ = false;  // manifest declares universal_require
  std::vector<Scope> scopes_;

  // Closed-outermost-scope summary, consumed by syscall_result().
  std::string last_name_;
  std::vector<ChainRecord> last_chains_;
  Errno last_denial_ = Errno::ok;
  bool last_denial_capable_ = false;
  bool result_pending_ = false;

  std::vector<Violation> violations_;
  std::uint64_t syscalls_observed_ = 0;
  std::uint64_t chains_observed_ = 0;
  std::uint64_t mutations_observed_ = 0;
};

// Head-of-stack observation module: overrides every hook only to report the
// dispatch to the witness, then allows. Installed with add_lsm_front so it
// sees chains before any enforcing module can deny and short-circuit.
class WitnessSentinel final : public kernel::SecurityModule {
 public:
  explicit WitnessSentinel(kernel::MediationWitness* witness)
      : witness_(witness) {}

  std::string_view name() const override { return "fuzz_sentinel"; }

  Errno task_syscall(kernel::Task&, std::string_view) override {
    return seen("task_syscall");
  }
  Errno file_open(kernel::Task&, const std::string&,
                          const kernel::Inode&, kernel::AccessMask) override {
    return seen("file_open");
  }
  Errno file_permission(kernel::Task&, const kernel::File&,
                                kernel::AccessMask) override {
    return seen("file_permission");
  }
  Errno file_ioctl(kernel::Task&, const kernel::File&,
                           std::uint32_t) override {
    return seen("file_ioctl");
  }
  Errno mmap_file(kernel::Task&, const kernel::File&,
                          kernel::AccessMask) override {
    return seen("mmap_file");
  }
  Errno path_mknod(kernel::Task&, const std::string&,
                           kernel::InodeType) override {
    return seen("path_mknod");
  }
  Errno path_unlink(kernel::Task&, const std::string&) override {
    return seen("path_unlink");
  }
  Errno path_mkdir(kernel::Task&, const std::string&) override {
    return seen("path_mkdir");
  }
  Errno path_rmdir(kernel::Task&, const std::string&) override {
    return seen("path_rmdir");
  }
  Errno path_rename(kernel::Task&, const std::string&,
                            const std::string&) override {
    return seen("path_rename");
  }
  Errno path_symlink(kernel::Task&, const std::string&,
                             const std::string&) override {
    return seen("path_symlink");
  }
  Errno path_link(kernel::Task&, const std::string&,
                          const std::string&) override {
    return seen("path_link");
  }
  Errno path_truncate(kernel::Task&, const std::string&) override {
    return seen("path_truncate");
  }
  Errno path_chmod(kernel::Task&, const std::string&,
                           kernel::FileMode) override {
    return seen("path_chmod");
  }
  Errno path_chown(kernel::Task&, const std::string&, kernel::Uid,
                           kernel::Gid) override {
    return seen("path_chown");
  }
  Errno inode_getattr(kernel::Task&, const std::string&) override {
    return seen("inode_getattr");
  }
  Errno inode_readlink(kernel::Task&, const std::string&) override {
    return seen("inode_readlink");
  }
  Errno inode_listxattr(kernel::Task&, const std::string&) override {
    return seen("inode_listxattr");
  }
  Errno inode_getxattr(kernel::Task&, const std::string&,
                               const std::string&) override {
    return seen("inode_getxattr");
  }
  Errno inode_setxattr(kernel::Task&, const std::string&,
                               const std::string&,
                               const std::string&) override {
    return seen("inode_setxattr");
  }
  Errno bprm_check_security(kernel::Task&,
                                    const std::string&) override {
    return seen("bprm_check_security");
  }
  void bprm_committed_creds(kernel::Task&, const std::string&) override {
    (void)seen("bprm_committed_creds");
  }
  Errno task_alloc(kernel::Task&, kernel::Task&) override {
    return seen("task_alloc");
  }
  void task_free(kernel::Task&) override { (void)seen("task_free"); }
  Errno task_kill(kernel::Task&, kernel::Task&, int) override {
    return seen("task_kill");
  }
  void clock_tick(SimTime) override { (void)seen("clock_tick"); }
  Errno capable(const kernel::Task&, kernel::Capability) override {
    return seen("capable");
  }
  Errno socket_create(kernel::Task&, kernel::SockFamily,
                              kernel::SockType) override {
    return seen("socket_create");
  }
  Errno socket_bind(kernel::Task&, const kernel::Socket&) override {
    return seen("socket_bind");
  }
  Errno socket_connect(kernel::Task&, const kernel::Socket&) override {
    return seen("socket_connect");
  }
  Errno socket_listen(kernel::Task&, const kernel::Socket&,
                              int) override {
    return seen("socket_listen");
  }
  Errno socket_accept(kernel::Task&, const kernel::Socket&) override {
    return seen("socket_accept");
  }
  Errno socket_sendmsg(kernel::Task&, const kernel::Socket&) override {
    return seen("socket_sendmsg");
  }
  Errno socket_recvmsg(kernel::Task&, const kernel::Socket&) override {
    return seen("socket_recvmsg");
  }

 private:
  Errno seen(std::string_view hook) {
    if (witness_) witness_->hook_enter(hook);
    return Errno::ok;
  }
  kernel::MediationWitness* witness_;
};

}  // namespace sack::fuzz
