#include "fuzz/mutate.h"

#include <algorithm>

namespace sack::fuzz {

namespace {

Op random_op(Rng& rng) {
  Op op;
  op.code = static_cast<OpCode>(rng.below(kOpCount));
  op.a = static_cast<std::uint32_t>(rng.below(3));
  op.b = static_cast<std::uint32_t>(rng.below(16));
  op.c = static_cast<std::uint32_t>(rng.below(16));
  op.d = static_cast<std::uint32_t>(rng.below(1u << 12));
  return op;
}

}  // namespace

Program generate(Rng& rng, std::size_t min_len, std::size_t max_len) {
  Program prog;
  const std::size_t len = static_cast<std::size_t>(
      rng.range(static_cast<std::int64_t>(min_len),
                static_cast<std::int64_t>(max_len)));
  prog.ops.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    Op op = random_op(rng);
    // Bias toward coherent lifecycles: after a resource-creating op, lean on
    // the slot it just filled so read/write/bind land on live descriptors.
    if (!prog.ops.empty() && rng.chance(0.5)) {
      const Op& prev = prog.ops.back();
      op.a = prev.a;           // same task
      op.b = prev.c;           // fd slot the previous op installed into
    }
    prog.ops.push_back(op);
  }
  return prog;
}

Program mutate(Rng& rng, const Program& base) {
  Program prog = base;
  if (prog.ops.empty()) return generate(rng);
  switch (rng.below(5)) {
    case 0: {  // insert
      const std::size_t at = rng.below(prog.ops.size() + 1);
      prog.ops.insert(prog.ops.begin() + static_cast<std::ptrdiff_t>(at),
                      random_op(rng));
      break;
    }
    case 1: {  // delete
      if (prog.ops.size() > 1) {
        const std::size_t at = rng.below(prog.ops.size());
        prog.ops.erase(prog.ops.begin() + static_cast<std::ptrdiff_t>(at));
      }
      break;
    }
    case 2: {  // replace
      prog.ops[rng.below(prog.ops.size())] = random_op(rng);
      break;
    }
    case 3: {  // tweak one argument
      Op& op = prog.ops[rng.below(prog.ops.size())];
      switch (rng.below(4)) {
        case 0: op.a = static_cast<std::uint32_t>(rng.below(3)); break;
        case 1: op.b = static_cast<std::uint32_t>(rng.below(16)); break;
        case 2: op.c = static_cast<std::uint32_t>(rng.below(16)); break;
        default: op.d = static_cast<std::uint32_t>(rng.below(1u << 12)); break;
      }
      break;
    }
    default: {  // duplicate a run (amplifies lifecycles like open/write/close)
      const std::size_t at = rng.below(prog.ops.size());
      const std::size_t run =
          std::min<std::size_t>(1 + rng.below(4), prog.ops.size() - at);
      std::vector<Op> chunk(prog.ops.begin() + static_cast<std::ptrdiff_t>(at),
                            prog.ops.begin() +
                                static_cast<std::ptrdiff_t>(at + run));
      prog.ops.insert(prog.ops.begin() + static_cast<std::ptrdiff_t>(at + run),
                      chunk.begin(), chunk.end());
      break;
    }
  }
  if (prog.ops.size() > 256) prog.ops.resize(256);
  return prog;
}

Program splice(Rng& rng, const Program& a, const Program& b) {
  if (a.ops.empty()) return b;
  if (b.ops.empty()) return a;
  Program prog;
  const std::size_t cut_a = rng.below(a.ops.size() + 1);
  const std::size_t cut_b = rng.below(b.ops.size());
  prog.ops.assign(a.ops.begin(),
                  a.ops.begin() + static_cast<std::ptrdiff_t>(cut_a));
  prog.ops.insert(prog.ops.end(),
                  b.ops.begin() + static_cast<std::ptrdiff_t>(cut_b),
                  b.ops.end());
  if (prog.ops.empty()) prog.ops.push_back(a.ops.front());
  if (prog.ops.size() > 256) prog.ops.resize(256);
  return prog;
}

}  // namespace sack::fuzz
