// Corpus management: a directory of .prog text files plus in-memory
// distillation (keep only coverage-adding inputs) and greedy minimization.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fuzz/program.h"

namespace sack::fuzz {

class Corpus {
 public:
  void add(Program prog) { programs_.push_back(std::move(prog)); }
  const std::vector<Program>& programs() const { return programs_; }
  bool empty() const { return programs_.empty(); }
  std::size_t size() const { return programs_.size(); }

  // Loads every *.prog file in `dir` (sorted by filename for determinism).
  // Returns the number of programs loaded; a missing directory loads zero.
  std::size_t load_dir(const std::string& dir);

  // Writes programs as 000.prog, 001.prog, ... into `dir` (created if
  // needed). Returns the number written.
  std::size_t save_dir(const std::string& dir) const;

 private:
  std::vector<Program> programs_;
};

// Greedy one-pass minimization: repeatedly drop each op and keep the smaller
// program whenever `still_interesting` holds (e.g. "still violates").
Program minimize(const Program& prog,
                 const std::function<bool(const Program&)>& still_interesting);

}  // namespace sack::fuzz
