// The coverage-guided campaign loop.
//
// seed corpus -> (mutate | splice | generate) -> execute under the oracle ->
// keep coverage-adding inputs -> stop at plateau or exec budget. Findings
// (programs whose execution produced violations) are minimized before being
// reported, so each one reads as a near-minimal reproducer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/coverage.h"
#include "fuzz/executor.h"
#include "fuzz/program.h"

namespace sack::fuzz {

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t max_execs = 20000;
  // Stop after this many consecutive executions without new coverage.
  std::size_t plateau_execs = 2000;
  bool racer = true;        // arm the hostile RacerModule
  bool minimize_findings = true;
  std::string corpus_dir;   // optional: seed corpus to load
};

struct Finding {
  Program program;          // minimized (if enabled)
  std::vector<Violation> violations;
};

struct FuzzStats {
  std::size_t execs = 0;
  std::size_t coverage_keys = 0;
  std::size_t corpus_size = 0;
  std::size_t violations = 0;         // total, pre-dedup
  std::size_t plateau_execs = 0;      // execs when coverage last grew
  std::uint64_t elapsed_ms = 0;
  std::uint64_t time_to_plateau_ms = 0;
  bool hit_plateau = false;
};

class Fuzzer {
 public:
  Fuzzer(FuzzConfig config, analysis::Manifest manifest);

  // Runs one campaign to completion. Deterministic for a given config
  // (timing fields in stats aside).
  void run();

  const FuzzStats& stats() const { return stats_; }
  const std::vector<Finding>& findings() const { return findings_; }
  const Corpus& corpus() const { return corpus_; }
  Coverage& coverage() { return coverage_; }

 private:
  // Executes `prog`, updates coverage/corpus/stats, records findings.
  void step(const Program& prog, std::uint64_t racer_seed);

  FuzzConfig config_;
  Executor executor_;
  Corpus corpus_;
  Coverage coverage_;
  FuzzStats stats_;
  std::vector<Finding> findings_;
};

}  // namespace sack::fuzz
