// Fuzz programs: deterministic, seedable syscall sequences.
//
// A Program is a flat list of Ops, syzkaller-style: each Op names one
// syscall (or one harness action — SDS event injection, policy reload,
// clock advance) plus four small integer arguments the executor maps onto
// concrete tasks, paths, fd slots, and sizes. Keeping arguments abstract
// makes every byte of the program meaningful under mutation and makes the
// text form diffable and checkable into the corpus.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sack::fuzz {

enum class OpCode : std::uint8_t {
  // file
  open, close, read, write, lseek, dup, stat, mkdir, rmdir, unlink, rename,
  symlink, link, chmod, truncate, setxattr, getxattr, readdir, chdir,
  // memory
  mmap, munmap,
  // ipc
  pipe, socket, socketpair, bind, listen, connect, accept, send, recv,
  // process
  fork, kill, waitpid, execve,
  // environment (each expands to real syscalls or a clock advance)
  sds_event, heartbeat, policy_reload, clock_tick,
  kCount,
};

inline constexpr std::size_t kOpCount = static_cast<std::size_t>(OpCode::kCount);

// Stable names, one per OpCode, used by the .prog text format.
std::string_view op_name(OpCode code);
// Returns kCount for an unknown name.
OpCode op_from_name(std::string_view name);

struct Op {
  OpCode code = OpCode::open;
  // Abstract arguments; meaning depends on the op (see docs/FUZZER.md):
  // typically a = task index, b = path/fd-slot/event selector,
  // c = destination slot / secondary selector, d = flags/size material.
  std::uint32_t a = 0, b = 0, c = 0, d = 0;

  friend bool operator==(const Op&, const Op&) = default;
};

struct Program {
  std::vector<Op> ops;

  friend bool operator==(const Program&, const Program&) = default;

  // One op per line: "<name> <a> <b> <c> <d>". '#' starts a comment.
  std::string to_text() const;
  // Parses the text form; unknown op names and malformed lines are skipped
  // (forward compatibility for corpora written by newer op tables), so this
  // never fails — an unreadable file simply yields an empty program.
  static Program from_text(std::string_view text);
};

}  // namespace sack::fuzz
