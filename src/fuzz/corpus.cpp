#include "fuzz/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sack::fuzz {

namespace fs = std::filesystem;

std::size_t Corpus::load_dir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return 0;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".prog")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::size_t loaded = 0;
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) continue;
    std::ostringstream text;
    text << in.rdbuf();
    Program prog = Program::from_text(text.str());
    if (prog.ops.empty()) continue;
    programs_.push_back(std::move(prog));
    ++loaded;
  }
  return loaded;
}

std::size_t Corpus::save_dir(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  std::size_t written = 0;
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "%03zu.prog", i);
    std::ofstream out(fs::path(dir) / name);
    if (!out) continue;
    out << programs_[i].to_text();
    ++written;
  }
  return written;
}

Program minimize(const Program& prog,
                 const std::function<bool(const Program&)>& still_interesting) {
  Program best = prog;
  bool shrunk = true;
  while (shrunk && best.ops.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < best.ops.size();) {
      Program candidate = best;
      candidate.ops.erase(candidate.ops.begin() +
                          static_cast<std::ptrdiff_t>(i));
      if (!candidate.ops.empty() && still_interesting(candidate)) {
        best = std::move(candidate);
        shrunk = true;
        // Re-test the same index: it now holds the next op.
      } else {
        ++i;
      }
    }
  }
  return best;
}

}  // namespace sack::fuzz
