#include "fuzz/env.h"

#include "kernel/process.h"
#include "kernel/task.h"

namespace sack::fuzz {

using kernel::Cred;
using kernel::Fd;
using kernel::Kernel;
using kernel::Process;
using kernel::Task;

const std::string_view kFuzzPolicy = R"(
states { normal = 0; emergency = 1; lockdown = 2; }
initial normal;
transitions {
  normal -> emergency on crash_detected;
  emergency -> normal on emergency_cleared;
  lockdown -> normal on sds_recovered;
}
watchdog {
  deadline 2000;
  failsafe lockdown;
}
permissions { MEDIA_READ; DOOR_CONTROL; }
state_per {
  normal: MEDIA_READ;
  emergency: MEDIA_READ, DOOR_CONTROL;
}
per_rules {
  MEDIA_READ { allow * /var/media/** read getattr; }
  DOOR_CONTROL { allow /usr/bin/admin /dev/vehicle/door* write ioctl; }
}
)";

const std::string_view kFuzzEvents[4] = {
    "crash_detected", "emergency_cleared", "sds_recovered", "bogus_event"};

const std::string_view kFuzzSfiProfiles = R"(
profile /usr/bin/admin {
  states { run }
  initial run;
  flows { run -> run on *; }
}
profile /usr/bin/media {
  states { run }
  initial run;
  flows { run -> run on *; }
}
profile /usr/bin/sds_daemon {
  states { run }
  initial run;
  flows {
    run -> run on *;
    deny run on sys_chdir;
  }
}
)";

Errno RacerModule::socket_bind(Task& task, const kernel::Socket&) {
  // TOCTOU canary: with 1-in-4 probability, close a handful of low
  // descriptors from inside the bind chain. A syscall that re-fetches its fd
  // after the verdict instead of pinning the description it validated will
  // dereference a dead slot here.
  if (enabled_ && rng_.below(4) == 0) {
    for (int i = 0; i < 3; ++i) {
      (void)task.fds().remove(Fd(static_cast<Fd::rep_type>(rng_.below(12))));
    }
  }
  return Errno::ok;
}

Errno RacerModule::file_permission(Task&, const kernel::File&,
                                           kernel::AccessMask) {
  // Interrupt analogue: deliver an SDS situation event mid-syscall so the
  // situation state (and thus SACK's verdicts) can change between two hook
  // chains of the same program.
  if (enabled_ && sack_ && sack_->policy_loaded() && rng_.below(16) == 0) {
    (void)sack_->deliver_event(kFuzzEvents[rng_.below(3)]);
  }
  return Errno::ok;
}

FuzzEnv::FuzzEnv(kernel::MediationWitness* witness, std::uint64_t racer_seed) {
  sack_ = static_cast<core::SackModule*>(kernel_.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  sfi_ = static_cast<sfi::SfiModule*>(
      kernel_.add_lsm(std::make_unique<sfi::SfiModule>()));
  racer_ = static_cast<RacerModule*>(
      kernel_.add_lsm(std::make_unique<RacerModule>()));

  // Fixtures the path table points at.
  kernel_.vfs().mkdir_p("/var/media");
  Process boot(kernel_, kernel_.init_task());
  (void)boot.write_file("/usr/bin/admin", "ELF");
  (void)boot.write_file("/usr/bin/media", "ELF");
  (void)boot.write_file("/usr/bin/sds_daemon", "ELF");
  (void)boot.write_file("/var/media/track.pcm", "PCMDATA");
  (void)boot.write_file("/var/media/x", "X");
  (void)boot.write_file("/dev/vehicle/door0", "");
  (void)boot.write_file("/etc/cfg", "k=v");

  (void)sack_->load_policy_text(kFuzzPolicy);
  (void)sfi_->load_policy_text(kFuzzSfiProfiles);

  Cred media_cred = Cred::user(1000, 1000);
  tasks_[0] = &kernel_.spawn_task("admin", Cred::root(), "/usr/bin/admin");
  tasks_[1] = &kernel_.spawn_task("media", media_cred, "/usr/bin/media");
  tasks_[2] = &kernel_.spawn_task("sds", Cred::root(), "/usr/bin/sds_daemon");

  if (racer_seed != 0) racer_->arm(racer_seed, sack_);

  // Sentinel goes in front of everything (including the capability module)
  // and the witness is attached last, so env construction itself produces no
  // oracle traffic.
  kernel_.add_lsm_front(std::make_unique<WitnessSentinel>(witness));
  kernel_.set_mediation_witness(witness);
}

Task& FuzzEnv::task(std::uint32_t index) {
  return *tasks_[index % kTaskCount];
}

std::uint32_t FuzzEnv::state_id() const {
  const core::SituationStateMachine* ssm = sack_->ssm();
  if (!ssm) return kStateUnknown;
  return static_cast<std::uint32_t>(ssm->current_encoding());
}

}  // namespace sack::fuzz
