// Program generation and mutation, all driven by a caller-owned Rng so a
// campaign seed reproduces the exact input stream.
#pragma once

#include "fuzz/program.h"
#include "util/rng.h"

namespace sack::fuzz {

// A fresh random program of ~min_len..max_len ops with slot-coherent
// arguments (ops that need an fd tend to index slots earlier ops filled).
Program generate(Rng& rng, std::size_t min_len = 5, std::size_t max_len = 40);

// One mutation step: insert / delete / replace an op, tweak one argument, or
// duplicate a run. Never returns an empty program.
Program mutate(Rng& rng, const Program& base);

// Crossover: a prefix of `a` spliced to a suffix of `b`.
Program splice(Rng& rng, const Program& a, const Program& b);

}  // namespace sack::fuzz
