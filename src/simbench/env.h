// Benchmark environments: a booted simulated kernel with a selectable MAC
// stack and a prepared "lmbench" workload process.
//
// Table II's three columns are three of these configurations; Table III and
// Fig 3 use the same builder with synthetic policies swapped in.
#pragma once

#include <memory>
#include <string>

#include "apparmor/apparmor.h"
#include "core/policy.h"
#include "core/sack_module.h"
#include "kernel/kernel.h"
#include "kernel/process.h"

namespace sack::simbench {

enum class BenchMac : std::uint8_t {
  none,                   // LSM framework without MAC modules (RISC-V baseline)
  apparmor,               // the paper's Table II baseline
  sack_enhanced_apparmor, // SACK as an AppArmor extension
  independent_sack,       // SACK with its own enforcement
};

std::string_view bench_mac_name(BenchMac mac);

struct EnvOptions {
  BenchMac mac = BenchMac::apparmor;
  // Confine the bench process under the "lmbench" AppArmor profile (so the
  // profile matcher actually runs; an unconfined task short-circuits).
  bool confine_bench_task = true;
  // Replace the default SACK policy with a synthetic one (Table III, Fig 3).
  std::optional<core::SackPolicy> sack_policy;
  core::RuleSetKind ruleset = core::RuleSetKind::compiled;
};

class BenchEnv {
 public:
  explicit BenchEnv(EnvOptions options);
  BenchEnv() : BenchEnv(EnvOptions{}) {}
  ~BenchEnv();

  kernel::Kernel& kernel() { return *kernel_; }
  kernel::Task& task() { return *bench_task_; }
  kernel::Process process() { return {*kernel_, *bench_task_}; }
  kernel::Process root_process();  // for event writes etc.

  core::SackModule* sack() { return sack_; }
  apparmor::AppArmorModule* apparmor() { return apparmor_; }

  // A second task for ping-pong workloads (context switch).
  kernel::Task& peer_task() { return *peer_task_; }
  // A scratch task whose image the exec workload keeps replacing.
  kernel::Task& exec_task() { return *exec_task_; }

  static constexpr std::string_view kWorkDir = "/tmp/bench";
  static constexpr std::string_view kRereadFile = "/var/bench/readfile";
  static constexpr std::string_view kCriticalFile = "/var/bench/critical";
  static constexpr std::string_view kExecTarget = "/usr/bin/lat_exec";
  static constexpr std::size_t kRereadFileSize = 1 << 20;  // 1 MiB

 private:
  void populate();

  std::unique_ptr<kernel::Kernel> kernel_;
  core::SackModule* sack_ = nullptr;
  apparmor::AppArmorModule* apparmor_ = nullptr;
  kernel::Task* bench_task_ = nullptr;
  kernel::Task* peer_task_ = nullptr;
  kernel::Task* exec_task_ = nullptr;
};

}  // namespace sack::simbench
