#include "simbench/env.h"

#include "simbench/policy_gen.h"
#include "util/log.h"

namespace sack::simbench {

using kernel::Cred;

std::string_view bench_mac_name(BenchMac mac) {
  switch (mac) {
    case BenchMac::none: return "no-MAC";
    case BenchMac::apparmor: return "AppArmor (baseline)";
    case BenchMac::sack_enhanced_apparmor: return "SACK-enhanced AppArmor";
    case BenchMac::independent_sack: return "Independent SACK";
  }
  return "?";
}

namespace {

// The lmbench profile grants everything the workloads touch; the cost we
// measure is the *mediation*, not artificial denials.
constexpr std::string_view kBenchProfiles = R"(
profile lmbench /usr/bin/lmbench {
  /tmp/bench/** rwx,
  /tmp/bench rw,
  /var/bench/** rwmi,
  /usr/bin/lat_exec rx,
  /dev/null rw,
  network inet,
  network unix,
  capability net_bind_service,
}
profile lat_exec /usr/bin/lat_exec {
  /tmp/bench/** rw,
  /usr/bin/lat_exec rx,
}
profile rescue_daemon /usr/bin/rescue_daemon {
  /etc/vehicle/** r,
}
profile media_app /usr/bin/media_app {
  /var/media/** r,
  /dev/vehicle/audio rwi,
}
)";

}  // namespace

BenchEnv::BenchEnv(EnvOptions options) {
  kernel_ = std::make_unique<kernel::Kernel>();

  const bool with_apparmor = options.mac == BenchMac::apparmor ||
                             options.mac == BenchMac::sack_enhanced_apparmor;
  const bool with_sack = options.mac == BenchMac::sack_enhanced_apparmor ||
                         options.mac == BenchMac::independent_sack;

  if (with_sack) {
    auto mode = options.mac == BenchMac::sack_enhanced_apparmor
                    ? core::SackMode::apparmor_enhanced
                    : core::SackMode::independent;
    sack_ = static_cast<core::SackModule*>(kernel_->add_lsm(
        std::make_unique<core::SackModule>(mode, options.ruleset)));
  }
  if (with_apparmor) {
    apparmor_ = static_cast<apparmor::AppArmorModule*>(
        kernel_->add_lsm(std::make_unique<apparmor::AppArmorModule>()));
  }
  if (sack_ && apparmor_) sack_->attach_apparmor(apparmor_);

  populate();

  if (apparmor_) {
    auto rc = apparmor_->load_policy_text(kBenchProfiles);
    if (!rc.ok()) log_error("bench env: profile load failed");
  }
  if (sack_) {
    core::SackPolicy policy =
        options.sack_policy
            ? *options.sack_policy
            : default_bench_sack_policy(
                  options.mac == BenchMac::sack_enhanced_apparmor);
    std::vector<core::Diagnostic> diags;
    auto rc = sack_->load_policy(std::move(policy), &diags);
    if (!rc.ok()) {
      for (const auto& d : diags)
        log_error("bench env: sack policy: ", d.to_string());
    }
  }

  // Spawn after policy load so profile attachment happens.
  bench_task_ = &kernel_->spawn_task("lmbench", Cred::root(),
                                     "/usr/bin/lmbench");
  peer_task_ = &kernel_->spawn_task("lmbench-peer", Cred::root(),
                                    "/usr/bin/lmbench");
  exec_task_ = &kernel_->spawn_task("lat_exec", Cred::root(),
                                    "/usr/bin/lat_exec");
  if (!options.confine_bench_task && apparmor_) {
    apparmor_->confine(*bench_task_, "");
    apparmor_->confine(*peer_task_, "");
    apparmor_->confine(*exec_task_, "");
  }
}

BenchEnv::~BenchEnv() = default;

void BenchEnv::populate() {
  kernel::Process admin(*kernel_, kernel_->init_task());
  auto& vfs = kernel_->vfs();
  vfs.mkdir_p(kWorkDir);
  vfs.mkdir_p("/var/bench");
  vfs.mkdir_p("/var/guarded");
  vfs.mkdir_p("/var/rules");
  vfs.mkdir_p("/var/media");
  vfs.mkdir_p("/etc/vehicle");

  (void)admin.write_file("/usr/bin/lmbench", std::string(8192, 'L'));
  (void)admin.write_file(kExecTarget, std::string(16384, 'E'));
  (void)kernel_->sys_chmod(kernel_->init_task(), "/usr/bin/lmbench", 0755);
  (void)kernel_->sys_chmod(kernel_->init_task(), kExecTarget, 0755);

  (void)admin.write_file(kRereadFile, std::string(kRereadFileSize, 'R'));
  (void)admin.write_file(kCriticalFile, "critical-config\n");
  (void)admin.write_file("/dev/null", "");  // plain sink file is fine here
}

kernel::Process BenchEnv::root_process() {
  return {*kernel_, kernel_->init_task()};
}

}  // namespace sack::simbench
