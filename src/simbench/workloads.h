// LMBench-style workloads against the simulated kernel.
//
// Each latency workload performs one complete operation cycle per call (so
// it can sit directly in a google-benchmark loop); bandwidth workloads move
// one chunk and return the byte count for SetBytesProcessed. The set mirrors
// the rows of Table II:
//   processes: syscall, fork, stat, open/close, exec
//   file:      create/delete 0K & 10K, mmap latency
//   bandwidth: pipe, AF_UNIX, TCP, file reread, mmap reread
//   context switching: 2p/0K, 2p/16K
#pragma once

#include <cstddef>

#include "simbench/env.h"

namespace sack::simbench {

// --- process latencies ---
void wl_null_syscall(BenchEnv& env);
void wl_fork_exit_wait(BenchEnv& env);
void wl_stat(BenchEnv& env);
void wl_open_close(BenchEnv& env);
void wl_exec(BenchEnv& env);

// --- file latencies ---
// One create(write size bytes)+delete cycle.
void wl_file_create_delete(BenchEnv& env, std::size_t size);
// One mmap+read-first-page+munmap cycle over the 1 MiB bench file.
void wl_mmap_cycle(BenchEnv& env);

// --- bandwidths (return bytes moved per call) ---
// Persistent channel state lives in these small fixtures so per-call work is
// purely the data movement.
class PipeChannel {
 public:
  explicit PipeChannel(BenchEnv& env, std::size_t chunk = 64 * 1024);
  std::size_t transfer();  // write one chunk, read it back

 private:
  BenchEnv& env_;
  kernel::Fd write_fd_;
  kernel::Fd read_fd_;
  std::string chunk_;
  std::string scratch_;
};

class SocketChannel {
 public:
  SocketChannel(BenchEnv& env, kernel::SockFamily family,
                std::size_t chunk = 64 * 1024);
  std::size_t transfer();

 private:
  BenchEnv& env_;
  kernel::Fd client_;
  kernel::Fd server_;
  std::string chunk_;
  std::string scratch_;
};

// LMBench's "null I/O": a one-byte read on an already-open fd (plus the
// rewind lseek), isolating the per-syscall read path.
class NullIo {
 public:
  explicit NullIo(BenchEnv& env);
  void io_once();

 private:
  BenchEnv& env_;
  kernel::Fd fd_;
  std::string scratch_;
};

class FileReread {
 public:
  explicit FileReread(BenchEnv& env, std::size_t chunk = 64 * 1024);
  std::size_t transfer();  // read the next chunk, rewinding at EOF

 private:
  BenchEnv& env_;
  kernel::Fd fd_;
  std::string scratch_;
  std::size_t chunk_;
};

class MmapReread {
 public:
  explicit MmapReread(BenchEnv& env, std::size_t chunk = 64 * 1024);
  std::size_t transfer();

 private:
  BenchEnv& env_;
  int mmap_id_;
  std::size_t offset_ = 0;
  std::string scratch_;
  std::size_t chunk_;
};

// --- context switching ---
// Two tasks ping-pong a token over two pipes, each touching a working set of
// `wset_bytes` per switch (lat_ctx's -s parameter; 0 and 16K in the paper).
class CtxSwitchPair {
 public:
  CtxSwitchPair(BenchEnv& env, std::size_t wset_bytes);
  void round_trip();  // two context switches

 private:
  void touch(std::string& wset);

  BenchEnv& env_;
  kernel::Fd a_to_b_write_, a_to_b_read_;
  kernel::Fd b_to_a_write_, b_to_a_read_;
  std::string wset_a_, wset_b_;
  std::string scratch_;
};

}  // namespace sack::simbench
