// Paper-style result tables.
//
// Formats benchmark results the way the paper's Tables II/III do: one row
// per operation, one column per configuration, each non-baseline cell
// annotated with its percent delta vs the baseline column.
#pragma once

#include <string>
#include <vector>

namespace sack::simbench {

class PaperTable {
 public:
  // `columns` are configuration names; column 0 is the baseline.
  PaperTable(std::string title, std::vector<std::string> columns);

  // Starts a group header row (e.g. "Processes (times in us ...)").
  void section(std::string heading);

  // Adds a data row. `values` must have one entry per column; `unit`
  // controls formatting. For "bigger is better" metrics pass
  // higher_is_better=true (deltas then report throughput change).
  void row(std::string name, const std::vector<double>& values,
           std::string unit, bool higher_is_better = false);

  std::string to_string() const;
  void print() const;

 private:
  struct Row {
    bool is_section = false;
    std::string name;
    std::vector<double> values;
    std::string unit;
    bool higher_is_better = false;
  };
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

// Formats a value with an engineering-friendly precision.
std::string format_value(double v, const std::string& unit);

}  // namespace sack::simbench
