// CaptureReporter: a google-benchmark reporter that records every run so a
// bench binary can print the paper-shaped comparison table afterwards.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <string>

namespace sack::simbench {

struct CapturedRun {
  double real_ns_per_iter = 0;
  double bytes_per_second = 0;
  std::int64_t iterations = 0;
};

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    return benchmark::ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // Strip option suffixes ("/min_time:0.050") so lookups use the
      // registration name.
      std::string name = run.benchmark_name();
      if (auto pos = name.find("/min_time:"); pos != std::string::npos)
        name.resize(pos);
      CapturedRun& c = results_[name];
      c.real_ns_per_iter = run.GetAdjustedRealTime();
      // counters: bytes_per_second lives in run.counters["bytes_per_second"]
      auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) c.bytes_per_second = it->second.value;
      c.iterations = run.iterations;
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  // ns/iter of a named benchmark; aborts if missing (a bench binary bug).
  double ns(const std::string& name) const;
  // MB/s of a named bandwidth benchmark.
  double mbps(const std::string& name) const;
  bool has(const std::string& name) const { return results_.contains(name); }

 private:
  std::map<std::string, CapturedRun> results_;
};

}  // namespace sack::simbench
