#include "simbench/workloads.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace sack::simbench {

using kernel::Fd;
using kernel::OpenFlags;
using kernel::SockAddr;
using kernel::SockFamily;
using kernel::SockType;
using kernel::Whence;

namespace {

[[noreturn]] void workload_die(const char* what, Errno e) {
  std::fprintf(stderr, "simbench workload failure: %s: %.*s\n", what,
               static_cast<int>(errno_name(e).size()), errno_name(e).data());
  std::abort();
}

template <typename T>
T must(Result<T> r, const char* what) {
  if (!r.ok()) workload_die(what, r.error());
  return std::move(r).value();
}

inline void must_ok(Result<void> r, const char* what) {
  if (!r.ok()) workload_die(what, r.error());
}

}  // namespace

void wl_null_syscall(BenchEnv& env) {
  env.kernel().sys_nop(env.task());
}

void wl_fork_exit_wait(BenchEnv& env) {
  auto& k = env.kernel();
  auto pid = must(k.sys_fork(env.task()), "fork");
  auto& child = k.task(pid).value().get();
  k.sys_exit(child, 0);
  (void)must(k.sys_waitpid(env.task(), pid), "waitpid");
}

void wl_stat(BenchEnv& env) {
  (void)must(env.kernel().sys_stat(env.task(), BenchEnv::kRereadFile), "stat");
}

void wl_open_close(BenchEnv& env) {
  auto& k = env.kernel();
  Fd fd = must(k.sys_open(env.task(), BenchEnv::kRereadFile, OpenFlags::read),
               "open");
  must_ok(k.sys_close(env.task(), fd), "close");
}

void wl_exec(BenchEnv& env) {
  must_ok(env.kernel().sys_execve(env.exec_task(), BenchEnv::kExecTarget),
          "exec");
}

void wl_file_create_delete(BenchEnv& env, std::size_t size) {
  auto& k = env.kernel();
  const std::string path = std::string(BenchEnv::kWorkDir) + "/scratch";
  Fd fd = must(k.sys_open(env.task(), path,
                          OpenFlags::write | OpenFlags::create),
               "create");
  if (size > 0) {
    static const std::string payload(10 * 1024, 'x');
    (void)must(k.sys_write(env.task(), fd, std::string_view(payload).substr(0, size)),
               "write");
  }
  must_ok(k.sys_close(env.task(), fd), "close");
  must_ok(k.sys_unlink(env.task(), path), "unlink");
}

void wl_mmap_cycle(BenchEnv& env) {
  auto& k = env.kernel();
  Fd fd = must(k.sys_open(env.task(), BenchEnv::kRereadFile, OpenFlags::read),
               "open");
  int id = must(k.sys_mmap(env.task(), fd, BenchEnv::kRereadFileSize,
                           kernel::AccessMask::read),
                "mmap");
  std::string page;
  (void)must(k.mmap_read(env.task(), id, page, 0, 4096), "mmap read");
  must_ok(k.sys_munmap(env.task(), id), "munmap");
  must_ok(k.sys_close(env.task(), fd), "close");
}

// --- bandwidth fixtures ---

PipeChannel::PipeChannel(BenchEnv& env, std::size_t chunk)
    : env_(env), chunk_(chunk, 'P') {
  auto fds = must(env_.kernel().sys_pipe(env_.task()), "pipe");
  read_fd_ = fds.first;
  write_fd_ = fds.second;
}

std::size_t PipeChannel::transfer() {
  auto& k = env_.kernel();
  std::size_t wrote =
      must(k.sys_write(env_.task(), write_fd_, chunk_), "pipe write");
  std::size_t read =
      must(k.sys_read(env_.task(), read_fd_, scratch_, chunk_.size()),
           "pipe read");
  assert(wrote == read);
  (void)wrote;
  return read;
}

SocketChannel::SocketChannel(BenchEnv& env, SockFamily family,
                             std::size_t chunk)
    : env_(env), chunk_(chunk, 'S') {
  auto& k = env_.kernel();
  if (family == SockFamily::unix_) {
    auto pair = must(k.sys_socketpair(env_.task(), family), "socketpair");
    client_ = pair.first;
    server_ = pair.second;
    return;
  }
  // Loopback TCP: listener + connect + accept.
  Fd listener = must(k.sys_socket(env_.task(), family, SockType::stream),
                     "socket");
  must_ok(k.sys_bind(env_.task(), listener, SockAddr::in(15001)), "bind");
  must_ok(k.sys_listen(env_.task(), listener, 8), "listen");
  client_ = must(k.sys_socket(env_.task(), family, SockType::stream),
                 "socket");
  must_ok(k.sys_connect(env_.task(), client_, SockAddr::in(15001)), "connect");
  server_ = must(k.sys_accept(env_.task(), listener), "accept");
  must_ok(k.sys_close(env_.task(), listener), "close listener");
}

std::size_t SocketChannel::transfer() {
  auto& k = env_.kernel();
  (void)must(k.sys_send(env_.task(), client_, chunk_), "send");
  return must(k.sys_recv(env_.task(), server_, scratch_, chunk_.size()),
              "recv");
}

NullIo::NullIo(BenchEnv& env) : env_(env) {
  fd_ = must(env_.kernel().sys_open(env_.task(), BenchEnv::kRereadFile,
                                    OpenFlags::read),
             "open null-io file");
}

void NullIo::io_once() {
  auto& k = env_.kernel();
  (void)must(k.sys_read(env_.task(), fd_, scratch_, 1), "null io read");
  (void)must(k.sys_lseek(env_.task(), fd_, 0, Whence::set), "null io lseek");
}

FileReread::FileReread(BenchEnv& env, std::size_t chunk)
    : env_(env), chunk_(chunk) {
  fd_ = must(env_.kernel().sys_open(env_.task(), BenchEnv::kRereadFile,
                                    OpenFlags::read),
             "open reread file");
}

std::size_t FileReread::transfer() {
  auto& k = env_.kernel();
  std::size_t n =
      must(k.sys_read(env_.task(), fd_, scratch_, chunk_), "reread");
  if (n < chunk_) {
    (void)must(k.sys_lseek(env_.task(), fd_, 0, Whence::set), "rewind");
    if (n == 0)
      n = must(k.sys_read(env_.task(), fd_, scratch_, chunk_), "reread");
  }
  return n;
}

MmapReread::MmapReread(BenchEnv& env, std::size_t chunk)
    : env_(env), chunk_(chunk) {
  auto& k = env_.kernel();
  Fd fd = must(k.sys_open(env_.task(), BenchEnv::kRereadFile, OpenFlags::read),
               "open");
  mmap_id_ = must(k.sys_mmap(env_.task(), fd, BenchEnv::kRereadFileSize,
                             kernel::AccessMask::read),
                  "mmap");
  must_ok(k.sys_close(env_.task(), fd), "close");
}

std::size_t MmapReread::transfer() {
  auto& k = env_.kernel();
  std::size_t n = must(
      k.mmap_read(env_.task(), mmap_id_, scratch_, offset_, chunk_), "mmap read");
  offset_ += n;
  if (n < chunk_ || offset_ >= BenchEnv::kRereadFileSize) offset_ = 0;
  return n == 0 ? transfer() : n;
}

// --- context switching ---

CtxSwitchPair::CtxSwitchPair(BenchEnv& env, std::size_t wset_bytes)
    : env_(env), wset_a_(wset_bytes, 'a'), wset_b_(wset_bytes, 'b') {
  auto& k = env_.kernel();
  auto p1 = must(k.sys_pipe(env_.task()), "pipe1");
  auto p2 = must(k.sys_pipe(env_.peer_task()), "pipe2");
  a_to_b_read_ = p1.first;
  a_to_b_write_ = p1.second;
  b_to_a_read_ = p2.first;
  b_to_a_write_ = p2.second;
}

void CtxSwitchPair::touch(std::string& wset) {
  // Walk the working set like lat_ctx: one write per cache line.
  for (std::size_t i = 0; i < wset.size(); i += 64) wset[i]++;
}

void CtxSwitchPair::round_trip() {
  auto& k = env_.kernel();
  // A -> B
  (void)must(k.sys_write(env_.task(), a_to_b_write_, "x"), "token write");
  (void)must(k.sys_read(env_.task(), a_to_b_read_, scratch_, 1), "token read");
  touch(wset_b_);
  // B -> A
  (void)must(k.sys_write(env_.peer_task(), b_to_a_write_, "x"), "token write");
  (void)must(k.sys_read(env_.peer_task(), b_to_a_read_, scratch_, 1),
             "token read");
  touch(wset_a_);
}

}  // namespace sack::simbench
