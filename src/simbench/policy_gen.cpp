#include "simbench/policy_gen.h"

#include "core/policy_builder.h"

namespace sack::simbench {

using core::MacOp;
using core::PolicyBuilder;
using core::SackPolicy;

SackPolicy default_bench_sack_policy(bool profile_subjects) {
  const std::string rescue =
      profile_subjects ? "@rescue_daemon" : "/usr/bin/rescue_daemon";
  const std::string media =
      profile_subjects ? "@media_app" : "/usr/bin/media_app";
  PolicyBuilder b;
  b.state("parked_with_driver", 0)
      .state("parked_without_driver", 1)
      .state("driving", 2)
      .state("emergency", 3)
      .initial("parked_with_driver")
      .transition("parked_with_driver", "start_driving", "driving")
      .transition("driving", "stop_driving", "parked_with_driver")
      .transition("parked_with_driver", "parked_without_driver",
                  "parked_without_driver")
      .transition("parked_without_driver", "parked_with_driver",
                  "parked_with_driver")
      .transition("parked_with_driver", "crash_detected", "emergency")
      .transition("parked_without_driver", "crash_detected", "emergency")
      .transition("driving", "crash_detected", "emergency")
      .transition("emergency", "emergency_cleared", "parked_with_driver")
      .event("high_speed_entered")
      .event("low_speed_entered")
      .permission("MEDIA_READ")
      .permission("AUDIO_CONTROL")
      .permission("CONTROL_CAR_DOORS")
      .permission("CONTROL_CAR_WINDOWS")
      .grant("parked_with_driver", "MEDIA_READ")
      .grant("parked_with_driver", "AUDIO_CONTROL")
      .grant("parked_without_driver", "MEDIA_READ")
      .grant("driving", "MEDIA_READ")
      .grant("driving", "AUDIO_CONTROL")
      .permission("VEHICLE_CAN_TX")
      .grant("emergency", "MEDIA_READ")
      .grant("emergency", "CONTROL_CAR_DOORS")
      .grant("emergency", "CONTROL_CAR_WINDOWS")
      .grant("emergency", "VEHICLE_CAN_TX")
      .allow("MEDIA_READ", "*", "/var/media/**",
             MacOp::read | MacOp::getattr)
      .allow("AUDIO_CONTROL", media, "/dev/vehicle/audio",
             MacOp::write | MacOp::ioctl)
      .allow("CONTROL_CAR_DOORS", rescue, "/dev/vehicle/door*",
             MacOp::write | MacOp::ioctl)
      .allow("CONTROL_CAR_WINDOWS", rescue, "/dev/vehicle/window*",
             MacOp::write | MacOp::ioctl)
      .allow("VEHICLE_CAN_TX", rescue, "/dev/can0",
             MacOp::read | MacOp::write);
  return b.build();
}

SackPolicy sack_policy_with_rules(int rule_count, bool profile_subjects) {
  // A minimal two-state skeleton so the 0-rule column measures the bare SSM
  // presence, exactly like the paper's "0 (baseline)" column.
  PolicyBuilder b;
  b.state("normal", 0)
      .state("restricted", 1)
      .initial("normal")
      .transition("normal", "restrict", "restricted")
      .transition("restricted", "relax", "normal");
  if (rule_count > 0) {
    // BULK is granted in every state so all its rules stay loaded/active.
    b.permission("BULK").grant("normal", "BULK").grant("restricted", "BULK");
  }
  SackPolicy policy = b.build();
  if (rule_count == 0) return policy;
  auto& rules = policy.per_rules["BULK"];
  rules.reserve(static_cast<std::size_t>(rule_count));
  for (int i = 0; i < rule_count; ++i) {
    auto rule = core::make_rule(
        core::RuleEffect::allow,
        profile_subjects ? "@media_app" : "*",
        "/var/rules/object_" + std::to_string(i), MacOp::read | MacOp::write);
    rules.push_back(std::move(rule).value());
  }
  return policy;
}

SackPolicy sack_policy_with_states(int state_count) {
  PolicyBuilder b;
  for (int i = 0; i < state_count; ++i)
    b.state("s" + std::to_string(i), i);
  b.initial("s0");
  for (int i = 0; i < state_count; ++i) {
    b.transition("s" + std::to_string(i), "advance",
                 "s" + std::to_string((i + 1) % state_count));
  }
  // Common permission active everywhere.
  b.permission("COMMON");
  b.allow("COMMON", "*", "/var/bench/critical", MacOp::read | MacOp::write);
  for (int i = 0; i < state_count; ++i) {
    std::string state = "s" + std::to_string(i);
    std::string perm = "P" + std::to_string(i);
    b.permission(perm)
        .grant(state, "COMMON")
        .grant(state, perm)
        .allow(perm, "*", "/var/guarded/file_" + std::to_string(i),
               MacOp::read | MacOp::write);
  }
  return b.build();
}

SackPolicy speed_gate_policy() {
  PolicyBuilder b;
  b.state("low_speed", 0)
      .state("high_speed", 1)
      .initial("low_speed")
      .transition("low_speed", "high_speed_entered", "high_speed")
      .transition("high_speed", "low_speed_entered", "low_speed")
      .permission("CRITICAL_FILE_ACCESS")
      .grant("low_speed", "CRITICAL_FILE_ACCESS")
      .allow("CRITICAL_FILE_ACCESS", "*", "/var/bench/critical",
             MacOp::read | MacOp::write | MacOp::getattr);
  return b.build();
}

std::vector<SackPolicy> compatibility_policies() {
  std::vector<SackPolicy> out;
  struct Spec {
    const char* perm;
    const char* subject;
    const char* object;
    MacOp ops;
  };
  const Spec specs[] = {
      {"DOOR_CONTROL", "/usr/bin/rescue_daemon", "/dev/vehicle/door*",
       MacOp::ioctl | MacOp::write},
      {"WINDOW_CONTROL", "/usr/bin/rescue_daemon", "/dev/vehicle/window*",
       MacOp::ioctl | MacOp::write},
      {"AUDIO_LIMIT", "/usr/bin/media_app", "/dev/vehicle/audio",
       MacOp::ioctl | MacOp::write},
      {"LOG_WRITE", "*", "/var/log/ivi/**", MacOp::write | MacOp::create},
      // Kept at an even index: MEDIA_LIBRARY guards the media tree, which
      // must stay readable in 'normal' for the compatibility matrix.
      {"MEDIA_LIBRARY", "*", "/var/media/**", MacOp::read | MacOp::getattr},
      {"DIAG_READ", "/usr/bin/diag_*", "/etc/vehicle/**",
       MacOp::read | MacOp::getattr},
      {"OTA_STAGING", "/usr/bin/ota_helper", "/var/ota/**",
       MacOp::read | MacOp::write | MacOp::create | MacOp::unlink},
      {"NAV_CACHE", "/usr/bin/nav", "/var/cache/nav/**",
       MacOp::read | MacOp::write | MacOp::create},
      {"CAM_STREAM", "/usr/bin/parkassist", "/dev/vehicle/camera*",
       MacOp::read | MacOp::ioctl},
      {"CFG_UPDATE", "/usr/bin/settingsd", "/etc/vehicle/settings.conf",
       MacOp::read | MacOp::write | MacOp::truncate},
  };
  int idx = 0;
  for (const auto& spec : specs) {
    PolicyBuilder b;
    b.state("normal", 0)
        .state("special", 1)
        .initial("normal")
        .transition("normal", "enter_special", "special")
        .transition("special", "leave_special", "normal")
        .permission(spec.perm)
        .grant("special", spec.perm)
        .allow(spec.perm, spec.subject, spec.object, spec.ops);
    // Vary which policies also grant in normal, so the matrix covers both.
    if (idx % 2 == 0) b.grant("normal", spec.perm);
    out.push_back(b.build());
    ++idx;
  }
  return out;
}

}  // namespace sack::simbench
