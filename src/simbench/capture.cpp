#include "simbench/capture.h"

#include <cstdio>
#include <cstdlib>

namespace sack::simbench {

double CaptureReporter::ns(const std::string& name) const {
  auto it = results_.find(name);
  if (it == results_.end()) {
    std::fprintf(stderr, "CaptureReporter: no result for '%s'\n",
                 name.c_str());
    std::abort();
  }
  return it->second.real_ns_per_iter;
}

double CaptureReporter::mbps(const std::string& name) const {
  auto it = results_.find(name);
  if (it == results_.end()) {
    std::fprintf(stderr, "CaptureReporter: no result for '%s'\n",
                 name.c_str());
    std::abort();
  }
  return it->second.bytes_per_second / 1e6;
}

}  // namespace sack::simbench
