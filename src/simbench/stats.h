// Sample statistics for benchmark results.
#pragma once

#include <string>
#include <vector>

namespace sack::simbench {

struct Stats {
  double mean = 0;
  double median = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  std::size_t n = 0;
};

Stats compute_stats(std::vector<double> samples);

// Percent change of `measured` relative to `baseline` (positive = slower /
// bigger). The paper reports |delta| with an up/down arrow; format_delta
// reproduces that, e.g. "(+2.56%)" / "(-0.40%)".
double percent_delta(double baseline, double measured);
std::string format_delta(double baseline, double measured);

}  // namespace sack::simbench
