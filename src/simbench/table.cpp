#include "simbench/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "simbench/stats.h"

namespace sack::simbench {

std::string format_value(double v, const std::string& unit) {
  char buf[64];
  double av = std::abs(v);
  if (av >= 1000)
    std::snprintf(buf, sizeof buf, "%.0f %s", v, unit.c_str());
  else if (av >= 10)
    std::snprintf(buf, sizeof buf, "%.1f %s", v, unit.c_str());
  else
    std::snprintf(buf, sizeof buf, "%.3f %s", v, unit.c_str());
  return buf;
}

PaperTable::PaperTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void PaperTable::section(std::string heading) {
  Row r;
  r.is_section = true;
  r.name = std::move(heading);
  rows_.push_back(std::move(r));
}

void PaperTable::row(std::string name, const std::vector<double>& values,
                     std::string unit, bool higher_is_better) {
  Row r;
  r.name = std::move(name);
  r.values = values;
  r.unit = std::move(unit);
  r.higher_is_better = higher_is_better;
  rows_.push_back(std::move(r));
}

std::string PaperTable::to_string() const {
  // Build cell text first, then size columns.
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header{""};
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::string name = columns_[c];
    if (c == 0) name += " (baseline)";
    header.push_back(std::move(name));
  }
  cells.push_back(header);

  for (const auto& r : rows_) {
    if (r.is_section) {
      cells.push_back({"## " + r.name});
      continue;
    }
    std::vector<std::string> line{r.name};
    for (std::size_t c = 0; c < r.values.size(); ++c) {
      std::string cell = format_value(r.values[c], r.unit);
      if (c > 0) {
        // The paper annotates overhead; for throughput metrics a positive
        // delta means *more* bandwidth, so the sign already reads naturally.
        cell += " " + format_delta(r.values[0], r.values[c]);
      }
      line.push_back(std::move(cell));
    }
    cells.push_back(std::move(line));
  }

  std::vector<std::size_t> widths;
  for (const auto& line : cells) {
    if (line.size() == 1) continue;  // section rows span
    widths.resize(std::max(widths.size(), line.size()), 0);
    for (std::size_t c = 0; c < line.size(); ++c)
      widths[c] = std::max(widths[c], line[c].size());
  }

  std::string out = "=== " + title_ + " ===\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& line = cells[i];
    if (line.size() == 1) {
      out += line[0] + "\n";
      continue;
    }
    for (std::size_t c = 0; c < line.size(); ++c) {
      std::string cell = line[c];
      cell.resize(widths[c], ' ');
      out += cell;
      if (c + 1 < line.size()) out += "  ";
    }
    out += "\n";
    if (i == 0) {
      std::size_t total = 0;
      for (std::size_t w : widths) total += w + 2;
      out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
    }
  }
  return out;
}

void PaperTable::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace sack::simbench
