// Synthetic SACK policy generators for the scaling experiments.
#pragma once

#include "core/policy.h"

namespace sack::simbench {

// The "default policies" used in Table II: the standard CAV policy with
// executable-path subjects (independent) or @profile subjects (enhanced).
core::SackPolicy default_bench_sack_policy(bool profile_subjects);

// Table III: the default policy plus `rule_count` extra MAC rules attached
// to a permission that is granted in every state. Objects are literal paths
// under /var/rules/, mirroring the shape of large real-world policies.
core::SackPolicy sack_policy_with_rules(int rule_count, bool profile_subjects);

// Fig 3(a): a policy with `state_count` situation states in a ring
// (s_i -> s_{i+1} on "advance"), one permission per state guarding a
// per-state file, plus a common permission guarding /var/bench/critical.
core::SackPolicy sack_policy_with_states(int state_count);

// Fig 3(b): two situations (low_speed / high_speed); a critical file is
// readable only in low_speed.
core::SackPolicy speed_gate_policy();

// E7: ten distinct small SACK policies exercising different object spaces,
// for the compatibility matrix against the default AppArmor profiles.
std::vector<core::SackPolicy> compatibility_policies();

}  // namespace sack::simbench
