#include "simbench/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

namespace sack::simbench {

Stats compute_stats(std::vector<double> samples) {
  Stats s;
  s.n = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.median = samples.size() % 2 == 1
                 ? samples[samples.size() / 2]
                 : 0.5 * (samples[samples.size() / 2 - 1] +
                          samples[samples.size() / 2]);
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

double percent_delta(double baseline, double measured) {
  if (baseline == 0) return 0;
  return (measured - baseline) / baseline * 100.0;
}

std::string format_delta(double baseline, double measured) {
  double d = percent_delta(baseline, measured);
  char buf[32];
  std::snprintf(buf, sizeof buf, "(%s%.2f%%)", d >= 0 ? "+" : "-",
                std::abs(d));
  return buf;
}

}  // namespace sack::simbench
