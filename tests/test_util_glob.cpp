#include "util/glob.h"

#include <gtest/gtest.h>

namespace sack {
namespace {

Glob compile(std::string_view pattern) {
  auto g = Glob::compile(pattern);
  EXPECT_TRUE(g.ok()) << "pattern failed to compile: " << pattern;
  return std::move(g).value();
}

TEST(Glob, LiteralMatchesItselfOnly) {
  Glob g = compile("/dev/vehicle/audio");
  EXPECT_TRUE(g.matches("/dev/vehicle/audio"));
  EXPECT_FALSE(g.matches("/dev/vehicle/audio2"));
  EXPECT_FALSE(g.matches("/dev/vehicle/audi"));
  EXPECT_FALSE(g.matches("/dev/vehicle"));
  EXPECT_TRUE(g.is_literal());
  EXPECT_EQ(g.literal(), "/dev/vehicle/audio");
}

TEST(Glob, StarDoesNotCrossSlash) {
  Glob g = compile("/dev/vehicle/door*");
  EXPECT_TRUE(g.matches("/dev/vehicle/door"));
  EXPECT_TRUE(g.matches("/dev/vehicle/door0"));
  EXPECT_TRUE(g.matches("/dev/vehicle/door-rear-left"));
  EXPECT_FALSE(g.matches("/dev/vehicle/door0/lock"));
  EXPECT_FALSE(g.matches("/dev/vehicle/window0"));
  EXPECT_FALSE(g.is_literal());
}

TEST(Glob, DoubleStarCrossesSlash) {
  Glob g = compile("/var/media/**");
  EXPECT_TRUE(g.matches("/var/media/a"));
  EXPECT_TRUE(g.matches("/var/media/albums/track01.pcm"));
  EXPECT_TRUE(g.matches("/var/media/"));
  EXPECT_FALSE(g.matches("/var/medias/x"));
  EXPECT_FALSE(g.matches("/var/other"));
}

TEST(Glob, DoubleStarMatchesEmpty) {
  Glob g = compile("/a/**");
  EXPECT_TRUE(g.matches("/a/"));
  EXPECT_FALSE(g.matches("/a"));  // the '/' before ** is literal
}

TEST(Glob, QuestionMarkSingleNonSlash) {
  Glob g = compile("/tmp/file?");
  EXPECT_TRUE(g.matches("/tmp/file1"));
  EXPECT_TRUE(g.matches("/tmp/fileX"));
  EXPECT_FALSE(g.matches("/tmp/file"));
  EXPECT_FALSE(g.matches("/tmp/file12"));
  EXPECT_FALSE(g.matches("/tmp/file/"));
}

TEST(Glob, CharacterClass) {
  Glob g = compile("/dev/door[0-3]");
  EXPECT_TRUE(g.matches("/dev/door0"));
  EXPECT_TRUE(g.matches("/dev/door3"));
  EXPECT_FALSE(g.matches("/dev/door4"));
  EXPECT_FALSE(g.matches("/dev/doorx"));
}

TEST(Glob, NegatedCharacterClass) {
  Glob g = compile("/x/[^ab]");
  EXPECT_TRUE(g.matches("/x/c"));
  EXPECT_FALSE(g.matches("/x/a"));
  EXPECT_FALSE(g.matches("/x/b"));
  EXPECT_FALSE(g.matches("/x//"));  // class never matches '/'
}

TEST(Glob, BraceAlternation) {
  Glob g = compile("/dev/vehicle/{door,window}*");
  EXPECT_TRUE(g.matches("/dev/vehicle/door0"));
  EXPECT_TRUE(g.matches("/dev/vehicle/window2"));
  EXPECT_FALSE(g.matches("/dev/vehicle/audio"));
}

TEST(Glob, NestedBraces) {
  Glob g = compile("/a/{b,c{d,e}}/f");
  EXPECT_TRUE(g.matches("/a/b/f"));
  EXPECT_TRUE(g.matches("/a/cd/f"));
  EXPECT_TRUE(g.matches("/a/ce/f"));
  EXPECT_FALSE(g.matches("/a/c/f"));
}

TEST(Glob, EscapedMetacharacters) {
  Glob g = compile("/a/\\*literal");
  EXPECT_TRUE(g.matches("/a/*literal"));
  EXPECT_FALSE(g.matches("/a/xliteral"));
  EXPECT_FALSE(g.is_literal());  // contains a backslash, treated as pattern
}

TEST(Glob, MalformedPatternsRejected) {
  EXPECT_FALSE(Glob::compile("/a/{b,c").ok());
  EXPECT_FALSE(Glob::compile("/a/b}").ok());
  EXPECT_FALSE(Glob::compile("/a/[").ok());
  EXPECT_FALSE(Glob::compile("/a/[]").ok());
  EXPECT_FALSE(Glob::compile("/a/\\").ok());
  EXPECT_FALSE(Glob::compile("/a/[z-a]").ok());
}

TEST(Glob, EmptyPatternMatchesEmptyPath) {
  Glob g = compile("");
  EXPECT_TRUE(g.matches(""));
  EXPECT_FALSE(g.matches("/"));
}

TEST(Glob, StarStarAtStart) {
  Glob g = compile("**/secret");
  EXPECT_TRUE(g.matches("a/b/secret"));
  EXPECT_TRUE(g.matches("/deep/path/secret"));
  EXPECT_FALSE(g.matches("secret"));  // needs the '/'
}

TEST(Glob, MultipleWildcards) {
  Glob g = compile("/u*/b?n/**/*.conf");
  EXPECT_TRUE(g.matches("/usr/bin/app/x.conf"));
  EXPECT_TRUE(g.matches("/u/ban/a/b/c/y.conf"));
  EXPECT_FALSE(g.matches("/usr/bin/x.conf.bak"));
}

// --- property-style parameterized tests ---

struct GlobCase {
  const char* pattern;
  const char* path;
  bool expect;
};

class GlobTableTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobTableTest, MatchesAsExpected) {
  const GlobCase& c = GetParam();
  Glob g = compile(c.pattern);
  EXPECT_EQ(g.matches(c.path), c.expect)
      << "pattern=" << c.pattern << " path=" << c.path;
}

INSTANTIATE_TEST_SUITE_P(
    AppArmorStyle, GlobTableTest,
    ::testing::Values(
        GlobCase{"/etc/*", "/etc/passwd", true},
        GlobCase{"/etc/*", "/etc/ssl/cert", false},
        GlobCase{"/etc/**", "/etc/ssl/cert", true},
        GlobCase{"/etc/*.conf", "/etc/app.conf", true},
        GlobCase{"/etc/*.conf", "/etc/app.conf.d", false},
        GlobCase{"/home/*/.ssh/**", "/home/alice/.ssh/id_rsa", true},
        GlobCase{"/home/*/.ssh/**", "/home/alice/sub/.ssh/id", false},
        GlobCase{"/proc/[0-9]*/status", "/proc/42/status", true},
        GlobCase{"/proc/[0-9]*/status", "/proc/self/status", false},
        GlobCase{"/a/{x,y}/*", "/a/x/1", true},
        GlobCase{"/a/{x,y}/*", "/a/z/1", false},
        GlobCase{"/**", "/anything/at/all", true},
        GlobCase{"/*", "/one", true},
        GlobCase{"/*", "/one/two", false}));

// Property: a literal pattern (no metacharacters) matches exactly itself.
class GlobLiteralProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(GlobLiteralProperty, LiteralIffSelfMatch) {
  const char* path = GetParam();
  Glob g = compile(path);
  ASSERT_TRUE(g.is_literal());
  EXPECT_TRUE(g.matches(path));
  // Any single-character perturbation must not match.
  std::string p(path);
  for (std::size_t i = 0; i < p.size(); ++i) {
    std::string mutated = p;
    mutated[i] = mutated[i] == 'z' ? 'y' : 'z';
    if (mutated == p) continue;
    EXPECT_FALSE(g.matches(mutated)) << mutated;
  }
  EXPECT_FALSE(g.matches(p + "x"));
  if (!p.empty()) EXPECT_FALSE(g.matches(p.substr(0, p.size() - 1)));
}

INSTANTIATE_TEST_SUITE_P(Paths, GlobLiteralProperty,
                         ::testing::Values("/dev/vehicle/audio",
                                           "/var/log/syslog",
                                           "/etc/vehicle/vin",
                                           "/a", "/a/b/c/d/e/f/g"));

}  // namespace
}  // namespace sack
