// Signals: sys_kill DAC + LSM task_kill mediation.
#include <gtest/gtest.h>

#include "apparmor/apparmor.h"
#include "kernel/kernel.h"
#include "kernel/process.h"

namespace sack::kernel {
namespace {

constexpr int kSigTerm = 15;

TEST(Signals, RootKillsAnyone) {
  Kernel kernel;
  Task& victim = kernel.spawn_task("victim", Cred::user(1000, 1000));
  ASSERT_TRUE(kernel.sys_kill(kernel.init_task(), victim.pid(), kSigTerm)
                  .ok());
  EXPECT_EQ(victim.state, TaskState::zombie);
  EXPECT_EQ(victim.exit_code, 128 + kSigTerm);
}

TEST(Signals, DacRequiresSameUidOrCapKill) {
  Kernel kernel;
  Task& alice = kernel.spawn_task("alice", Cred::user(1000, 1000));
  Task& bob = kernel.spawn_task("bob", Cred::user(1001, 1001));
  Task& alice2 = kernel.spawn_task("alice2", Cred::user(1000, 1000));

  EXPECT_EQ(kernel.sys_kill(alice, bob.pid(), kSigTerm).error(),
            Errno::eperm);
  EXPECT_TRUE(kernel.sys_kill(alice, alice2.pid(), 0).ok());  // probe
  EXPECT_EQ(alice2.state, TaskState::running);                // sig 0 = probe

  alice.cred().caps.add(Capability::kill);
  EXPECT_TRUE(kernel.sys_kill(alice, bob.pid(), kSigTerm).ok());
  EXPECT_EQ(bob.state, TaskState::zombie);
}

TEST(Signals, MissingTargetAndBadSignal) {
  Kernel kernel;
  EXPECT_EQ(kernel.sys_kill(kernel.init_task(), Pid(999), kSigTerm).error(),
            Errno::esrch);
  Task& t = kernel.spawn_task("t", Cred::root());
  EXPECT_EQ(kernel.sys_kill(kernel.init_task(), t.pid(), -1).error(),
            Errno::einval);
}

TEST(Signals, AppArmorConfinesCrossProfileSignals) {
  Kernel kernel;
  auto* aa = static_cast<apparmor::AppArmorModule*>(
      kernel.add_lsm(std::make_unique<apparmor::AppArmorModule>()));
  ASSERT_TRUE(aa->load_policy_text(R"(
profile worker /usr/bin/worker { /tmp/** rw, }
profile manager /usr/bin/manager {
  /tmp/** rw,
  capability kill,
}
)")
                  .ok());
  Task& worker_a = kernel.spawn_task("w1", Cred::root(), "/usr/bin/worker");
  Task& worker_b = kernel.spawn_task("w2", Cred::root(), "/usr/bin/worker");
  Task& manager = kernel.spawn_task("m", Cred::root(), "/usr/bin/manager");
  Task& outsider = kernel.spawn_task("o", Cred::root(), "/usr/bin/outsider");

  // Same profile: allowed.
  EXPECT_TRUE(kernel.sys_kill(worker_a, worker_b.pid(), 0).ok());
  // Cross profile without capability kill: denied by AppArmor (root DAC
  // passes, so this is MAC).
  EXPECT_EQ(kernel.sys_kill(worker_a, manager.pid(), 0).error(),
            Errno::eperm);
  EXPECT_EQ(kernel.sys_kill(worker_a, outsider.pid(), 0).error(),
            Errno::eperm);
  // The manager profile holds capability kill.
  EXPECT_TRUE(kernel.sys_kill(manager, worker_a.pid(), 0).ok());
  // Unconfined sender is unrestricted by AppArmor.
  EXPECT_TRUE(kernel.sys_kill(outsider, worker_a.pid(), 0).ok());
}

}  // namespace
}  // namespace sack::kernel
