// sack-fuzz: program format, mediation oracle, executor, and campaign.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "fuzz/corpus.h"
#include "fuzz/executor.h"
#include "fuzz/fuzzer.h"
#include "fuzz/mutate.h"
#include "util/log.h"

namespace sack::fuzz {
namespace {

analysis::Manifest test_manifest() {
  return load_manifest_or_die(SACK_SOURCE_DIR "/docs/hook_manifest.toml");
}

// ---------- program text format ----------

TEST(FuzzProgram, TextRoundTrip) {
  Program prog;
  prog.ops.push_back({OpCode::open, 0, 1, 2, 3});
  prog.ops.push_back({OpCode::sds_event, 2, 0, 0, 0});
  prog.ops.push_back({OpCode::clock_tick, 0, 0, 0, 2500});
  EXPECT_EQ(Program::from_text(prog.to_text()), prog);
}

TEST(FuzzProgram, ParserSkipsCommentsAndUnknownOps) {
  Program prog = Program::from_text(
      "# a comment\n"
      "open 0 1 2 3\n"
      "frobnicate 1 2 3 4\n"
      "close 0 1 0 0\n");
  ASSERT_EQ(prog.ops.size(), 2u);
  EXPECT_EQ(prog.ops[0].code, OpCode::open);
  EXPECT_EQ(prog.ops[1].code, OpCode::close);
}

TEST(FuzzProgram, EveryOpNameRoundTrips) {
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const OpCode code = static_cast<OpCode>(i);
    EXPECT_EQ(op_from_name(op_name(code)), code) << op_name(code);
  }
  EXPECT_EQ(op_from_name("nonsense"), OpCode::kCount);
}

// ---------- oracle unit tests (hand-driven witness streams) ----------

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() : oracle_(test_manifest()) {}

  // The universal task_syscall gate chain the kernel now runs at the top of
  // every (non-exempt) syscall body.
  void gate(Errno verdict = Errno::ok) {
    oracle_.hook_enter("task_syscall");
    oracle_.chain_verdict(verdict);
  }

  // Drives one complete, well-formed mediated unlink through the witness.
  void clean_unlink() {
    oracle_.syscall_enter("sys_unlink");
    gate();
    oracle_.hook_enter("path_unlink");
    oracle_.chain_verdict(Errno::ok);
    oracle_.mutation("vfs_unlink");
    oracle_.syscall_exit("sys_unlink");
    oracle_.syscall_result(Errno::ok);
  }

  MediationOracle oracle_;
};

TEST_F(OracleTest, CleanTraceHasNoViolations) {
  clean_unlink();
  EXPECT_TRUE(oracle_.violations().empty());
  EXPECT_EQ(oracle_.syscalls_observed(), 1u);
  EXPECT_EQ(oracle_.chains_observed(), 2u);  // gate + path_unlink
  EXPECT_EQ(oracle_.mutations_observed(), 1u);
}

TEST_F(OracleTest, MutationBeforeVerdictIsReorder) {
  // The hook is dispatched, but the mutation lands before its verdict: the
  // exact shape of a hook-after-mutation reorder at runtime.
  oracle_.syscall_enter("sys_unlink");
  gate();
  oracle_.hook_enter("path_unlink");
  oracle_.mutation("vfs_unlink");
  oracle_.chain_verdict(Errno::ok);
  oracle_.syscall_exit("sys_unlink");
  oracle_.syscall_result(Errno::ok);
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "guarded-mutation");
}

TEST_F(OracleTest, MutationWithNoHookAtAllIsViolation) {
  oracle_.syscall_enter("sys_unlink");
  gate();
  oracle_.mutation("vfs_unlink");
  oracle_.syscall_exit("sys_unlink");
  oracle_.syscall_result(Errno::ok);
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "guarded-mutation");
}

TEST_F(OracleTest, DeniedMutationIsViolation) {
  oracle_.syscall_enter("sys_unlink");
  gate();
  oracle_.hook_enter("path_unlink");
  oracle_.chain_verdict(Errno::eacces);
  oracle_.mutation("vfs_unlink");
  oracle_.syscall_exit("sys_unlink");
  oracle_.syscall_result(Errno::eacces);
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "guarded-mutation");
}

TEST_F(OracleTest, SwallowedDenialIsViolation) {
  oracle_.syscall_enter("sys_unlink");
  gate();
  oracle_.hook_enter("path_unlink");
  oracle_.chain_verdict(Errno::eacces);
  oracle_.syscall_exit("sys_unlink");
  oracle_.syscall_result(Errno::ok);  // denial did not surface
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "no-swallow");
}

TEST_F(OracleTest, RewrittenDenialErrnoIsViolation) {
  oracle_.syscall_enter("sys_unlink");
  gate();
  oracle_.hook_enter("path_unlink");
  oracle_.chain_verdict(Errno::eacces);
  oracle_.syscall_exit("sys_unlink");
  oracle_.syscall_result(Errno::eio);
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "no-swallow");
}

TEST_F(OracleTest, CapableDenialMayBeRemapped) {
  // sys_bind legitimately turns a capable() denial into EACCES.
  oracle_.syscall_enter("sys_bind");
  gate();
  oracle_.hook_enter("socket_bind");
  oracle_.chain_verdict(Errno::ok);
  oracle_.hook_enter("capable");
  oracle_.chain_verdict(Errno::eperm);
  oracle_.syscall_exit("sys_bind");
  oracle_.syscall_result(Errno::eacces);
  EXPECT_TRUE(oracle_.violations().empty());
}

TEST_F(OracleTest, UnmediatedSyscallMayMutateFreely) {
  oracle_.syscall_enter("sys_close");  // [unmediated] in the manifest
  gate();  // the flow gate still runs in unmediated syscalls
  oracle_.mutation("fd_close");
  oracle_.syscall_exit("sys_close");
  oracle_.syscall_result(Errno::ok);
  EXPECT_TRUE(oracle_.violations().empty());
}

TEST_F(OracleTest, UnmediatedOnlySiteInMediatedSyscallIsViolation) {
  oracle_.syscall_enter("sys_unlink");
  gate();
  oracle_.hook_enter("path_unlink");
  oracle_.chain_verdict(Errno::ok);
  oracle_.mutation("fd_close");  // empty guard set: unmediated-only site
  oracle_.syscall_exit("sys_unlink");
  oracle_.syscall_result(Errno::ok);
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "guarded-mutation");
}

TEST_F(OracleTest, UnknownSyscallIsManifestDrift) {
  oracle_.syscall_enter("sys_mystery");
  gate();
  oracle_.syscall_exit("sys_mystery");
  oracle_.syscall_result(Errno::ok);
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "manifest-drift");
}

TEST_F(OracleTest, UnknownMutationSiteIsViolation) {
  oracle_.syscall_enter("sys_unlink");
  gate();
  oracle_.hook_enter("path_unlink");
  oracle_.chain_verdict(Errno::ok);
  oracle_.mutation("warp_core");
  oracle_.syscall_exit("sys_unlink");
  oracle_.syscall_result(Errno::ok);
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "unknown-site");
}

TEST_F(OracleTest, HookWithoutVerdictIsViolation) {
  oracle_.syscall_enter("sys_unlink");
  gate();
  oracle_.hook_enter("path_unlink");
  oracle_.syscall_exit("sys_unlink");
  oracle_.syscall_result(Errno::ok);
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "verdict-missing");
}

TEST_F(OracleTest, NestedScopeFoldsChainsIntoParent) {
  // sys_exit dispatched from inside sys_kill, as the kernel really does it.
  oracle_.syscall_enter("sys_kill");
  gate();
  oracle_.hook_enter("task_kill");
  oracle_.chain_verdict(Errno::ok);
  // sys_exit is universal_exempt: no gate chain inside it.
  oracle_.syscall_enter("sys_exit");
  oracle_.mutation("task_exit");
  oracle_.syscall_exit("sys_exit");
  oracle_.syscall_exit("sys_kill");
  oracle_.syscall_result(Errno::ok);
  EXPECT_TRUE(oracle_.violations().empty());
  ASSERT_EQ(oracle_.last_chains().size(), 2u);
  EXPECT_EQ(oracle_.last_chains()[0].hook, "task_syscall");
  EXPECT_EQ(oracle_.last_chains()[1].hook, "task_kill");
}

TEST_F(OracleTest, EventsOutsideScopesAreIgnored) {
  oracle_.hook_enter("clock_tick");
  oracle_.chain_verdict(Errno::ok);
  oracle_.mutation("vfs_create");
  EXPECT_TRUE(oracle_.violations().empty());
}

// ---------- first-deny-wins ----------

TEST_F(OracleTest, ModuleDenialCarriedFaithfullyIsClean) {
  oracle_.syscall_enter("sys_unlink");
  gate();
  oracle_.hook_enter("path_unlink");
  oracle_.module_verdict("sfi", Errno::eacces);
  oracle_.chain_verdict(Errno::eacces);
  oracle_.syscall_exit("sys_unlink");
  oracle_.syscall_result(Errno::eacces);
  EXPECT_TRUE(oracle_.violations().empty());
}

TEST_F(OracleTest, ModuleDenialOverwrittenByAllowIsViolation) {
  // A module denied the chain, but the stack reported an allow — a later
  // module's verdict (or a stack bug) swallowed the denial.
  oracle_.syscall_enter("sys_unlink");
  gate();
  oracle_.hook_enter("path_unlink");
  oracle_.module_verdict("sfi", Errno::eacces);
  oracle_.chain_verdict(Errno::ok);
  oracle_.mutation("vfs_unlink");
  oracle_.syscall_exit("sys_unlink");
  oracle_.syscall_result(Errno::ok);
  ASSERT_FALSE(oracle_.violations().empty());
  EXPECT_EQ(oracle_.violations()[0].rule, "first-deny-wins");
}

TEST_F(OracleTest, ModuleDenialRewrittenErrnoIsViolation) {
  oracle_.syscall_enter("sys_unlink");
  gate();
  oracle_.hook_enter("path_unlink");
  oracle_.module_verdict("sfi", Errno::eacces);
  oracle_.chain_verdict(Errno::eperm);  // wrong errno surfaced
  oracle_.syscall_exit("sys_unlink");
  oracle_.syscall_result(Errno::eperm);
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "first-deny-wins");
}

// ---------- universal gate ----------

TEST_F(OracleTest, ScopeWithoutGateChainIsUniversalGateViolation) {
  oracle_.syscall_enter("sys_getpid");  // unmediated, but not gate-exempt
  oracle_.syscall_exit("sys_getpid");
  oracle_.syscall_result(Errno::ok);
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "universal-gate");
}

TEST_F(OracleTest, MutationBeforeGateIsUniversalGateViolation) {
  // The SFI-instrumented shape of a hook-after-mutation reorder: state
  // changes before the flow gate has allowed anything. The per-site guard
  // rule cannot see this (sys_close is [unmediated]); only the universal
  // gate can.
  oracle_.syscall_enter("sys_close");
  oracle_.mutation("fd_close");
  gate();
  oracle_.syscall_exit("sys_close");
  oracle_.syscall_result(Errno::ok);
  ASSERT_EQ(oracle_.violations().size(), 1u);
  EXPECT_EQ(oracle_.violations()[0].rule, "universal-gate");
}

TEST_F(OracleTest, ExemptScopeNeedsNoGate) {
  oracle_.syscall_enter("sys_exit");  // universal_exempt in the manifest
  oracle_.mutation("task_exit");
  oracle_.syscall_exit("sys_exit");
  oracle_.syscall_result(Errno::ok);
  EXPECT_TRUE(oracle_.violations().empty());
}

// ---------- seeded-bad trace fixture ----------

// Replays a recorded witness stream (one event per line) into an oracle.
void replay_trace(MediationOracle& oracle, std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string ev, arg;
    fields >> ev >> arg;
    if (ev == "syscall_enter") {
      oracle.syscall_enter(arg);
    } else if (ev == "syscall_exit") {
      oracle.syscall_exit(arg);
    } else if (ev == "hook_enter") {
      oracle.hook_enter(arg);
    } else if (ev == "chain_verdict") {
      oracle.chain_verdict(static_cast<Errno>(std::stoi(arg)));
    } else if (ev == "mutation") {
      oracle.mutation(arg);
    } else if (ev == "syscall_result") {
      oracle.syscall_result(static_cast<Errno>(std::stoi(arg)));
    } else {
      FAIL() << "unknown trace event: " << ev;
    }
  }
}

TEST(FuzzTraceFixture, OracleTripsOnSeededReorderedHook) {
  std::ifstream in(SACK_SOURCE_DIR "/tests/fixtures/fuzz/reordered_hook.trace");
  ASSERT_TRUE(in.is_open());
  MediationOracle oracle(test_manifest());
  replay_trace(oracle, in);
  ASSERT_FALSE(oracle.violations().empty())
      << "seeded reorder fixture must trip the oracle";
  EXPECT_EQ(oracle.violations()[0].rule, "guarded-mutation");
  EXPECT_EQ(oracle.violations()[0].syscall, "sys_rename");
}

// ---------- executor ----------

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : executor_(test_manifest()) {
    Logger::instance().set_level(LogLevel::off);
  }
  ~ExecutorTest() override { Logger::instance().set_level(LogLevel::warn); }

  Executor executor_;
  Coverage coverage_;
};

TEST_F(ExecutorTest, FileLifecycleRunsCleanly) {
  Program prog = Program::from_text(
      "open 0 0 0 5\n"    // create+write /tmp/a into slot 0
      "write 0 0 0 64\n"
      "lseek 0 0 0 8\n"
      "read 0 0 0 64\n"
      "close 0 0 0 0\n"
      "unlink 0 0 0 0\n");
  ExecResult res = executor_.run(prog, coverage_, /*seed=*/0);
  EXPECT_EQ(res.ops_run, prog.ops.size());
  EXPECT_GT(res.new_coverage, 0u);
  EXPECT_TRUE(res.violations.empty()) << res.violations[0].rule << ": "
                                      << res.violations[0].detail;
}

TEST_F(ExecutorTest, SeedCorpusRunsWithZeroViolations) {
  Corpus corpus;
  ASSERT_GT(corpus.load_dir(SACK_SOURCE_DIR "/tests/fixtures/fuzz/corpus"),
            0u);
  for (const Program& prog : corpus.programs()) {
    ExecResult res = executor_.run(prog, coverage_, /*seed=*/0);
    EXPECT_TRUE(res.violations.empty())
        << res.violations[0].rule << " in " << res.violations[0].syscall
        << ": " << res.violations[0].detail;
  }
}

// The TOCTOU canary: the racer module closes descriptors out from under
// sys_bind's hook chain. Before the fix, the post-hook re-fetch aborted the
// process; with the fix, the pinned description is used and the oracle stays
// quiet. Many seeds, so the 1-in-4 racer branch fires with certainty.
TEST_F(ExecutorTest, BindSurvivesRacerClosingFds) {
  Program prog = Program::from_text(
      "socket 0 1 0 0\n"  // inet socket into slot 0
      "bind 0 0 1 1\n"    // inet port 1025
      "socket 0 1 1 0\n"
      "bind 0 1 1 2\n"
      "socket 0 1 2 0\n"
      "bind 0 2 1 3\n");
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    ExecResult res = executor_.run(prog, coverage_, seed);
    EXPECT_TRUE(res.violations.empty())
        << "seed " << seed << ": " << res.violations[0].rule << ": "
        << res.violations[0].detail;
  }
}

// Mid-syscall SDS event injection (racer's file_permission branch) must not
// produce mediation violations either: verdicts may change, order may not.
TEST_F(ExecutorTest, SituationFlipsMidProgramStayMediated) {
  Program prog = Program::from_text(
      "open 1 4 0 0\n"    // media task opens /var/media/track.pcm read-only
      "read 1 0 0 128\n"
      "read 1 0 0 128\n"
      "read 1 0 0 128\n"
      "sds_event 2 0 0 0\n"  // crash_detected: normal -> emergency
      "read 1 0 0 128\n"
      // Four 700ms ticks blow the 2000ms watchdog deadline: -> lockdown.
      "clock_tick 0 0 0 699\n"
      "clock_tick 0 0 0 699\n"
      "clock_tick 0 0 0 699\n"
      "clock_tick 0 0 0 699\n"
      "read 1 0 0 128\n"
      "close 1 0 0 0\n");
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    ExecResult res = executor_.run(prog, coverage_, seed);
    EXPECT_TRUE(res.violations.empty())
        << "seed " << seed << ": " << res.violations[0].rule << ": "
        << res.violations[0].detail;
  }
}

// ---------- SFI in the live stack ----------

// The seeded SFI deny (sds_daemon may not chdir, kFuzzSfiProfiles) must pass
// through the real LsmStack, surface as the syscall's errno, and leave the
// first-deny-wins and universal-gate witnesses satisfied.
TEST(FuzzSfi, SfiDenialSurvivesTheStack) {
  MediationOracle oracle(test_manifest());
  FuzzEnv env(&oracle, /*racer_seed=*/0);
  kernel::Kernel& k = env.kernel();

  auto r = k.sys_chdir(env.task(2), "/var/media");  // sds_daemon
  oracle.syscall_result(r.ok() ? Errno::ok : r.error());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::eacces);
  EXPECT_GE(env.sfi().denial_count(), 1u);

  k.set_mediation_witness(nullptr);
  ASSERT_TRUE(oracle.violations().empty())
      << oracle.violations()[0].rule << ": " << oracle.violations()[0].detail;
  // The chain the denial rode was the gate chain itself.
  bool saw_denied_gate = false;
  for (const ChainRecord& c : oracle.last_chains())
    if (c.hook == "task_syscall" && c.verdict == Errno::eacces)
      saw_denied_gate = true;
  EXPECT_TRUE(saw_denied_gate);
}

TEST(FuzzSfi, AllowedSyscallRunsGateChainCleanly) {
  MediationOracle oracle(test_manifest());
  FuzzEnv env(&oracle, /*racer_seed=*/0);
  kernel::Kernel& k = env.kernel();

  auto r = k.sys_chdir(env.task(1), "/var/media");  // media: catch-all allows
  oracle.syscall_result(r.ok() ? Errno::ok : r.error());
  EXPECT_TRUE(r.ok());

  k.set_mediation_witness(nullptr);
  EXPECT_TRUE(oracle.violations().empty())
      << oracle.violations()[0].rule << ": " << oracle.violations()[0].detail;
  bool saw_gate = false;
  for (const ChainRecord& c : oracle.last_chains())
    if (c.hook == "task_syscall" && c.verdict == Errno::ok) saw_gate = true;
  EXPECT_TRUE(saw_gate);
}

// ---------- mutation & corpus machinery ----------

TEST(FuzzMutate, GenerateIsDeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(generate(a), generate(b));
  Rng a2(7);
  EXPECT_NE(generate(a2), generate(c));  // overwhelmingly likely
}

TEST(FuzzMutate, MutateNeverReturnsEmpty) {
  Rng rng(3);
  Program prog = generate(rng);
  for (int i = 0; i < 200; ++i) {
    prog = mutate(rng, prog);
    ASSERT_FALSE(prog.ops.empty());
    ASSERT_LE(prog.ops.size(), 256u);
  }
}

TEST(FuzzCorpus, SaveAndLoadRoundTrip) {
  Rng rng(11);
  Corpus corpus;
  for (int i = 0; i < 5; ++i) corpus.add(generate(rng));

  const std::string dir =
      ::testing::TempDir() + "/sack_fuzz_corpus_roundtrip";
  ASSERT_EQ(corpus.save_dir(dir), 5u);

  Corpus loaded;
  ASSERT_EQ(loaded.load_dir(dir), 5u);
  EXPECT_EQ(loaded.programs(), corpus.programs());
}

TEST(FuzzCorpus, MinimizeShrinksToPredicateCore) {
  // 1 essential op drowned in 20 noise ops.
  Program prog;
  for (int i = 0; i < 10; ++i) prog.ops.push_back({OpCode::read, 0, 0, 0, 0});
  prog.ops.push_back({OpCode::unlink, 1, 2, 3, 4});
  for (int i = 0; i < 10; ++i) prog.ops.push_back({OpCode::stat, 0, 0, 0, 0});

  Program min = minimize(prog, [](const Program& candidate) {
    for (const Op& op : candidate.ops)
      if (op.code == OpCode::unlink) return true;
    return false;
  });
  ASSERT_EQ(min.ops.size(), 1u);
  EXPECT_EQ(min.ops[0].code, OpCode::unlink);
}

// ---------- short campaign ----------

TEST(FuzzCampaign, ShortCampaignIsCleanAndDeterministic) {
  Logger::instance().set_level(LogLevel::off);
  FuzzConfig config;
  config.seed = 5;
  config.max_execs = 120;
  config.plateau_execs = 120;
  Fuzzer fuzzer(config, test_manifest());
  fuzzer.run();
  Logger::instance().set_level(LogLevel::warn);

  EXPECT_EQ(fuzzer.stats().execs, 120u);
  EXPECT_GT(fuzzer.stats().coverage_keys, 50u);
  EXPECT_TRUE(fuzzer.findings().empty());

  // Same seed, same coverage: the campaign is reproducible.
  Logger::instance().set_level(LogLevel::off);
  Fuzzer again(config, test_manifest());
  again.run();
  Logger::instance().set_level(LogLevel::warn);
  EXPECT_EQ(again.stats().coverage_keys, fuzzer.stats().coverage_keys);
  EXPECT_EQ(again.stats().corpus_size, fuzzer.stats().corpus_size);
}

}  // namespace
}  // namespace sack::fuzz
