// The shipped policy artifacts under policies/ must stay loadable: these
// tests read them from disk (SACK_POLICY_DIR is set by CMake) and load each
// into the matching engine.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "apparmor/apparmor.h"
#include "core/policy_parser.h"
#include "core/sack_module.h"
#include "kernel/process.h"
#include "ivi/ivi_system.h"
#include "te/te_module.h"

#ifndef SACK_POLICY_DIR
#define SACK_POLICY_DIR "policies"
#endif

namespace sack {
namespace {

std::string read_policy_file(const std::string& name) {
  std::ifstream in(std::string(SACK_POLICY_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "cannot open " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ShippedPolicies, CavDefaultLoadsCleanly) {
  kernel::Kernel k;
  auto* mod = static_cast<core::SackModule*>(k.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  std::vector<core::Diagnostic> diags;
  ASSERT_TRUE(
      mod->load_policy_text(read_policy_file("cav_default.sack"), &diags)
          .ok());
  // The deliberately declared-but-unbound speed-band events warn; nothing
  // else may.
  for (const auto& d : diags) {
    EXPECT_EQ(d.code, core::CheckCode::declared_event_unused)
        << d.to_string();
  }
  EXPECT_EQ(mod->current_state_name(), "parked_with_driver");
  EXPECT_EQ(mod->policy().permissions.size(), 5u);
}

TEST(ShippedPolicies, EmergencyFailsafeHasTimedRule) {
  kernel::Kernel k;
  auto* mod = static_cast<core::SackModule*>(k.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  ASSERT_TRUE(
      mod->load_policy_text(read_policy_file("emergency_failsafe.sack")).ok());
  ASSERT_TRUE(mod->deliver_event("crash_detected").ok());
  EXPECT_EQ(mod->current_state_name(), "emergency");
  k.advance_clock_ms(300'001);
  EXPECT_EQ(mod->current_state_name(), "normal");
}

TEST(ShippedPolicies, WatchdogFailsafeTripsAndRecovers) {
  kernel::Kernel k;
  auto* mod = static_cast<core::SackModule*>(k.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  std::vector<core::Diagnostic> diags;
  ASSERT_TRUE(
      mod->load_policy_text(read_policy_file("watchdog_failsafe.sack"), &diags)
          .ok());
  EXPECT_TRUE(diags.empty());
  ASSERT_TRUE(mod->policy().watchdog.has_value());
  EXPECT_EQ(mod->policy().watchdog->deadline_ms, 2000);

  // 2 s without SDS activity: forced into the declared failsafe.
  k.advance_clock_ms(2000);
  EXPECT_EQ(mod->current_state_name(), "lockdown");
  // The explicit recovery transition leads back out.
  ASSERT_TRUE(mod->deliver_event("sds_recovered").ok());
  EXPECT_EQ(mod->current_state_name(), "normal");
}

TEST(ShippedPolicies, SpeedGateLoadsCleanly) {
  kernel::Kernel k;
  auto* mod = static_cast<core::SackModule*>(k.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  std::vector<core::Diagnostic> diags;
  ASSERT_TRUE(
      mod->load_policy_text(read_policy_file("speed_gate.sack"), &diags)
          .ok());
  EXPECT_TRUE(diags.empty());
}

TEST(ShippedPolicies, AppArmorProfilesLoadCleanly) {
  kernel::Kernel k;
  auto* aa = static_cast<apparmor::AppArmorModule*>(
      k.add_lsm(std::make_unique<apparmor::AppArmorModule>()));
  std::vector<ParseError> errors;
  ASSERT_TRUE(
      aa->load_policy_text(read_policy_file("ivi_default.apparmor"), &errors)
          .ok())
      << (errors.empty() ? "" : errors[0].to_string());
  EXPECT_EQ(aa->profile_names().size(), 3u);
}

TEST(ShippedPolicies, TePolicyLoadsCleanly) {
  kernel::Kernel k;
  auto* te = static_cast<te::TeModule*>(
      k.add_lsm(std::make_unique<te::TeModule>()));
  ASSERT_TRUE(te->load_policy_text(read_policy_file("ivi_default.te")).ok());
  EXPECT_EQ(te->policy().types.size(), 4u);
}

TEST(ShippedPolicies, CanonicalDumpRoundTripsThroughParser) {
  // Property: parse -> to_text -> re-parse -> to_text is a fixed point for
  // every shipped policy. A dump that loses a section (the watchdog clause,
  // timed transitions, subject spellings) diverges on the second pass.
  for (const char* name :
       {"cav_default.sack", "speed_gate.sack", "emergency_failsafe.sack",
        "watchdog_failsafe.sack"}) {
    auto first = core::parse_policy(read_policy_file(name));
    ASSERT_TRUE(first.ok()) << name;
    std::string dump = first.policy.to_text();
    auto second = core::parse_policy(dump);
    ASSERT_TRUE(second.ok())
        << name << ": canonical dump failed to re-parse: "
        << (second.errors.empty() ? "" : second.errors[0].to_string());
    EXPECT_EQ(second.policy.to_text(), dump) << name;
    // Structural spot checks the textual equality could in principle mask.
    EXPECT_EQ(second.policy.states.size(), first.policy.states.size()) << name;
    EXPECT_EQ(second.policy.initial_state, first.policy.initial_state) << name;
    EXPECT_EQ(second.policy.watchdog.has_value(),
              first.policy.watchdog.has_value())
        << name;
    if (first.policy.watchdog.has_value()) {
      EXPECT_EQ(second.policy.watchdog->deadline_ms,
                first.policy.watchdog->deadline_ms)
          << name;
    }
  }
}

TEST(ShippedPolicies, CavDefaultMatchesBuiltin) {
  // The shipped file and the built-in default must stay in sync: loading
  // either produces the same canonical dump.
  kernel::Kernel k;
  auto* mod = static_cast<core::SackModule*>(k.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  ASSERT_TRUE(
      mod->load_policy_text(read_policy_file("cav_default.sack")).ok());
  std::string from_file = mod->policy().to_text();
  ASSERT_TRUE(
      mod->load_policy_text(ivi::default_sack_policy_text(false)).ok());
  EXPECT_EQ(mod->policy().to_text(), from_file);
}

}  // namespace
}  // namespace sack
