// Access vector cache: unit behaviour, integration with SackModule's
// enforcement path (correctness under adaptive revocation — a cached allow
// must flip to deny on the very next hook call after a revoking transition),
// and multi-threaded readers racing situation transitions (run under TSan in
// CI).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/avc.h"
#include "core/policy_parser.h"
#include "core/ruleset.h"
#include "core/sack_module.h"
#include "kernel/process.h"

namespace sack::core {
namespace {

using kernel::Cred;
using kernel::Fd;
using kernel::Kernel;
using kernel::OpenFlags;
using kernel::Process;
using kernel::Task;

AccessQuery make_query(std::string_view exe, std::string_view path,
                       MacOp op) {
  AccessQuery q;
  q.subject_exe = exe;
  q.object_path = path;
  q.op = op;
  return q;
}

// --- AccessVectorCache unit behaviour ---

TEST(AvcTest, ProbeMissThenInsertThenHit) {
  AccessVectorCache avc;
  auto q = make_query("/usr/bin/app", "/var/media/track.pcm", MacOp::read);
  EXPECT_FALSE(avc.probe(q, 5).has_value());
  avc.insert(q, 5, Errno::ok);
  auto hit = avc.probe(q, 5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Errno::ok);

  auto s = avc.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(AvcTest, DistinctKeyComponentsAreDistinctEntries) {
  AccessVectorCache avc;
  auto q = make_query("/usr/bin/app", "/var/media/track.pcm", MacOp::read);
  avc.insert(q, 1, Errno::ok);

  auto other_op = q;
  other_op.op = MacOp::write;
  EXPECT_FALSE(avc.probe(other_op, 1).has_value());

  auto other_exe = q;
  other_exe.subject_exe = "/usr/bin/evil";
  EXPECT_FALSE(avc.probe(other_exe, 1).has_value());

  auto other_profile = q;
  other_profile.subject_profile = "media";
  EXPECT_FALSE(avc.probe(other_profile, 1).has_value());
}

TEST(AvcTest, StaleGenerationIsAMissAndOverwritable) {
  AccessVectorCache avc;
  auto q = make_query("/usr/bin/app", "/dev/door", MacOp::write);
  avc.insert(q, 7, Errno::ok);
  // The verdict was computed under generation 7; generation 8 must re-match.
  EXPECT_FALSE(avc.probe(q, 8).has_value());
  avc.insert(q, 8, Errno::eacces);
  auto hit = avc.probe(q, 8);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Errno::eacces);
  // One key, latest stamp wins.
  EXPECT_EQ(avc.stats().entries, 1u);
}

TEST(AvcTest, InvalidateAllFlushesEverything) {
  AccessVectorCache avc;
  for (int i = 0; i < 50; ++i) {
    std::string path = "/var/obj_" + std::to_string(i);
    avc.insert(make_query("/usr/bin/app", path, MacOp::read), 3, Errno::ok);
  }
  EXPECT_GT(avc.stats().entries, 0u);
  avc.invalidate_all();
  auto s = avc.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_FALSE(
      avc.probe(make_query("/usr/bin/app", "/var/obj_1", MacOp::read), 3)
          .has_value());
}

TEST(AvcTest, CapacityIsBoundedWithEvictions) {
  AccessVectorCache avc(/*capacity=*/64);
  for (int i = 0; i < 4096; ++i) {
    std::string path = "/var/obj_" + std::to_string(i);
    avc.insert(make_query("/usr/bin/app", path, MacOp::read), 1, Errno::ok);
  }
  auto s = avc.stats();
  EXPECT_LE(s.entries, s.capacity);
  EXPECT_GT(s.evictions, 0u);
}

// --- SackModule integration: enforcement correctness with the AVC on ---

constexpr std::string_view kAvcPolicy = R"(
states { normal = 0; emergency = 1; calm = 2; }
initial normal;
transitions {
  normal -> emergency on crash_detected;
  emergency -> normal on emergency_cleared;
  normal -> calm on traffic_clear;
  calm -> normal on traffic_dense;
}
permissions { MEDIA_READ; DOOR_CONTROL; }
state_per {
  normal: MEDIA_READ;
  calm: MEDIA_READ;
  emergency: MEDIA_READ, DOOR_CONTROL;
}
per_rules {
  MEDIA_READ { allow * /var/media/** read getattr; }
  DOOR_CONTROL { allow /usr/bin/rescue /dev/door write ioctl; }
}
)";

class AvcModuleTest : public ::testing::Test {
 protected:
  AvcModuleTest() {
    sack_ = static_cast<SackModule*>(kernel_.add_lsm(
        std::make_unique<SackModule>(SackMode::independent)));
    kernel_.vfs().mkdir_p("/var/media");
    Process admin(kernel_, kernel_.init_task());
    EXPECT_TRUE(admin.write_file("/var/media/track.pcm", "DATA").ok());
    EXPECT_TRUE(admin.write_file("/dev/door", "").ok());
    EXPECT_TRUE(admin.write_file("/usr/bin/rescue", "ELF").ok());
    EXPECT_TRUE(sack_->load_policy_text(kAvcPolicy).ok());
  }

  Task& rescue() {
    if (!rescue_)
      rescue_ = &kernel_.spawn_task("rescue", Cred::root(), "/usr/bin/rescue");
    return *rescue_;
  }

  Kernel kernel_;
  SackModule* sack_ = nullptr;
  Task* rescue_ = nullptr;
};

TEST_F(AvcModuleTest, RepeatHooksHitTheCache) {
  Process p(kernel_, rescue());
  ASSERT_TRUE(p.read_file("/var/media/track.pcm").ok());
  const auto before = sack_->avc().stats();
  ASSERT_TRUE(p.read_file("/var/media/track.pcm").ok());
  const auto after = sack_->avc().stats();
  EXPECT_GT(after.hits, before.hits);
}

TEST_F(AvcModuleTest, RevokedPermissionDeniedOnFirstPostTransitionHook) {
  ASSERT_TRUE(sack_->deliver_event("crash_detected").ok());
  Process p(kernel_, rescue());
  // Warm the cache with an allowed verdict on the door.
  EXPECT_TRUE(p.open("/dev/door", OpenFlags::write).ok());
  EXPECT_TRUE(p.open("/dev/door", OpenFlags::write).ok());
  EXPECT_GT(sack_->avc().stats().hits, 0u);

  // The emergency clears: DOOR_CONTROL is revoked. The very next hook call
  // must see the denial — a stale cached allow here would be a security
  // hole, not a performance bug.
  ASSERT_TRUE(sack_->deliver_event("emergency_cleared").ok());
  EXPECT_EQ(p.open("/dev/door", OpenFlags::write).error(), Errno::eacces);

  // And the permission comes back with the next emergency (OAC).
  ASSERT_TRUE(sack_->deliver_event("crash_detected").ok());
  EXPECT_TRUE(p.open("/dev/door", OpenFlags::write).ok());
}

TEST_F(AvcModuleTest, TransitionFlushesAvcViaInvalidation) {
  Process p(kernel_, rescue());
  ASSERT_TRUE(p.read_file("/var/media/track.pcm").ok());
  const auto before = sack_->avc().stats();
  ASSERT_TRUE(sack_->deliver_event("crash_detected").ok());
  const auto after = sack_->avc().stats();
  EXPECT_GT(after.invalidations, before.invalidations);
  EXPECT_EQ(after.entries, 0u);
}

TEST_F(AvcModuleTest, EquivalentStateTransitionKeepsGenerationAndCache) {
  Process p(kernel_, rescue());
  ASSERT_TRUE(p.read_file("/var/media/track.pcm").ok());
  const auto gen = sack_->policy_generation();
  const auto before = sack_->avc().stats();

  // normal -> calm grants exactly the same permission set: the APE must not
  // rebuild, bump the generation, or flush the AVC.
  auto outcome = sack_->deliver_event("traffic_clear");
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->transitioned);
  EXPECT_EQ(sack_->current_state_name(), "calm");
  EXPECT_EQ(sack_->policy_generation(), gen);
  EXPECT_EQ(sack_->avc().stats().invalidations, before.invalidations);

  // Cached verdicts stay warm across the enforcement-neutral transition.
  ASSERT_TRUE(p.read_file("/var/media/track.pcm").ok());
  EXPECT_GT(sack_->avc().stats().hits, before.hits);

  // A transition that does change permissions still bumps as usual.
  ASSERT_TRUE(sack_->deliver_event("traffic_dense").ok());
  ASSERT_TRUE(sack_->deliver_event("crash_detected").ok());
  EXPECT_GT(sack_->policy_generation(), gen);
}

TEST_F(AvcModuleTest, DisabledAvcStillEnforcesCorrectly) {
  sack_->set_avc(false);
  ASSERT_TRUE(sack_->deliver_event("crash_detected").ok());
  Process p(kernel_, rescue());
  EXPECT_TRUE(p.open("/dev/door", OpenFlags::write).ok());
  ASSERT_TRUE(sack_->deliver_event("emergency_cleared").ok());
  EXPECT_EQ(p.open("/dev/door", OpenFlags::write).error(), Errno::eacces);
  EXPECT_EQ(sack_->avc().stats().hits, 0u);
}

TEST_F(AvcModuleTest, StatusReportsAvcCounters) {
  Process p(kernel_, rescue());
  ASSERT_TRUE(p.read_file("/var/media/track.pcm").ok());
  ASSERT_TRUE(p.read_file("/var/media/track.pcm").ok());
  auto status = sack_->status_text();
  EXPECT_NE(status.find("avc_enabled: yes"), std::string::npos);
  EXPECT_NE(status.find("avc_hits: "), std::string::npos);
  EXPECT_NE(status.find("avc_hit_rate: "), std::string::npos);
  EXPECT_NE(status.find("avc_invalidations: "), std::string::npos);
}

// --- concurrency: readers racing transitions (TSan hunts the races) ---

constexpr std::string_view kStressPolicy = R"(
states { a = 0; b = 1; }
initial a;
transitions { a -> b on flip; b -> a on flop; }
permissions { PA; PB; }
state_per { a: PA; b: PB; }
per_rules {
  PA {
    allow * /shared/** read;
    allow * /data/a_* read;
  }
  PB {
    allow * /shared/** read;
    allow * /data/b_* read;
    deny * /shared/secret read;
  }
}
)";

TEST(AvcStressTest, ConcurrentChecksRaceActivations) {
  auto parsed = parse_policy(kStressPolicy);
  ASSERT_TRUE(parsed.ok());

  CompiledRuleSet rules;
  (void)rules.load(parsed.policy);
  rules.activate({"PA"});

  AccessVectorCache avc(/*capacity=*/512);
  std::atomic<std::uint64_t> generation{1};
  std::atomic<bool> stop{false};

  // Transition storm: alternate the active permission set, with the same
  // publish -> bump -> flush ordering the APE uses, until every reader has
  // finished its fixed workload (so readers and the storm always overlap).
  std::thread writer([&] {
    for (std::uint64_t i = 1; !stop.load(std::memory_order_relaxed); ++i) {
      rules.activate(i % 2 ? std::vector<std::string>{"PB"}
                           : std::vector<std::string>{"PA"});
      generation.fetch_add(1, std::memory_order_release);
      avc.invalidate_all();
    }
  });

  // Invariants that hold in *both* states, so readers can assert them at
  // any point during the storm: /shared/doc is readable everywhere,
  // unguarded paths are always ok.
  constexpr int kReaders = 4;
  constexpr int kIterations = 3000;
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      const std::string exe = "/usr/bin/app_" + std::to_string(t);
      const std::string scratch = "/tmp/scratch_" + std::to_string(t);
      for (int i = 0; i < kIterations; ++i) {
        for (const auto& [path, expect_ok] :
             {std::pair<std::string_view, bool>{"/shared/doc", true},
              {scratch, true}}) {
          AccessQuery q = make_query(exe, path, MacOp::read);
          // The same probe-then-match dance as SackModule::check_op.
          const std::uint64_t gen = generation.load(std::memory_order_acquire);
          Errno rc;
          if (auto cached = avc.probe(q, gen)) {
            rc = *cached;
          } else {
            rc = rules.check(q);
            avc.insert(q, gen, rc);
          }
          if (expect_ok && rc != Errno::ok)
            violations.fetch_add(1, std::memory_order_relaxed);
        }
        // State-dependent traffic: verdict flips with the storm; only the
        // absence of crashes/races is asserted (TSan does the heavy
        // lifting), plus the verdict domain.
        AccessQuery q = make_query(exe, "/shared/secret", MacOp::read);
        const std::uint64_t gen = generation.load(std::memory_order_acquire);
        Errno rc;
        if (auto cached = avc.probe(q, gen)) {
          rc = *cached;
        } else {
          rc = rules.check(q);
          avc.insert(q, gen, rc);
        }
        if (rc != Errno::ok && rc != Errno::eacces)
          violations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& th : readers) th.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(violations.load(), 0u);
  const auto s = avc.stats();
  EXPECT_GT(s.hits + s.misses, 0u);
  EXPECT_GE(s.invalidations, 1u);
}

TEST(AvcStressTest, ConcurrentAvcInsertsStayBounded) {
  AccessVectorCache avc(/*capacity=*/256);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      const std::string exe = "/usr/bin/w" + std::to_string(t);
      for (int i = 0; i < 5000; ++i) {
        std::string path = "/obj/" + std::to_string(i % 997);
        AccessQuery q = make_query(exe, path, MacOp::read);
        if (!avc.probe(q, 1)) avc.insert(q, 1, Errno::ok);
        if (i % 1024 == 0) (void)avc.stats();
      }
    });
  }
  for (auto& th : workers) th.join();
  const auto s = avc.stats();
  EXPECT_LE(s.entries, s.capacity);
}

}  // namespace
}  // namespace sack::core
