// simbench utilities: stats, table formatting, policy generators, envs and
// workloads (smoke-level, so the bench binaries can't rot silently).
#include <gtest/gtest.h>

#include "core/policy_checker.h"
#include "simbench/env.h"
#include "simbench/policy_gen.h"
#include "simbench/stats.h"
#include "simbench/table.h"
#include "simbench/workloads.h"

namespace sack::simbench {
namespace {

TEST(Stats, BasicMoments) {
  auto s = compute_stats({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
  EXPECT_EQ(s.n, 4u);
}

TEST(Stats, OddMedianAndEmpty) {
  EXPECT_DOUBLE_EQ(compute_stats({5.0, 1.0, 3.0}).median, 3.0);
  EXPECT_EQ(compute_stats({}).n, 0u);
  EXPECT_DOUBLE_EQ(compute_stats({7.0}).stddev, 0.0);
}

TEST(Stats, Deltas) {
  EXPECT_DOUBLE_EQ(percent_delta(100, 103), 3.0);
  EXPECT_DOUBLE_EQ(percent_delta(100, 97), -3.0);
  EXPECT_EQ(format_delta(100, 102.5), "(+2.50%)");
  EXPECT_EQ(format_delta(100, 97.5), "(-2.50%)");
}

TEST(PaperTableFormat, ColumnsAlignAndDeltasAppear) {
  PaperTable t("Demo", {"base", "variant"});
  t.section("Latency");
  t.row("op_a", {1.0, 1.1}, "us");
  t.row("op_b", {2000.0, 1900.0}, "MB/s", true);
  std::string out = t.to_string();
  EXPECT_NE(out.find("=== Demo ==="), std::string::npos);
  EXPECT_NE(out.find("base (baseline)"), std::string::npos);
  EXPECT_NE(out.find("## Latency"), std::string::npos);
  EXPECT_NE(out.find("(+10.00%)"), std::string::npos);
  EXPECT_NE(out.find("(-5.00%)"), std::string::npos);
}

TEST(PolicyGen, DefaultPolicyIsClean) {
  for (bool profiles : {false, true}) {
    auto policy = default_bench_sack_policy(profiles);
    auto diags = core::check_policy(
        policy, profiles ? core::CheckMode::apparmor_enhanced
                         : core::CheckMode::independent);
    EXPECT_FALSE(core::has_errors(diags));
  }
}

TEST(PolicyGen, RulesPolicyHasExactCount) {
  for (int count : {0, 10, 500}) {
    auto policy = sack_policy_with_rules(count, false);
    std::size_t rules = 0;
    for (const auto& [perm, rs] : policy.per_rules) rules += rs.size();
    EXPECT_EQ(rules, static_cast<std::size_t>(count));
    EXPECT_FALSE(core::has_errors(
        core::check_policy(policy, core::CheckMode::independent)));
  }
}

TEST(PolicyGen, StatesPolicyScales) {
  auto policy = sack_policy_with_states(50);
  EXPECT_EQ(policy.states.size(), 50u);
  EXPECT_EQ(policy.transitions.size(), 50u);  // the ring
  EXPECT_FALSE(core::has_errors(
      core::check_policy(policy, core::CheckMode::independent)));
}

TEST(PolicyGen, CompatibilityPoliciesAllLoadable) {
  auto policies = compatibility_policies();
  ASSERT_EQ(policies.size(), 10u);
  for (const auto& policy : policies) {
    EXPECT_FALSE(core::has_errors(
        core::check_policy(policy, core::CheckMode::independent)));
  }
}

// Smoke: every workload runs against every MAC configuration without
// tripping its internal must() checks (which abort on unexpected errno).
class WorkloadSmoke : public ::testing::TestWithParam<BenchMac> {};

TEST_P(WorkloadSmoke, AllWorkloadsExecute) {
  EnvOptions options;
  options.mac = GetParam();
  BenchEnv env(options);

  for (int i = 0; i < 3; ++i) {
    wl_null_syscall(env);
    wl_fork_exit_wait(env);
    wl_stat(env);
    wl_open_close(env);
    wl_exec(env);
    wl_file_create_delete(env, 0);
    wl_file_create_delete(env, 10 * 1024);
    wl_mmap_cycle(env);
  }
  PipeChannel pipe_ch(env);
  SocketChannel unix_ch(env, kernel::SockFamily::unix_);
  SocketChannel tcp_ch(env, kernel::SockFamily::inet);
  FileReread reread(env);
  MmapReread mmap_reread(env);
  NullIo null_io(env);
  CtxSwitchPair ctx(env, 16 * 1024);
  std::size_t moved = 0;
  for (int i = 0; i < 20; ++i) {
    moved += pipe_ch.transfer();
    moved += unix_ch.transfer();
    moved += tcp_ch.transfer();
    moved += reread.transfer();
    moved += mmap_reread.transfer();
    null_io.io_once();
    ctx.round_trip();
  }
  EXPECT_GT(moved, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WorkloadSmoke,
    ::testing::Values(BenchMac::none, BenchMac::apparmor,
                      BenchMac::sack_enhanced_apparmor,
                      BenchMac::independent_sack),
    [](const auto& info) {
      switch (info.param) {
        case BenchMac::none: return "none";
        case BenchMac::apparmor: return "apparmor";
        case BenchMac::sack_enhanced_apparmor: return "sack_aa";
        case BenchMac::independent_sack: return "sack";
      }
      return "unknown";
    });

}  // namespace
}  // namespace sack::simbench
