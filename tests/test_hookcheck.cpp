// Pipeline tests for sack-hookcheck: manifest parsing, the full
// manifest+extract+check run over in-memory trees, the seeded-bad fixture
// trees, and — the gate itself — the shipped kernel tree, which must be
// clean against docs/hook_manifest.toml.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "analysis/hookcheck.h"
#include "analysis/manifest.h"
#include "analysis/report.h"

namespace sack::analysis {
namespace {

constexpr const char* kHeaderPath = "src/kernel/lsm/module.h";
constexpr const char* kHeader = R"(
namespace sack {
class SecurityModule {
 public:
  virtual ~SecurityModule() = default;
  virtual Errno file_open(int pid, const std::string& path) {
    return Errno::ok;
  }
  virtual Errno path_unlink(int pid, const std::string& path) {
    return Errno::ok;
  }
  virtual void task_free(int pid) {}
};
}  // namespace sack
)";

constexpr const char* kManifest = R"(
[hookcheck]
sources = ["src/kernel"]
hook_header = "src/kernel/lsm/module.h"

[unmediated]
sys_nop = "no object touched"

[syscall.sys_open]
require = ["file_open"]
order = ["file_open < fds().install"]

[syscall.sys_unlink]
require = ["path_unlink"]
order = ["path_unlink < vfs_.unlink_child"]

[syscall.sys_waitpid]
notify = ["task_free"]
)";

// A fully well-behaved kernel against kManifest.
constexpr const char* kGoodKernel = R"(
#include "lsm/module.h"
namespace sack {
Errno Kernel::sys_open(int pid, const std::string& path) {
  Errno rc =
      lsm_.check([&](SecurityModule& m) { return m.file_open(pid, path); });
  if (rc != Errno::ok) return rc;
  fds().install(pid, path);
  return Errno::ok;
}
Errno Kernel::sys_unlink(int pid, const std::string& path) {
  Errno rc =
      lsm_.check([&](SecurityModule& m) { return m.path_unlink(pid, path); });
  if (rc != Errno::ok) return rc;
  vfs_.unlink_child(parent_of(path), leaf_of(path));
  return Errno::ok;
}
Errno Kernel::sys_waitpid(int pid) {
  lsm_.notify([&](SecurityModule& m) { m.task_free(pid); });
  return Errno::ok;
}
Errno Kernel::sys_nop(int pid) { return Errno::ok; }
}  // namespace sack
)";

HookcheckResult run_mem(const std::string& manifest,
                        const std::string& kernel_cpp) {
  return run_hookcheck_on_sources(
      manifest, "hook_manifest.toml",
      {{kHeaderPath, kHeader}, {"src/kernel/kernel.cpp", kernel_cpp}});
}

bool has_finding(const HookcheckResult& r, const std::string& cls,
                 const std::string& hook = "") {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const Finding& f) {
                       return f.cls == cls && (hook.empty() || f.hook == hook);
                     });
}

// --- manifest parser -------------------------------------------------------

TEST(HookcheckManifest, ParsesSpecsAndDefaults) {
  ManifestParse p = parse_manifest(kManifest);
  ASSERT_TRUE(p.error.empty()) << p.error;
  EXPECT_EQ(p.manifest.hook_header, "src/kernel/lsm/module.h");
  ASSERT_EQ(p.manifest.syscalls.size(), 3u);
  EXPECT_EQ(p.manifest.syscalls[0].entry, "Kernel::sys_open");
  ASSERT_EQ(p.manifest.syscalls[1].order.size(), 1u);
  EXPECT_EQ(p.manifest.syscalls[1].order[0].hook, "path_unlink");
  EXPECT_EQ(p.manifest.syscalls[1].order[0].pattern, "vfs_.unlink_child");
  EXPECT_EQ(p.manifest.unmediated.at("sys_nop"), "no object touched");
}

TEST(HookcheckManifest, MultiLineArraysAndComments) {
  ManifestParse p = parse_manifest(
      "[hookcheck]\n"
      "sources = [\n"
      "  \"src/kernel\",  # scanned tree\n"
      "  \"src/extra\",\n"
      "]\n"
      "hook_header = \"src/kernel/lsm/module.h\"\n");
  ASSERT_TRUE(p.error.empty()) << p.error;
  ASSERT_EQ(p.manifest.sources.size(), 2u);
  EXPECT_EQ(p.manifest.sources[1], "src/extra");
}

TEST(HookcheckManifest, RejectsMalformedInputWithLineNumber) {
  EXPECT_NE(parse_manifest("[hookcheck]\nsources = nope\n").error.find(
                "line 2"),
            std::string::npos);
  EXPECT_FALSE(parse_manifest("[what]\n").error.empty());
  EXPECT_FALSE(parse_manifest("key = \"outside any section\"\n").error.empty());
  EXPECT_FALSE(
      parse_manifest("[syscall.sys_x]\norder = [\"no separator\"]\n")
          .error.empty());
}

// --- full pipeline over in-memory trees ------------------------------------

TEST(HookcheckPipeline, CleanTreeHasNoFindings) {
  HookcheckResult r = run_mem(kManifest, kGoodKernel);
  ASSERT_TRUE(r.ok()) << r.fatal;
  EXPECT_EQ(r.findings.size(), 0u);
  EXPECT_EQ(r.stats.entries_checked, 3u);
  EXPECT_EQ(r.stats.hooks_in_table, 3u);
}

TEST(HookcheckPipeline, MissingHookAndDeadHookDetected) {
  // sys_open proceeds without any dispatch: coverage + drift both fire.
  std::string kernel = kGoodKernel;
  std::size_t at = kernel.find("Errno rc =\n      lsm_.check([&](SecurityModule& m) { return m.file_open(pid, path); });\n  if (rc != Errno::ok) return rc;\n");
  ASSERT_NE(at, std::string::npos);
  kernel.erase(at, kernel.find("fds()", at) - at);
  HookcheckResult r = run_mem(kManifest, kernel);
  ASSERT_TRUE(r.ok()) << r.fatal;
  EXPECT_TRUE(has_finding(r, "missing-hook", "file_open"));
  EXPECT_TRUE(has_finding(r, "dead-hook", "file_open"));
  EXPECT_GE(r.errors(), 2u);
}

TEST(HookcheckPipeline, ConditionalRequiredHookDetected) {
  HookcheckResult r = run_mem(kManifest,
      "namespace sack {\n"
      "Errno Kernel::sys_open(int pid, const std::string& path, int flags) {\n"
      "  if (flags != 0) {\n"
      "    Errno rc =\n"
      "        lsm_.check([&](SecurityModule& m) {"
      " return m.file_open(pid, path); });\n"
      "    if (rc != Errno::ok) return rc;\n"
      "  }\n"
      "  fds().install(pid, path);\n"
      "  return Errno::ok;\n"
      "}\n"
      "Errno Kernel::sys_unlink(int pid, const std::string& path) {\n"
      "  Errno rc =\n"
      "      lsm_.check([&](SecurityModule& m) {"
      " return m.path_unlink(pid, path); });\n"
      "  if (rc != Errno::ok) return rc;\n"
      "  vfs_.unlink_child(path);\n"
      "  return Errno::ok;\n"
      "}\n"
      "Errno Kernel::sys_waitpid(int pid) {\n"
      "  lsm_.notify([&](SecurityModule& m) { m.task_free(pid); });\n"
      "  return Errno::ok;\n"
      "}\n"
      "}\n");
  ASSERT_TRUE(r.ok()) << r.fatal;
  EXPECT_TRUE(has_finding(r, "conditional-hook", "file_open"));
}

TEST(HookcheckPipeline, NotifyDiscardingVerdictDetected) {
  std::string kernel = kGoodKernel;
  // Dispatch the Errno-returning unlink hook through notify().
  std::size_t at = kernel.find(
      "Errno rc =\n      lsm_.check([&](SecurityModule& m) { return "
      "m.path_unlink(pid, path); });\n  if (rc != Errno::ok) return rc;");
  ASSERT_NE(at, std::string::npos);
  kernel.replace(at, kernel.find("return rc;", at) + 10 - at,
                 "lsm_.notify([&](SecurityModule& m) {"
                 " m.path_unlink(pid, path); });");
  HookcheckResult r = run_mem(kManifest, kernel);
  ASSERT_TRUE(r.ok()) << r.fatal;
  EXPECT_TRUE(has_finding(r, "notify-discards-verdict", "path_unlink"));
}

TEST(HookcheckPipeline, DoubleDispatchDetected) {
  std::string kernel = kGoodKernel;
  const std::string dispatch =
      "Errno rc2 =\n"
      "      lsm_.check([&](SecurityModule& m) {"
      " return m.file_open(pid, path); });\n"
      "  if (rc2 != Errno::ok) return rc2;\n  ";
  std::size_t at = kernel.find("fds().install");
  ASSERT_NE(at, std::string::npos);
  kernel.insert(at, dispatch);
  HookcheckResult r = run_mem(kManifest, kernel);
  ASSERT_TRUE(r.ok()) << r.fatal;
  EXPECT_TRUE(has_finding(r, "double-hook", "file_open"));
}

TEST(HookcheckPipeline, StaleOrderAnchorDetected) {
  std::string manifest = kManifest;
  std::size_t at = manifest.find("fds().install");
  ASSERT_NE(at, std::string::npos);
  manifest.replace(at, std::string("fds().install").size(),
                   "descriptor_table().emplace");
  HookcheckResult r = run_mem(manifest, kGoodKernel);
  ASSERT_TRUE(r.ok()) << r.fatal;
  EXPECT_TRUE(has_finding(r, "stale-order-pattern", "file_open"));
}

TEST(HookcheckPipeline, ManifestReferencingUnknownHookIsAnError) {
  std::string manifest = kManifest;
  std::size_t at = manifest.find("\"file_open\"");
  manifest.replace(at, std::string("\"file_open\"").size(), "\"file_opne\"");
  HookcheckResult r = run_mem(manifest, kGoodKernel);
  ASSERT_TRUE(r.ok()) << r.fatal;
  EXPECT_TRUE(has_finding(r, "manifest-error", "file_opne"));
}

TEST(HookcheckPipeline, UndeclaredReachableHookIsAWarning) {
  std::string manifest = kManifest;
  // Drop the order rule together with the require so the reachable hook
  // becomes undeclared rather than required.
  std::size_t at = manifest.find("require = [\"file_open\"]");
  ASSERT_NE(at, std::string::npos);
  manifest.erase(at, manifest.find("[syscall.sys_unlink]") - at);
  HookcheckResult r = run_mem(manifest, kGoodKernel);
  ASSERT_TRUE(r.ok()) << r.fatal;
  EXPECT_TRUE(has_finding(r, "undeclared-hook", "file_open"));
  EXPECT_EQ(r.errors(), 0u);
  EXPECT_GE(count_warnings(r.findings), 1u);
}

TEST(HookcheckPipeline, BadManifestIsFatalNotAFinding) {
  HookcheckResult r = run_mem("[hookcheck]\nsources = nope\n", kGoodKernel);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.fatal.find("line 2"), std::string::npos);
}

// --- report rendering ------------------------------------------------------

TEST(HookcheckReport, TextAndJsonCarryProvenance) {
  std::string kernel = kGoodKernel;
  std::size_t at = kernel.find("Errno rc =");
  kernel.erase(at, kernel.find("fds()", at) - at);
  HookcheckResult r = run_mem(kManifest, kernel);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r.findings.size(), 1u);

  std::string text = render_text(r.findings, r.stats);
  EXPECT_NE(text.find("src/kernel/kernel.cpp:"), std::string::npos);
  EXPECT_NE(text.find("[missing-hook]"), std::string::npos);

  std::string json = render_json(r.findings, r.stats);
  EXPECT_NE(json.find("\"class\": \"missing-hook\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/kernel/kernel.cpp\""),
            std::string::npos);
  EXPECT_NE(json.find("\"errors\":"), std::string::npos);
}

// --- the gate: fixtures and the shipped tree -------------------------------

TEST(HookcheckGate, UnmediatedFixtureTrips) {
  const std::string root =
      std::string(SACK_SOURCE_DIR) + "/tests/fixtures/hookcheck/unmediated";
  HookcheckResult r = run_hookcheck(root, root + "/hook_manifest.toml");
  ASSERT_TRUE(r.ok()) << r.fatal;
  EXPECT_TRUE(has_finding(r, "missing-hook", "file_permission"));
  EXPECT_TRUE(has_finding(r, "unlisted-syscall"));
  EXPECT_TRUE(has_finding(r, "dead-hook", "file_permission"));
  for (const auto& f : r.findings) {
    EXPECT_FALSE(f.file.empty());
    EXPECT_GT(f.line, 0);
  }
}

TEST(HookcheckGate, ReorderFixtureTrips) {
  const std::string root =
      std::string(SACK_SOURCE_DIR) + "/tests/fixtures/hookcheck/reorder";
  HookcheckResult r = run_hookcheck(root, root + "/hook_manifest.toml");
  ASSERT_TRUE(r.ok()) << r.fatal;
  EXPECT_TRUE(has_finding(r, "hook-after-mutation", "path_unlink"));
  EXPECT_TRUE(has_finding(r, "hardcoded-denial", "path_chmod"));
  EXPECT_EQ(r.errors(), 2u);
}

TEST(HookcheckGate, SfiReorderFixtureTrips) {
  const std::string root =
      std::string(SACK_SOURCE_DIR) + "/tests/fixtures/hookcheck/sfi_reorder";
  HookcheckResult r = run_hookcheck(root, root + "/hook_manifest.toml");
  ASSERT_TRUE(r.ok()) << r.fatal;
  // The flow gate fires after the mutation in sys_rename...
  EXPECT_TRUE(has_finding(r, "hook-after-mutation", "task_syscall"));
  // ...and is entirely absent from sys_truncate.
  EXPECT_TRUE(has_finding(r, "missing-hook", "task_syscall"));
  EXPECT_EQ(r.errors(), 2u);
}

TEST(HookcheckGate, ShippedKernelTreeIsClean) {
  const std::string root = SACK_SOURCE_DIR;
  HookcheckResult r = run_hookcheck(root, root + "/docs/hook_manifest.toml");
  ASSERT_TRUE(r.ok()) << r.fatal;
  for (const auto& f : r.findings)
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.cls << "] "
                  << f.message;
  EXPECT_GE(r.stats.entries_checked, 34u);
  EXPECT_GE(r.stats.dispatch_sites, 40u);
}

}  // namespace
}  // namespace sack::analysis
