// Chaos-grade DFA equivalence fuzz: randomly *generated* glob corpora (not
// just a fixed hostile list) determinized and cross-checked against the
// backtracking matcher on thousands of adversarial paths. Runs in the chaos
// suite so CI exercises it under ASan/UBSan, where an out-of-bounds class
// index or a bad accept-mask aliasing bug would trip instantly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/glob.h"
#include "util/glob_dfa.h"
#include "util/rng.h"

namespace sack {
namespace {

// Grammar-directed pattern generator biased toward the shapes that stress
// determinization: star runs (**, ***, *?*), adjacent char classes, negated
// classes, escaped metacharacters, and nested brace alternation.
std::string random_pattern(Rng& rng) {
  static const char* kAtoms[] = {
      "*",      "**",   "?",     "[abc]",  "[^ab]", "[a-c0-2]",
      "\\*",    "\\[",  "a",     "b",      "/",     "x",
      "{a,b}",  "**/",  "*?",    "?*",     "**a**", "[/x]",  // '/' in a class
  };
  std::string pat = "/";
  const std::size_t parts = 1 + rng.below(6);
  for (std::size_t i = 0; i < parts; ++i)
    pat += kAtoms[rng.below(std::size(kAtoms))];
  return pat;
}

std::string random_path(Rng& rng) {
  static const char kAlpha[] = "ab/cx*?[]\\-^";
  std::string path = "/";
  const std::size_t len = rng.below(14);
  for (std::size_t i = 0; i < len; ++i)
    path += kAlpha[rng.below(sizeof(kAlpha) - 1)];
  return path;
}

TEST(GlobDfaChaos, RandomCorporaAgreeWithBacktracker) {
  Rng rng(0xC0FFEE);
  for (int round = 0; round < 40; ++round) {
    std::vector<Glob> globs;
    std::vector<std::string> texts;
    const std::size_t count = 1 + rng.below(12);
    while (globs.size() < count) {
      std::string pat = random_pattern(rng);
      auto g = Glob::compile(pat);
      if (!g.ok()) continue;  // generator can emit malformed escapes; skip
      texts.push_back(std::move(pat));
      globs.push_back(std::move(g).value());
    }
    std::vector<const Glob*> ptrs;
    for (const auto& g : globs) ptrs.push_back(&g);
    auto built = GlobDfa::build(ptrs);
    ASSERT_TRUE(built.ok());
    const GlobDfa dfa = std::move(built).value();

    for (int q = 0; q < 400; ++q) {
      const std::string path = random_path(rng);
      const DenseBitset& mask = dfa.match(path);
      for (std::size_t p = 0; p < globs.size(); ++p) {
        ASSERT_EQ(mask.test(p), globs[p].matches(path))
            << "round " << round << " pattern '" << texts[p] << "' path '"
            << path << "'";
      }
    }
  }
}

// Star-run blowup probe: long runs of * and ** interleaved with literals are
// the classic subset-construction stressor. They must either determinize
// within budget and agree, or fail closed with ENOMEM — never build a wrong
// table.
TEST(GlobDfaChaos, StarRunsDeterminizeOrFailClosed) {
  std::vector<std::string> texts;
  for (int stars = 1; stars <= 6; ++stars) {
    std::string pat = "/a";
    for (int i = 0; i < stars; ++i) pat += i % 2 ? "*b" : "**";
    texts.push_back(pat);
  }
  std::vector<Glob> globs;
  for (const auto& t : texts) {
    auto g = Glob::compile(t);
    ASSERT_TRUE(g.ok()) << t;
    globs.push_back(std::move(g).value());
  }
  std::vector<const Glob*> ptrs;
  for (const auto& g : globs) ptrs.push_back(&g);
  auto built = GlobDfa::build(ptrs);
  if (!built.ok()) {
    EXPECT_EQ(built.error(), Errno::enomem);
    return;
  }
  const GlobDfa dfa = std::move(built).value();
  Rng rng(0x57A2);
  static const char kAlpha[] = "ab/c";
  for (int q = 0; q < 2000; ++q) {
    std::string path = "/";
    const std::size_t len = rng.below(16);
    for (std::size_t i = 0; i < len; ++i)
      path += kAlpha[rng.below(sizeof(kAlpha) - 1)];
    const DenseBitset& mask = dfa.match(path);
    for (std::size_t p = 0; p < globs.size(); ++p)
      ASSERT_EQ(mask.test(p), globs[p].matches(path))
          << "pattern '" << texts[p] << "' path '" << path << "'";
  }
}

}  // namespace
}  // namespace sack
