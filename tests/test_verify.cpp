// Tests for the policy verification subsystem (src/verify): model checker,
// query language, reference interpreter, universe generation, differential
// oracle, and the verifier front-end that funnels everything into findings.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/policy_builder.h"
#include "core/policy_parser.h"
#include "verify/model_checker.h"
#include "verify/oracle.h"
#include "verify/query.h"
#include "verify/reference.h"
#include "verify/report.h"
#include "verify/subsume.h"
#include "verify/universe.h"
#include "verify/verifier.h"

#ifndef SACK_POLICY_DIR
#define SACK_POLICY_DIR "policies"
#endif

namespace sack::verify {
namespace {

using core::MacOp;
using core::PolicyBuilder;

std::string read_policy_file(const std::string& name) {
  std::ifstream in(std::string(SACK_POLICY_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "cannot open " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The seeded-escalation shape: a door-override write reachable only through
// parked -> driving -> emergency.
core::SackPolicy escalation_policy() {
  return PolicyBuilder()
      .state("parked", 0)
      .state("driving", 1)
      .state("emergency", 2)
      .initial("parked")
      .transition("parked", "start_driving", "driving")
      .transition("driving", "crash_detected", "emergency")
      .transition("emergency", "emergency_cleared", "parked")
      .permission("DIAG_BASE")
      .permission("DOOR_OVERRIDE")
      .grant("parked", "DIAG_BASE")
      .grant("driving", "DIAG_BASE")
      .grant("emergency", "DIAG_BASE")
      .grant("emergency", "DOOR_OVERRIDE")
      .allow("DIAG_BASE", "*", "/var/diag/**", MacOp::read)
      .allow("DOOR_OVERRIDE", "/usr/bin/rescue_daemon", "/dev/vehicle/door*",
             MacOp::write | MacOp::ioctl)
      .build();
}

// ---------------------------------------------------------------- traces --

TEST(ModelChecker, ReachesAllStatesWithShortestTraces) {
  auto policy = escalation_policy();
  ModelChecker checker(policy);
  const auto& reachable = checker.reachable();
  ASSERT_EQ(reachable.size(), 3u);
  EXPECT_EQ(reachable[0].state, "parked");
  EXPECT_TRUE(reachable[0].trace.empty());
  EXPECT_EQ(reachable[1].state, "driving");
  ASSERT_EQ(reachable[1].trace.size(), 1u);
  EXPECT_EQ(reachable[1].trace[0].to_string(),
            "parked -[start_driving]-> driving");
  EXPECT_EQ(reachable[2].state, "emergency");
  ASSERT_EQ(reachable[2].trace.size(), 2u);
  EXPECT_EQ(reachable[2].trace[1].to_string(),
            "driving -[crash_detected]-> emergency");
}

TEST(ModelChecker, UnreachableStateIsOmitted) {
  auto policy = PolicyBuilder()
                    .state("a", 0)
                    .state("island", 1)
                    .initial("a")
                    .permission("P")
                    .grant("a", "P")
                    .allow("P", "*", "/d/f", MacOp::read)
                    .build();
  ModelChecker checker(policy);
  ASSERT_EQ(checker.reachable().size(), 1u);
  EXPECT_EQ(checker.reachable()[0].state, "a");
}

TEST(ModelChecker, TimedTransitionIsAnEdge) {
  auto policy = PolicyBuilder()
                    .state("hot", 0)
                    .state("cool", 1)
                    .initial("hot")
                    .timed_transition("hot", 250, "cool")
                    .permission("P")
                    .grant("hot", "P")
                    .allow("P", "*", "/d/f", MacOp::read)
                    .build();
  ModelChecker checker(policy);
  ASSERT_EQ(checker.reachable().size(), 2u);
  ASSERT_EQ(checker.reachable()[1].trace.size(), 1u);
  EXPECT_EQ(checker.reachable()[1].trace[0].to_string(),
            "hot -[after 250ms]-> cool");
}

TEST(ModelChecker, WatchdogFailsafeIsAnEdgeFromEveryState) {
  // lockdown has no inbound event transition at all: only the watchdog
  // reaches it, so a checker that ignores the failsafe edge calls it
  // unreachable.
  auto policy = PolicyBuilder()
                    .state("normal", 0)
                    .state("lockdown", 1)
                    .initial("normal")
                    .watchdog(2000, "lockdown")
                    .transition("lockdown", "sds_recovered", "normal")
                    .permission("P")
                    .grant("normal", "P")
                    .allow("P", "*", "/d/f", MacOp::read)
                    .build();
  ModelChecker checker(policy);
  ASSERT_EQ(checker.reachable().size(), 2u);
  EXPECT_EQ(checker.reachable()[1].state, "lockdown");
  ASSERT_EQ(checker.reachable()[1].trace.size(), 1u);
  EXPECT_EQ(checker.reachable()[1].trace[0].to_string(),
            "normal -[watchdog timeout 2000ms]-> lockdown");
}

// ---------------------------------------------------------------- grants --

TEST(ModelChecker, FindGrantReturnsShortestEscalationTrace) {
  auto policy = escalation_policy();
  ModelChecker checker(policy);
  AccessRequest request;
  request.subject_exe = "/usr/bin/rescue_daemon";
  request.object = "/dev/vehicle/door0";
  request.ops = MacOp::write;
  auto grant = checker.find_grant(request);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->state, "emergency");
  EXPECT_EQ(grant->op, MacOp::write);
  ASSERT_EQ(grant->trace.size(), 2u);
  EXPECT_EQ(format_trace(grant->trace),
            "parked -[start_driving]-> driving; "
            "driving -[crash_detected]-> emergency");
}

TEST(ModelChecker, FindGrantNulloptWhenNeverGranted) {
  auto policy = escalation_policy();
  ModelChecker checker(policy);
  AccessRequest request;
  request.subject_exe = "/usr/bin/media_app";  // not the rescue daemon
  request.object = "/dev/vehicle/door0";
  request.ops = MacOp::write;
  EXPECT_FALSE(checker.find_grant(request).has_value());
}

TEST(ModelChecker, PrivilegeDiffReportsEscalation) {
  auto policy = escalation_policy();
  ModelChecker checker(policy);
  auto universe = build_universe(policy);
  auto diffs = checker.privilege_diffs(universe);
  // driving has the same grants as parked -> only emergency differs.
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].state, "emergency");
  ASSERT_EQ(diffs[0].permissions_added.size(), 1u);
  EXPECT_EQ(diffs[0].permissions_added[0], "DOOR_OVERRIDE");
  EXPECT_TRUE(diffs[0].permissions_removed.empty());
  EXPECT_FALSE(diffs[0].escalations.empty());
  bool found_door = false;
  for (const auto& g : diffs[0].escalations) {
    if (g.subject.exe == "/usr/bin/rescue_daemon" &&
        g.object.rfind("/dev/vehicle/door", 0) == 0) {
      found_door = true;
    }
  }
  EXPECT_TRUE(found_door);
}

// --------------------------------------------------------------- queries --

TEST(QueryParser, ParsesAllStatementForms) {
  auto result = parse_queries(
      "# comment\n"
      "never allow /usr/bin/app /dev/vehicle/door* write ioctl;\n"
      "can @rescue /var/diag/boot.log read;\n"
      "reach emergency;\n"
      "never allow * /etc/shadow read;\n");
  ASSERT_TRUE(result.ok()) << result.errors[0].to_string();
  ASSERT_EQ(result.queries.size(), 4u);

  EXPECT_EQ(result.queries[0].kind, Query::Kind::never_allow);
  EXPECT_EQ(result.queries[0].subject, "/usr/bin/app");
  EXPECT_EQ(result.queries[0].object, "/dev/vehicle/door*");
  EXPECT_EQ(result.queries[0].ops, MacOp::write | MacOp::ioctl);

  EXPECT_EQ(result.queries[1].kind, Query::Kind::can);
  EXPECT_EQ(result.queries[1].subject, "@rescue");
  EXPECT_EQ(result.queries[1].ops, MacOp::read);

  EXPECT_EQ(result.queries[2].kind, Query::Kind::reach);
  EXPECT_EQ(result.queries[2].state, "emergency");

  EXPECT_EQ(result.queries[3].subject, "*");
}

TEST(QueryParser, RejectsUnknownStatement) {
  auto result = parse_queries("forbid * /x read;\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.queries.empty());
}

TEST(QueryParser, RejectsUnknownOp) {
  auto result = parse_queries("never allow * /x levitate;\n");
  EXPECT_FALSE(result.ok());
}

TEST(QueryParser, RejectsMissingSemicolon) {
  auto result = parse_queries("reach emergency\nreach normal;\n");
  EXPECT_FALSE(result.ok());
}

// ------------------------------------------------------------- reference --

TEST(ReferenceInterpreter, UnguardedObjectIsOk) {
  auto policy = escalation_policy();
  ReferenceInterpreter ref(policy);
  EXPECT_FALSE(ref.guarded("/unrelated/path"));
  core::AccessQuery q;
  q.subject_exe = "/usr/bin/anything";
  q.object_path = "/unrelated/path";
  q.op = MacOp::write;
  EXPECT_EQ(ref.decide("parked", q), Errno::ok);
}

TEST(ReferenceInterpreter, GuardedDefaultDenyAndStateDependence) {
  auto policy = escalation_policy();
  ReferenceInterpreter ref(policy);
  EXPECT_TRUE(ref.guarded("/dev/vehicle/door0"));
  core::AccessQuery q;
  q.subject_exe = "/usr/bin/rescue_daemon";
  q.object_path = "/dev/vehicle/door0";
  q.op = MacOp::write;
  // DOOR_OVERRIDE is inactive outside emergency: POLP denies.
  EXPECT_EQ(ref.decide("parked", q), Errno::eacces);
  EXPECT_EQ(ref.decide("driving", q), Errno::eacces);
  EXPECT_EQ(ref.decide("emergency", q), Errno::ok);
}

TEST(ReferenceInterpreter, DenyWinsOverAllow) {
  auto policy = PolicyBuilder()
                    .state("s", 0)
                    .initial("s")
                    .permission("P")
                    .grant("s", "P")
                    .allow("P", "*", "/data/**", MacOp::read)
                    .deny("P", "*", "/data/secret", MacOp::read)
                    .build();
  ReferenceInterpreter ref(policy);
  core::AccessQuery q;
  q.subject_exe = "/usr/bin/app";
  q.object_path = "/data/secret";
  q.op = MacOp::read;
  EXPECT_EQ(ref.decide("s", q), Errno::eacces);
  q.object_path = "/data/public";
  EXPECT_EQ(ref.decide("s", q), Errno::ok);
}

// -------------------------------------------------------------- universe --

TEST(Universe, GlobWitnessesMatchTheirGlob) {
  for (const char* pattern :
       {"/dev/vehicle/door*", "/var/diag/**", "/a/*/b", "/data/**/log",
        "/opt/app/{bin,lib}/*", "/tmp/file?.txt"}) {
    auto glob = Glob::compile(pattern);
    ASSERT_TRUE(glob.ok()) << pattern;
    auto witnesses = glob_witnesses(*glob, 3);
    EXPECT_FALSE(witnesses.empty()) << pattern;
    for (const auto& w : witnesses) {
      EXPECT_TRUE(glob->matches(w)) << pattern << " should match " << w;
    }
  }
}

TEST(Universe, ContainsLiteralsProbesAndBystander) {
  auto policy = escalation_policy();
  auto universe = build_universe(policy);
  auto has_object = [&](std::string_view path) {
    return std::find(universe.objects.begin(), universe.objects.end(), path) !=
           universe.objects.end();
  };
  EXPECT_TRUE(has_object("/unguarded/probe"));
  // At least one witness under each object pattern.
  EXPECT_TRUE(std::any_of(universe.objects.begin(), universe.objects.end(),
                          [](const std::string& o) {
                            return o.rfind("/dev/vehicle/door", 0) == 0;
                          }));
  bool has_bystander =
      std::any_of(universe.subjects.begin(), universe.subjects.end(),
                  [](const SubjectSample& s) {
                    return s.exe == "/usr/bin/uninvolved_app";
                  });
  EXPECT_TRUE(has_bystander);
  bool has_rescue =
      std::any_of(universe.subjects.begin(), universe.subjects.end(),
                  [](const SubjectSample& s) {
                    return s.exe == "/usr/bin/rescue_daemon";
                  });
  EXPECT_TRUE(has_rescue);
  // Mentioned ops plus one unmentioned op for the miss path.
  EXPECT_NE(std::find(universe.ops.begin(), universe.ops.end(), MacOp::write),
            universe.ops.end());
  EXPECT_GT(universe.ops.size(), 3u);  // read, write, ioctl + extra
  EXPECT_GT(universe.tuple_count(3), 0u);
}

// ---------------------------------------------------------------- oracle --

TEST(Oracle, PassesOnBuilderPolicyAndActuallyChecks) {
  auto policy = escalation_policy();
  auto report = run_differential_oracle(policy);
  EXPECT_TRUE(report.ok()) << (report.mismatches.empty()
                                   ? "?"
                                   : report.mismatches[0].to_string());
  EXPECT_EQ(report.states_checked, 3u);
  EXPECT_GT(report.tuples_checked, 0u);
  // A vacuous AVC leg would pass trivially; require real hit round-trips.
  EXPECT_GT(report.avc_hits_verified, 0u);
}

TEST(Oracle, PassesOnAllShippedPolicies) {
  for (const char* name :
       {"cav_default.sack", "speed_gate.sack", "emergency_failsafe.sack",
        "watchdog_failsafe.sack"}) {
    auto parsed = core::parse_policy(read_policy_file(name));
    ASSERT_TRUE(parsed.ok()) << name;
    auto report = run_differential_oracle(parsed.policy);
    EXPECT_TRUE(report.ok())
        << name << ": "
        << (report.mismatches.empty() ? "?" : report.mismatches[0].to_string());
    EXPECT_GT(report.tuples_checked, 0u) << name;
  }
}

TEST(Oracle, MismatchRendersAllCoordinates) {
  OracleMismatch m;
  m.engine = "compiled";
  m.state = "emergency";
  m.subject = {"/usr/bin/app", ""};
  m.object = "/dev/vehicle/door0";
  m.op = MacOp::write;
  m.reference = Errno::eacces;
  m.observed = Errno::ok;
  auto text = m.to_string();
  EXPECT_NE(text.find("compiled"), std::string::npos);
  EXPECT_NE(text.find("emergency"), std::string::npos);
  EXPECT_NE(text.find("/dev/vehicle/door0"), std::string::npos);
  EXPECT_NE(text.find("write"), std::string::npos);
}

// ----------------------------------------------------------- subsumption --

TEST(RuleSubsume, OpsSubjectAndObjectAllRequired) {
  auto general = core::make_rule(core::RuleEffect::deny, "*", "/data/**",
                                 MacOp::read | MacOp::write);
  auto specific = core::make_rule(core::RuleEffect::allow, "/usr/bin/app",
                                  "/data/logs/app.log", MacOp::read);
  ASSERT_TRUE(general.ok());
  ASSERT_TRUE(specific.ok());
  EXPECT_TRUE(rule_subsumes(general.value(), specific.value()));
  // Narrower op mask on the general rule breaks the implication.
  auto read_only =
      core::make_rule(core::RuleEffect::deny, "*", "/data/**", MacOp::read);
  auto writes = core::make_rule(core::RuleEffect::allow, "/usr/bin/app",
                                "/data/logs/app.log", MacOp::write);
  ASSERT_TRUE(read_only.ok());
  ASSERT_TRUE(writes.ok());
  EXPECT_FALSE(rule_subsumes(read_only.value(), writes.value()));
  // Disjoint object patterns too.
  auto elsewhere =
      core::make_rule(core::RuleEffect::deny, "*", "/etc/**", MacOp::read);
  ASSERT_TRUE(elsewhere.ok());
  EXPECT_FALSE(rule_subsumes(elsewhere.value(), specific.value()));
}

// -------------------------------------------------------------- verifier --

TEST(Verifier, NeverAllowViolationIsErrorWithTrace) {
  auto policy = escalation_policy();
  VerifyOptions options;
  auto parsed = parse_queries(
      "never allow /usr/bin/rescue_daemon /dev/vehicle/door0 write;\n");
  ASSERT_TRUE(parsed.ok());
  options.queries = parsed.queries;
  auto report = verify_policy(policy, options, "escalation");
  EXPECT_TRUE(report.has_errors());
  const Finding* violation = nullptr;
  for (const auto& f : report.findings) {
    if (f.code.rfind("invariant.", 0) == 0) violation = &f;
  }
  ASSERT_NE(violation, nullptr);
  EXPECT_EQ(violation->severity, FindingSeverity::error);
  ASSERT_EQ(violation->trace.size(), 2u);
  EXPECT_EQ(violation->trace[0], "parked -[start_driving]-> driving");
  EXPECT_EQ(violation->trace[1], "driving -[crash_detected]-> emergency");
}

TEST(Verifier, HoldingInvariantAndReachQueriesPass) {
  auto policy = escalation_policy();
  VerifyOptions options;
  auto parsed = parse_queries(
      "never allow * /var/diag/boot.log write;\n"
      "reach emergency;\n"
      "can /usr/bin/rescue_daemon /dev/vehicle/door0 write;\n");
  ASSERT_TRUE(parsed.ok());
  options.queries = parsed.queries;
  auto report = verify_policy(policy, options, "escalation");
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_EQ(report.stats.queries_checked, 3u);
}

TEST(Verifier, UnreachableReachQueryIsError) {
  auto policy = PolicyBuilder()
                    .state("a", 0)
                    .state("island", 1)
                    .initial("a")
                    .permission("P")
                    .grant("a", "P")
                    .grant("island", "P")
                    .allow("P", "*", "/d/f", MacOp::read)
                    .build();
  VerifyOptions options;
  auto parsed = parse_queries("reach island;\n");
  ASSERT_TRUE(parsed.ok());
  options.queries = parsed.queries;
  options.run_oracle = false;
  auto report = verify_policy(policy, options);
  EXPECT_TRUE(report.has_errors());
}

TEST(Verifier, StateLevelCrossPermissionShadowWarns) {
  // The allow lives in DIAG, the subsuming deny in LOCKDOWN; both are active
  // in state s, so the allow is dead there — invisible to the per-permission
  // checker, caught by the state-level pass.
  auto policy = PolicyBuilder()
                    .state("s", 0)
                    .initial("s")
                    .permission("DIAG")
                    .permission("LOCKDOWN")
                    .grant("s", "DIAG")
                    .grant("s", "LOCKDOWN")
                    .allow("DIAG", "*", "/var/diag/app.log", MacOp::read)
                    .deny("LOCKDOWN", "*", "/var/diag/**", MacOp::read)
                    .build();
  VerifyOptions options;
  options.run_oracle = false;
  auto report = verify_policy(policy, options);
  bool shadow_warned = false;
  for (const auto& f : report.findings) {
    if (f.code.rfind("shadow.", 0) == 0) {
      EXPECT_EQ(f.severity, FindingSeverity::warning);
      shadow_warned = true;
    }
  }
  EXPECT_TRUE(shadow_warned) << report.to_text();
}

TEST(Verifier, ParseErrorBecomesErrorFinding) {
  auto report = verify_policy_text("states { broken", {}, "broken");
  EXPECT_TRUE(report.has_errors());
  bool parse_finding = false;
  for (const auto& f : report.findings) {
    if (f.code.rfind("parse.", 0) == 0) parse_finding = true;
  }
  EXPECT_TRUE(parse_finding);
}

TEST(Verifier, ShippedPoliciesVerifyWithZeroErrors) {
  for (const char* name :
       {"cav_default.sack", "speed_gate.sack", "emergency_failsafe.sack",
        "watchdog_failsafe.sack"}) {
    auto report = verify_policy_text(read_policy_file(name), {}, name);
    EXPECT_FALSE(report.has_errors()) << report.to_text();
  }
}

TEST(Verifier, TextReportEndsWithResultLine) {
  auto policy = escalation_policy();
  VerifyOptions options;
  options.run_oracle = false;
  auto report = verify_policy(policy, options, "escalation");
  auto text = report.to_text();
  EXPECT_NE(text.find("result: 0 error"), std::string::npos) << text;
}

TEST(Verifier, JsonReportIsWellFormedEnough) {
  auto policy = escalation_policy();
  VerifyOptions options;
  auto parsed = parse_queries(
      "never allow /usr/bin/rescue_daemon /dev/vehicle/door0 write;\n");
  ASSERT_TRUE(parsed.ok());
  options.queries = parsed.queries;
  auto report = verify_policy(policy, options, "escalation");
  auto json = report.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  // Balanced braces is a cheap sanity proxy for emission bugs.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Report, JsonEscapeHandlesControlAndQuote) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace sack::verify
