// GlobDfa and DfaRuleSet: the table-driven matcher must be byte-for-byte
// decision-equivalent to the backtracking glob matcher and to the indexed
// CompiledRuleSet, including under concurrent mask-swap activation.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/policy_builder.h"
#include "core/ruleset.h"
#include "util/glob.h"
#include "util/glob_dfa.h"
#include "util/rng.h"

namespace sack::core {
namespace {

Glob glob(std::string_view pattern) {
  auto g = Glob::compile(pattern);
  EXPECT_TRUE(g.ok()) << pattern;
  return std::move(g).value();
}

GlobDfa build_dfa(const std::vector<Glob>& globs) {
  std::vector<const Glob*> ptrs;
  for (const auto& g : globs) ptrs.push_back(&g);
  auto dfa = GlobDfa::build(ptrs);
  EXPECT_TRUE(dfa.ok());
  return std::move(dfa).value();
}

TEST(GlobDfa, EmptyPatternSetMatchesNothing) {
  auto dfa = build_dfa({});
  EXPECT_EQ(dfa.pattern_count(), 0u);
  EXPECT_TRUE(dfa.match("/anything").none());
  EXPECT_TRUE(dfa.match("").none());
}

TEST(GlobDfa, LiteralPatterns) {
  auto dfa = build_dfa({glob("/etc/passwd"), glob("/etc/shadow")});
  EXPECT_TRUE(dfa.match("/etc/passwd").test(0));
  EXPECT_FALSE(dfa.match("/etc/passwd").test(1));
  EXPECT_TRUE(dfa.match("/etc/shadow").test(1));
  EXPECT_TRUE(dfa.match("/etc/group").none());
  EXPECT_TRUE(dfa.match("/etc/passwd2").none());
  EXPECT_TRUE(dfa.match("/etc/passw").none());
}

TEST(GlobDfa, StarDoesNotCrossSlash) {
  auto dfa = build_dfa({glob("/dev/door*")});
  EXPECT_TRUE(dfa.match("/dev/door0").test(0));
  EXPECT_TRUE(dfa.match("/dev/door").test(0));  // * matches empty
  EXPECT_TRUE(dfa.match("/dev/door123").test(0));
  EXPECT_TRUE(dfa.match("/dev/door0/lock").none());
}

TEST(GlobDfa, DeepStarCrossesSlash) {
  auto dfa = build_dfa({glob("/var/media/**")});
  EXPECT_TRUE(dfa.match("/var/media/a").test(0));
  EXPECT_TRUE(dfa.match("/var/media/a/b/c.pcm").test(0));
  EXPECT_TRUE(dfa.match("/var/media/").test(0));  // ** matches empty
  EXPECT_TRUE(dfa.match("/var/medias").none());
  EXPECT_TRUE(dfa.match("/var").none());
}

TEST(GlobDfa, CharClassAndQuestionMark) {
  auto dfa = build_dfa({glob("/dev/tty[0-9]"), glob("/dev/sd?")});
  EXPECT_TRUE(dfa.match("/dev/tty5").test(0));
  EXPECT_TRUE(dfa.match("/dev/ttyA").none());
  EXPECT_TRUE(dfa.match("/dev/sda").test(1));
  EXPECT_TRUE(dfa.match("/dev/sd/").none());  // ? never matches '/'
}

TEST(GlobDfa, OverlappingPatternsAccumulateMaskBits) {
  auto dfa = build_dfa(
      {glob("/var/media/**"), glob("/var/**"), glob("/var/media/a.pcm")});
  const auto& mask = dfa.match("/var/media/a.pcm");
  EXPECT_TRUE(mask.test(0));
  EXPECT_TRUE(mask.test(1));
  EXPECT_TRUE(mask.test(2));
  EXPECT_EQ(mask.count(), 3u);
  const auto& partial = dfa.match("/var/log/x");
  EXPECT_FALSE(partial.test(0));
  EXPECT_TRUE(partial.test(1));
}

TEST(GlobDfa, BraceAlternativesUnion) {
  auto dfa = build_dfa({glob("/opt/{app,tool}/bin/*")});
  EXPECT_TRUE(dfa.match("/opt/app/bin/x").test(0));
  EXPECT_TRUE(dfa.match("/opt/tool/bin/y").test(0));
  EXPECT_TRUE(dfa.match("/opt/other/bin/z").none());
}

TEST(GlobDfa, BuildBudgetFailsClosed) {
  // A tiny state budget must fail the build, not truncate the automaton.
  std::vector<Glob> globs = {glob("/var/media/**"), glob("/etc/passwd")};
  std::vector<const Glob*> ptrs;
  for (const auto& g : globs) ptrs.push_back(&g);
  GlobDfa::BuildLimits limits;
  limits.max_states = 3;
  auto dfa = GlobDfa::build(ptrs, limits);
  EXPECT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.error(), Errno::enomem);
}

// Deterministic corpus fuzz: the DFA must agree with Glob::matches on every
// (pattern set, path) pair, including hostile shapes — runs of stars,
// adjacent classes, escapes, and alternations.
TEST(GlobDfaFuzz, AgreesWithBacktrackingMatcher) {
  const std::vector<std::string> patterns = {
      "/a/**/b",          "/a/*/*/c",        "/**/**/x",
      "/x**y",            "/*[ab]*",         "/[^/x]?z",
      "/e\\*f",           "/{a,b}{c,d}g",    "/m/**",
      "/n/*",             "/[a-c][0-2]",     "/p?[qr]*s",
      "/**",              "/*",              "/q/{one,two/**}",
      "/r/a*a*a*b",       "/s/[abc]**[xyz]", "/t/\\[lit\\]",
  };
  std::vector<Glob> globs;
  for (const auto& p : patterns) globs.push_back(glob(p));
  auto dfa = build_dfa(globs);

  const std::string alphabet = "ab/cxyz*?[0q";
  Rng rng(0xDFAF);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string path = "/";
    const std::size_t len = rng.below(12);
    for (std::size_t i = 0; i < len; ++i)
      path += alphabet[rng.below(alphabet.size())];
    const auto& mask = dfa.match(path);
    for (std::size_t p = 0; p < globs.size(); ++p) {
      EXPECT_EQ(mask.test(p), globs[p].matches(path))
          << "pattern '" << patterns[p] << "' path '" << path << "'";
    }
  }
}

// --- DfaRuleSet semantics (mirrors the CompiledRuleSet suites) ---

SackPolicy demo_policy() {
  PolicyBuilder b;
  b.state("normal", 0)
      .state("emergency", 1)
      .initial("normal")
      .transition("normal", "crash", "emergency")
      .permission("MEDIA")
      .permission("DOORS")
      .grant("normal", "MEDIA")
      .grant("emergency", "MEDIA")
      .grant("emergency", "DOORS")
      .allow("MEDIA", "*", "/var/media/**", MacOp::read)
      .allow("DOORS", "/usr/bin/rescue", "/dev/door*",
             MacOp::ioctl | MacOp::write)
      .deny("DOORS", "*", "/dev/door9", MacOp::ioctl);
  return b.build();
}

AccessQuery query(std::string_view exe, std::string_view obj, MacOp op) {
  AccessQuery q;
  q.subject_exe = exe;
  q.object_path = obj;
  q.op = op;
  return q;
}

TEST(DfaRuleSet, CompilesDemoPolicyToTable) {
  DfaRuleSet rs;
  (void)rs.load(demo_policy());
  EXPECT_TRUE(rs.table_driven());
  EXPECT_EQ(rs.total_rule_count(), 3u);
}

TEST(DfaRuleSet, UnguardedObjectsAlwaysAllowed) {
  DfaRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({});
  EXPECT_EQ(rs.check(query("/bin/x", "/etc/passwd", MacOp::read)), Errno::ok);
  EXPECT_FALSE(rs.guarded("/etc/passwd"));
  EXPECT_TRUE(rs.guarded("/var/media/track.pcm"));
  EXPECT_TRUE(rs.guarded("/dev/door0"));
}

TEST(DfaRuleSet, GuardedDenyByDefaultAndDenyPrecedence) {
  DfaRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({"MEDIA"});
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door0", MacOp::ioctl)),
            Errno::eacces);
  EXPECT_EQ(rs.check(query("/bin/app", "/var/media/t.pcm", MacOp::read)),
            Errno::ok);
  EXPECT_EQ(rs.check(query("/bin/app", "/var/media/t.pcm", MacOp::write)),
            Errno::eacces);
  rs.activate({"DOORS"});
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door9", MacOp::ioctl)),
            Errno::eacces);
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door9", MacOp::write)),
            Errno::ok);
}

TEST(DfaRuleSet, ActivationIsMaskSwap) {
  DfaRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({"MEDIA", "DOORS"});
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door0", MacOp::ioctl)),
            Errno::ok);
  EXPECT_EQ(rs.active_rule_count(), 3u);
  const std::uint64_t gen = rs.label_generation();
  rs.activate({"MEDIA"});
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door0", MacOp::ioctl)),
            Errno::eacces);
  EXPECT_EQ(rs.active_rule_count(), 1u);
  // activate() must not disturb the label numbering: labels survive storms.
  EXPECT_EQ(rs.label_generation(), gen);
}

TEST(DfaRuleSet, LabelsSurviveActivationAndDieOnLoad) {
  DfaRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({"MEDIA"});
  const std::uint64_t gen = rs.label_generation();
  ASSERT_NE(gen, 0u);
  auto label = rs.resolve_label("/var/media/t.pcm");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(rs.check_labeled(query("/bin/app", "/var/media/t.pcm", MacOp::read),
                             *label, gen),
            Errno::ok);
  rs.activate({});
  EXPECT_EQ(rs.check_labeled(query("/bin/app", "/var/media/t.pcm", MacOp::read),
                             *label, gen),
            Errno::eacces);
  // A reload renumbers rules; the stale generation must force a recompute,
  // not an intersection against the wrong bits.
  (void)rs.load(demo_policy());
  rs.activate({"MEDIA"});
  EXPECT_NE(rs.label_generation(), gen);
  EXPECT_EQ(rs.check_labeled(query("/bin/app", "/var/media/t.pcm", MacOp::read),
                             *label, gen),
            Errno::ok);
}

TEST(DfaRuleSet, LabelGenerationsAreProcessUnique) {
  // Labels get parked on inodes that several module/rule-set instances can
  // share (stacked modules, one VFS) under the same module name. If each
  // instance counted generations from 1, instance B could hit a label
  // resolved under instance A's rule numbering — so generations come from
  // one process-wide counter and never collide.
  DfaRuleSet a;
  DfaRuleSet b;
  a.load(demo_policy());
  b.load(demo_policy());
  EXPECT_NE(a.label_generation(), 0u);
  EXPECT_NE(b.label_generation(), 0u);
  EXPECT_NE(a.label_generation(), b.label_generation());
}

TEST(DfaRuleSet, ResolvedLabelsOwnTheirBits) {
  // A resolved label can sit on an inode indefinitely; it must own its mask
  // rather than alias the Program's DFA storage, or every stale inode label
  // would pin a whole retired policy across loads.
  DfaRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({"MEDIA"});
  const std::uint64_t gen = rs.label_generation();
  auto label = rs.resolve_label("/var/media/t.pcm");
  ASSERT_NE(label, nullptr);
  EXPECT_TRUE(label->any());
  // Retire the Program the label was resolved from.
  (void)rs.load(SackPolicy{});
  // The label's storage is still the holder's to read, and the stale stamp
  // forces a recompute (empty policy: everything unguarded).
  EXPECT_TRUE(label->any());
  EXPECT_EQ(rs.check_labeled(query("/bin/app", "/var/media/t.pcm", MacOp::read),
                             *label, gen),
            Errno::ok);
}

TEST(DfaRuleSet, BatchCheckOpsMatchesScalar) {
  DfaRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({"MEDIA", "DOORS"});
  std::vector<AccessQuery> queries = {
      query("/bin/app", "/var/media/t.pcm", MacOp::read),
      query("/bin/app", "/var/media/t.pcm", MacOp::write),
      query("/usr/bin/rescue", "/dev/door0", MacOp::ioctl),
      query("/usr/bin/rescue", "/dev/door9", MacOp::ioctl),
      query("/bin/x", "/etc/passwd", MacOp::read),
  };
  std::vector<Errno> verdicts(queries.size());
  rs.check_ops(queries, verdicts);
  for (std::size_t i = 0; i < queries.size(); ++i)
    EXPECT_EQ(verdicts[i], rs.check(queries[i])) << i;
}

TEST(DfaRuleSet, EquivalentToCompiledOnRandomQueries) {
  const SackPolicy policy = demo_policy();
  DfaRuleSet dfa;
  (void)dfa.load(policy);
  CompiledRuleSet compiled;
  (void)compiled.load(policy);

  const std::vector<std::vector<std::string>> activations = {
      {}, {"MEDIA"}, {"DOORS"}, {"MEDIA", "DOORS"}};
  const std::vector<std::string> exes = {"/bin/app", "/usr/bin/rescue",
                                         "/usr/bin/evil"};
  const std::vector<std::string> objects = {
      "/var/media/t.pcm", "/var/media/a/b/c", "/var/medias", "/dev/door0",
      "/dev/door9",       "/dev/door",        "/etc/passwd", "/var/media/"};
  const std::vector<MacOp> ops = {MacOp::read, MacOp::write, MacOp::ioctl,
                                  MacOp::exec};
  for (const auto& perms : activations) {
    dfa.activate(perms);
    compiled.activate(perms);
    for (const auto& exe : exes)
      for (const auto& obj : objects)
        for (MacOp op : ops)
          EXPECT_EQ(dfa.check(query(exe, obj, op)),
                    compiled.check(query(exe, obj, op)))
              << exe << " " << obj << " op=" << mac_op_name(op);
  }
}

// Mask-swap activate() racing check() and check_labeled(): every verdict a
// reader computes must be consistent with SOME activation (never a torn mix),
// and the run must be TSan-clean (this suite is in the TSan CI regex).
TEST(DfaRuleSetMt, ActivateRacesCheck) {
  DfaRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({"MEDIA"});
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) {
      rs.activate({"MEDIA", "DOORS"});
      rs.activate({"MEDIA"});
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      const std::uint64_t gen = rs.label_generation();
      auto door_label = rs.resolve_label("/dev/door0");
      while (!stop.load(std::memory_order_acquire)) {
        // Media read is allowed under every activation in this race.
        if (rs.check(query("/bin/app", "/var/media/t.pcm", MacOp::read)) !=
            Errno::ok)
          torn.fetch_add(1);
        // Door ioctl flips between ok/eacces: both are legal, einval is not.
        const Errno rc =
            rs.check(query("/usr/bin/rescue", "/dev/door0", MacOp::ioctl));
        if (rc != Errno::ok && rc != Errno::eacces) torn.fetch_add(1);
        const Errno labeled = rs.check_labeled(
            query("/usr/bin/rescue", "/dev/door0", MacOp::ioctl), *door_label,
            gen);
        if (labeled != Errno::ok && labeled != Errno::eacces)
          torn.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0);
}

}  // namespace
}  // namespace sack::core
