// CAN bus substrate + the raw-frame KOFFEE injection path.
#include <gtest/gtest.h>

#include "ivi/can_bus.h"
#include "ivi/ivi_system.h"

namespace sack::ivi {
namespace {

using kernel::Fd;
using kernel::OpenFlags;

// --- frame codec ---

TEST(CanFrame, TextRoundTrip) {
  CanFrame f;
  f.id = 0x2a1;
  f.dlc = 2;
  f.data[0] = 0x02;
  f.data[1] = 0xff;
  EXPECT_EQ(f.to_text(), "2a1#02ff\n");
  auto parsed = CanFrame::parse("2a1#02ff\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->id, 0x2a1u);
  EXPECT_EQ(parsed->dlc, 2);
  EXPECT_EQ(parsed->data[1], 0xff);
}

TEST(CanFrame, ParsesEmptyPayloadAndMaxLength) {
  auto empty = CanFrame::parse("100#");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->dlc, 0);
  auto full = CanFrame::parse("1f0#0011223344556677");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->dlc, 8);
  EXPECT_EQ(full->data[7], 0x77);
}

TEST(CanFrame, RejectsMalformed) {
  EXPECT_FALSE(CanFrame::parse("nohash").ok());
  EXPECT_FALSE(CanFrame::parse("#00").ok());              // missing id
  EXPECT_FALSE(CanFrame::parse("xyz#00").ok());           // bad id hex
  EXPECT_FALSE(CanFrame::parse("100#0").ok());            // odd nibbles
  EXPECT_FALSE(CanFrame::parse("100#001122334455667788").ok());  // > 8 bytes
  EXPECT_FALSE(CanFrame::parse("fffffffff#00").ok());     // id overflow
}

// --- bus + ECU ---

TEST(CanBusUnit, DeliversToSubscribers) {
  CanBus bus;
  std::vector<std::uint32_t> seen;
  bus.subscribe([&](const CanFrame& f) { seen.push_back(f.id); });
  CanFrame f;
  f.id = 0x123;
  bus.send(f);
  bus.send(f);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(bus.frames_sent(), 2u);
  EXPECT_EQ(bus.history().size(), 2u);
}

TEST(CanBusUnit, BodyEcuActuatesHardware) {
  kernel::Kernel kernel;
  VehicleHardware hw(kernel);
  CanBus bus;
  BodyControlEcu ecu(&bus, &hw);

  ASSERT_TRUE(hw.state().all_doors_locked());
  bus.send(*CanFrame::parse("2a1#02ff"));  // unlock all
  EXPECT_FALSE(hw.state().all_doors_locked());
  bus.send(*CanFrame::parse("2a1#0101"));  // lock door 1
  EXPECT_TRUE(hw.state().door_locked[1]);
  bus.send(*CanFrame::parse("2a2#0232"));  // window 2 to 50%
  EXPECT_EQ(hw.state().window_open_pct[2], 0x32);
  bus.send(*CanFrame::parse("2a3#28"));    // volume 40
  EXPECT_EQ(hw.state().audio_volume, 40);
  // Unknown and short frames are ignored.
  bus.send(*CanFrame::parse("1f0#50"));
  bus.send(*CanFrame::parse("2a1#02"));
  EXPECT_EQ(ecu.frames_handled(), 4u);
}

// --- device node semantics ---

TEST(CanDeviceNode, WriteSendsAndReadCaptures) {
  IviSystem ivi({.mac = MacConfig::none});
  auto admin = ivi.admin_process();
  Fd tx = *admin.open("/dev/can0", OpenFlags::write);
  ASSERT_TRUE(admin.write(tx, "2a1#02ff\n1f0#50\n").ok());
  EXPECT_EQ(ivi.can_bus().frames_sent(), 2u);
  EXPECT_FALSE(ivi.hardware().state().all_doors_locked());

  Fd rx = *admin.open("/dev/can0", OpenFlags::read);
  std::string captured;
  ASSERT_TRUE(admin.read(rx, captured, 4096).ok());
  EXPECT_EQ(captured, "2a1#02ff\n1f0#50\n");
}

TEST(CanDeviceNode, MalformedWriteSendsNothing) {
  IviSystem ivi({.mac = MacConfig::none});
  auto admin = ivi.admin_process();
  Fd tx = *admin.open("/dev/can0", OpenFlags::write);
  EXPECT_EQ(admin.write(tx, "2a1#02ff\ngarbage\n").error(), Errno::einval);
  EXPECT_EQ(ivi.can_bus().frames_sent(), 0u);  // atomic: nothing went out
  EXPECT_TRUE(ivi.hardware().state().all_doors_locked());
}

// --- the attack, across MAC configurations ---

TEST(CanInjection, SucceedsWithoutMac) {
  IviSystem ivi({.mac = MacConfig::none});
  ASSERT_TRUE(ivi.attacker().inject_can_frames().ok());
  EXPECT_FALSE(ivi.hardware().state().all_doors_locked());
  EXPECT_EQ(ivi.hardware().state().audio_volume, kMaxVolume);
}

TEST(CanInjection, BlockedByIndependentSackInEveryState) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  EXPECT_FALSE(ivi.attacker().inject_can_frames().ok());
  ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
  // Even in the emergency, only the rescue daemon's subject may transmit.
  EXPECT_FALSE(ivi.attacker().inject_can_frames().ok());
  EXPECT_TRUE(ivi.hardware().state().all_doors_locked());
  EXPECT_EQ(ivi.can_bus().frames_sent(), 0u);
}

TEST(CanInjection, RescueMayTransmitOnlyInEmergency) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  auto rescue = ivi.rescue_process();
  EXPECT_EQ(rescue.open("/dev/can0", OpenFlags::write).error(),
            Errno::eacces);
  ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
  Fd tx = *rescue.open("/dev/can0", OpenFlags::write);
  ASSERT_TRUE(rescue.write(tx, "2a1#02ff\n").ok());
  EXPECT_FALSE(ivi.hardware().state().all_doors_locked());
  // The emergency clears; the held fd is revoked mid-stream.
  ASSERT_TRUE(ivi.sds().send_event("emergency_cleared").ok());
  EXPECT_EQ(rescue.write(tx, "2a1#02ff\n").error(), Errno::eacces);
}

TEST(CanInjection, EnhancedModeBlocksConfinedAttacker) {
  IviSystem ivi({.mac = MacConfig::sack_enhanced_apparmor});
  // ota_helper's AppArmor profile has no /dev/can0 rule.
  EXPECT_FALSE(ivi.attacker().inject_can_frames().ok());
  // In an emergency, SACK injects the CAN rule into rescue_daemon only.
  ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
  EXPECT_FALSE(ivi.attacker().inject_can_frames().ok());
  auto rescue = ivi.rescue_process();
  EXPECT_TRUE(rescue.open("/dev/can0", OpenFlags::write).ok());
}

}  // namespace
}  // namespace sack::ivi
