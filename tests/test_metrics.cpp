// util/metrics: counters, gauges, log2 latency histograms + percentiles.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/metrics.h"

namespace sack::util {
namespace {

TEST(MetricsCounter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsGauge, SetAndAdd) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(MetricsHistogram, BucketBoundaries) {
  // Bucket 0 holds the value 0; bucket i (i>=1) holds [2^(i-1), 2^i).
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_of(1023), 10);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 11);
  // The top bucket is open-ended: huge values must not index out of range.
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{777}, std::uint64_t{1} << 40}) {
    const int b = LatencyHistogram::bucket_of(v);
    EXPECT_GE(v, LatencyHistogram::bucket_lower(b)) << v;
    EXPECT_LT(v, LatencyHistogram::bucket_upper(b)) << v;
  }
}

TEST(MetricsHistogram, CountSumMean) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum_ns(), 600u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 200.0);
}

TEST(MetricsHistogram, EmptyPercentilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile_ns(50), 0.0);
  EXPECT_EQ(h.percentile_ns(99), 0.0);
  EXPECT_EQ(h.max_bound_ns(), 0u);
}

TEST(MetricsHistogram, PercentilesLandInTheRightBucket) {
  LatencyHistogram h;
  // 1..1000 ns uniform: p50 must land in [256,1024) (log2 resolution
  // around the true 500), p99 in [512,1024), and the ordering must hold.
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.percentile_ns(50);
  const double p95 = h.percentile_ns(95);
  const double p99 = h.percentile_ns(99);
  EXPECT_GE(p50, 256.0);
  EXPECT_LT(p50, 1024.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, static_cast<double>(h.max_bound_ns()));
  EXPECT_EQ(h.max_bound_ns(), 1024u);  // 1000 lives in [512,1024)
}

TEST(MetricsHistogram, SingleBucketInterpolation) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(600);  // all in [512,1024)
  const double p50 = h.percentile_ns(50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_EQ(h.max_bound_ns(), 1024u);
}

TEST(MetricsHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_ns(), 0u);
  EXPECT_EQ(h.max_bound_ns(), 0u);
}

TEST(MetricsHistogram, SummaryAndJsonShape) {
  LatencyHistogram h;
  h.record(100);
  const std::string s = h.summary();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
  const std::string j = h.json();
  EXPECT_NE(j.find("\"count\":1"), std::string::npos);
  EXPECT_NE(j.find("\"p50\":"), std::string::npos);
  EXPECT_NE(j.find("\"p95\":"), std::string::npos);
  EXPECT_NE(j.find("\"p99\":"), std::string::npos);
  EXPECT_NE(j.find("\"max_bound\":"), std::string::npos);
}

TEST(MetricsMt, ConcurrentRecordAndScrape) {
  // Recording threads race a scraper: counts are never lost (atomic
  // buckets) and the scraper never crashes or reads torn state. TSan runs
  // this in CI.
  LatencyHistogram h;
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, &c, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t * 1000 + i % 997));
        c.inc();
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)h.count();
      (void)h.percentile_ns(95);
      (void)h.summary();
    }
  });
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace sack::util
