// System-level integration and failure-injection tests: long interleaved
// scenarios, event floods, policy reloads under load, fd-table pressure.
#include <gtest/gtest.h>

#include <iterator>
#include <map>
#include <utility>

#include "core/policy_builder.h"
#include "ivi/ivi_system.h"
#include "sds/traces.h"
#include "util/rng.h"

namespace sack {
namespace {

using ivi::IviSystem;
using ivi::MacConfig;
using kernel::Fd;
using kernel::OpenFlags;

// The full pipeline, many times over: traces drive detectors drive SACKfs
// drives the SSM drives the APE; access decisions stay consistent with the
// situation at every step.
TEST(Integration, RepeatedCrashRecoveryCyclesStayConsistent) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  for (int cycle = 0; cycle < 25; ++cycle) {
    ASSERT_EQ(ivi.situation(), "parked_with_driver") << "cycle " << cycle;
    EXPECT_TRUE(ivi.rescue().respond_to_emergency().all_denied());

    ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
    ASSERT_EQ(ivi.situation(), "emergency");
    EXPECT_TRUE(ivi.rescue().respond_to_emergency().all_ok());
    EXPECT_TRUE(ivi.rescue().secure_vehicle().all_ok());

    ASSERT_TRUE(ivi.sds().send_event("emergency_cleared").ok());
  }
  // Kernel-side accounting is exact.
  EXPECT_EQ(ivi.sack()->ssm()->transitions_taken(), 50u);
  EXPECT_EQ(ivi.sack()->events_rejected(), 0u);
}

TEST(Integration, EventFloodIsStableAndAccurate) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  auto& sds = ivi.sds();
  Rng rng(7);
  const char* events[] = {"start_driving", "stop_driving", "crash_detected",
                          "emergency_cleared", "parked_with_driver",
                          "parked_without_driver"};
  // Model the SSM in parallel to verify the kernel agrees after a flood.
  std::string model = "parked_with_driver";
  auto step = [&](const std::string& event) {
    // Mirror of the default policy's transition table.
    static const std::map<std::pair<std::string, std::string>, std::string>
        table = {
            {{"parked_with_driver", "start_driving"}, "driving"},
            {{"driving", "stop_driving"}, "parked_with_driver"},
            {{"parked_with_driver", "parked_without_driver"},
             "parked_without_driver"},
            {{"parked_without_driver", "parked_with_driver"},
             "parked_with_driver"},
            {{"parked_with_driver", "crash_detected"}, "emergency"},
            {{"parked_without_driver", "crash_detected"}, "emergency"},
            {{"driving", "crash_detected"}, "emergency"},
            {{"emergency", "emergency_cleared"}, "parked_with_driver"},
        };
    auto it = table.find({model, event});
    if (it != table.end()) model = it->second;
  };

  for (int i = 0; i < 5000; ++i) {
    const char* event = events[rng.below(std::size(events))];
    ASSERT_TRUE(sds.send_event(event).ok());
    step(event);
    if (i % 500 == 0) ASSERT_EQ(ivi.situation(), model) << "at event " << i;
  }
  EXPECT_EQ(ivi.situation(), model);
  EXPECT_EQ(ivi.sack()->events_rejected(), 0u);
  EXPECT_EQ(ivi.sack()->events_received(), 5000u);
}

TEST(Integration, PolicyReloadUnderLoadIsAtomic) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  auto admin = ivi.admin_process();
  auto media = ivi.media_process();

  for (int round = 0; round < 50; ++round) {
    // Interleave accesses with full policy reloads (alternating a policy
    // that grants media reads everywhere with one that grants nothing).
    bool permissive = round % 2 == 0;
    core::PolicyBuilder b;
    b.state("only", 0).initial("only").permission("MEDIA");
    b.allow("MEDIA", "*", "/var/media/**",
            core::MacOp::read | core::MacOp::getattr);
    if (permissive) b.grant("only", "MEDIA");
    ASSERT_TRUE(ivi.sack()->load_policy(b.build()).ok());

    auto fd = media.open(IviSystem::kMediaTrack, OpenFlags::read);
    EXPECT_EQ(fd.ok(), permissive) << "round " << round;
    if (fd.ok()) (void)media.close(*fd);

    // A broken reload must not disturb the active policy.
    core::PolicyBuilder broken;
    broken.state("a", 0).initial("ghost");
    EXPECT_FALSE(ivi.sack()->load_policy(broken.build()).ok());
    auto fd2 = media.open(IviSystem::kMediaTrack, OpenFlags::read);
    EXPECT_EQ(fd2.ok(), permissive);
    if (fd2.ok()) (void)media.close(*fd2);
  }
  (void)admin;
}

TEST(Integration, LongLivedFdsTrackSituationAcrossManyTransitions) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  // Rescue opens the door device during the first emergency and holds the
  // fd across dozens of situation changes.
  ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
  auto rescue = ivi.rescue_process();
  Fd fd = *rescue.open(ivi::VehicleHardware::kDoorPath, OpenFlags::write);

  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    bool in_emergency = ivi.situation() == "emergency";
    EXPECT_EQ(
        rescue.ioctl(fd, ivi::VEH_DOOR_UNLOCK, ivi::kAllDoors).ok(),
        in_emergency)
        << "iteration " << i;
    if (in_emergency) {
      if (rng.chance(0.5))
        ASSERT_TRUE(ivi.sds().send_event("emergency_cleared").ok());
    } else {
      if (rng.chance(0.5))
        ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
    }
  }
}

TEST(Integration, FdTableExhaustionIsCleanlyReported) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  auto media = ivi.media_process();
  std::vector<Fd> fds;
  for (;;) {
    auto fd = media.open(IviSystem::kMediaTrack, OpenFlags::read);
    if (!fd.ok()) {
      EXPECT_EQ(fd.error(), Errno::emfile);
      break;
    }
    fds.push_back(*fd);
    ASSERT_LE(fds.size(), kernel::FdTable::kMaxFds + 1);
  }
  EXPECT_EQ(fds.size(), kernel::FdTable::kMaxFds);
  for (Fd fd : fds) ASSERT_TRUE(media.close(fd).ok());
  // Everything works again after closing.
  EXPECT_TRUE(ivi.media().play_track(IviSystem::kMediaTrack).ok());
}

TEST(Integration, MixedValidAndUnknownEventsInOneWrite) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  auto admin = ivi.admin_process();
  // One write(2) carrying a valid event, garbage, and another valid event:
  // the handler processes all lines and the write *succeeds* — the accepted
  // events took effect, so reporting the batch as failed would make the SDS
  // retry transitions that already happened. The bad line is still visible
  // through the events_rejected counter; only an all-bad write is EINVAL.
  auto rc = admin.write_existing("/sys/kernel/security/SACK/events",
                                 "start_driving\nnot_an_event\ncrash_detected\n");
  EXPECT_TRUE(rc.ok());
  EXPECT_EQ(ivi.situation(), "emergency");
  EXPECT_EQ(ivi.sack()->events_rejected(), 1u);

  auto all_bad = admin.write_existing("/sys/kernel/security/SACK/events",
                                      "bogus_one\nbogus_two\n");
  EXPECT_EQ(all_bad.error(), Errno::einval);
  EXPECT_EQ(ivi.sack()->events_rejected(), 3u);
}

TEST(Integration, AuditTrailCoversWholeScenario) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  // Denials before the emergency...
  EXPECT_TRUE(ivi.rescue().respond_to_emergency().all_denied());
  auto denials_before = ivi.kernel().audit().count_denials("sack");
  EXPECT_GT(denials_before, 0u);
  // ...no new denials while the emergency grants access...
  ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
  EXPECT_TRUE(ivi.rescue().respond_to_emergency().all_ok());
  EXPECT_EQ(ivi.kernel().audit().count_denials("sack"), denials_before);
  // ...and the log records context (the situation state at denial time).
  const auto& records = ivi.kernel().audit().records();
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().context, "state=parked_with_driver");
}

TEST(Integration, EnhancedModeSurvivesProfileReloadDuringEmergency) {
  IviSystem ivi({.mac = MacConfig::sack_enhanced_apparmor});
  ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
  EXPECT_TRUE(ivi.rescue().respond_to_emergency().all_ok());

  // An administrator reloads the rescue profile mid-emergency (wiping the
  // injected rules); the next transition cycle restores consistency.
  auto text = ivi::default_apparmor_profiles_text();
  ASSERT_TRUE(ivi.apparmor()->load_policy_text(text).ok());
  // The reloaded profile lost the injected rules: access is denied again
  // (fail-safe direction), until the situation re-applies.
  EXPECT_TRUE(ivi.rescue().respond_to_emergency().all_denied());
  ASSERT_TRUE(ivi.sds().send_event("emergency_cleared").ok());
  ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
  EXPECT_TRUE(ivi.rescue().respond_to_emergency().all_ok());
}

}  // namespace
}  // namespace sack
