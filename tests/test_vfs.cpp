// VFS: path resolution, DAC, symlinks.
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "kernel/process.h"
#include "kernel/vfs.h"

namespace sack::kernel {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  Kernel kernel_;
  Task& root() { return kernel_.init_task(); }
};

TEST_F(VfsTest, BootTreeExists) {
  auto r = kernel_.vfs().resolve(Cred::root(), "/sys/kernel/security", "/");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->inode->is_dir());
  EXPECT_EQ(r->path, "/sys/kernel/security");
}

TEST_F(VfsTest, ResolveMissingIsEnoent) {
  auto r = kernel_.vfs().resolve(Cred::root(), "/no/such/path", "/");
  EXPECT_EQ(r.error(), Errno::enoent);
}

TEST_F(VfsTest, DotAndDotDot) {
  auto r = kernel_.vfs().resolve(Cred::root(), "/tmp/./../tmp/.", "/");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->path, "/tmp");
}

TEST_F(VfsTest, DotDotAboveRootStaysAtRoot) {
  auto r = kernel_.vfs().resolve(Cred::root(), "/../../tmp", "/");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->path, "/tmp");
}

TEST_F(VfsTest, RelativePathsUseCwd) {
  Process p(kernel_, root());
  ASSERT_TRUE(p.write_file("/tmp/rel.txt", "hi").ok());
  root().set_cwd("/tmp");
  auto r = kernel_.vfs().resolve(root().cred(), "rel.txt", root().cwd());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->path, "/tmp/rel.txt");
}

TEST_F(VfsTest, SymlinkFollowedByDefault) {
  Process p(kernel_, root());
  ASSERT_TRUE(p.write_file("/tmp/target.txt", "data").ok());
  ASSERT_TRUE(kernel_.sys_symlink(root(), "/tmp/target.txt", "/tmp/link").ok());
  auto r = kernel_.vfs().resolve(Cred::root(), "/tmp/link", "/");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->path, "/tmp/target.txt");
  EXPECT_TRUE(r->inode->is_regular());
}

TEST_F(VfsTest, SymlinkNotFollowedWhenAsked) {
  Process p(kernel_, root());
  ASSERT_TRUE(p.write_file("/tmp/target.txt", "data").ok());
  ASSERT_TRUE(kernel_.sys_symlink(root(), "/tmp/target.txt", "/tmp/link").ok());
  auto r = kernel_.vfs().resolve(Cred::root(), "/tmp/link", "/", false);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->inode->is_symlink());
}

TEST_F(VfsTest, RelativeSymlinkResolvesInItsDirectory) {
  Process p(kernel_, root());
  ASSERT_TRUE(p.mkdir("/tmp/d").ok());
  ASSERT_TRUE(p.write_file("/tmp/d/real", "x").ok());
  ASSERT_TRUE(kernel_.sys_symlink(root(), "real", "/tmp/d/alias").ok());
  auto r = kernel_.vfs().resolve(Cred::root(), "/tmp/d/alias", "/");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->path, "/tmp/d/real");
}

TEST_F(VfsTest, SymlinkLoopHitsEloop) {
  ASSERT_TRUE(kernel_.sys_symlink(root(), "/tmp/b", "/tmp/a").ok());
  ASSERT_TRUE(kernel_.sys_symlink(root(), "/tmp/a", "/tmp/b").ok());
  auto r = kernel_.vfs().resolve(Cred::root(), "/tmp/a", "/");
  EXPECT_EQ(r.error(), Errno::eloop);
}

TEST_F(VfsTest, WalkThroughFileIsEnotdir) {
  Process p(kernel_, root());
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  auto r = kernel_.vfs().resolve(Cred::root(), "/tmp/f/sub", "/");
  EXPECT_EQ(r.error(), Errno::enotdir);
}

TEST_F(VfsTest, ResolveParentForCreation) {
  auto r = kernel_.vfs().resolve_parent(Cred::root(), "/tmp/newfile", "/");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->inode, nullptr);
  EXPECT_EQ(r->leaf, "newfile");
  EXPECT_EQ(r->path, "/tmp/newfile");
  ASSERT_NE(r->parent, nullptr);
}

TEST_F(VfsTest, NameTooLongRejected) {
  std::string path = "/" + std::string(5000, 'a');
  auto r = kernel_.vfs().resolve(Cred::root(), path, "/");
  EXPECT_EQ(r.error(), Errno::enametoolong);
}

// --- DAC ---

TEST(DacCheck, OwnerGroupOtherBits) {
  VirtualClock clock;
  Vfs vfs(&clock);
  auto inode = vfs.make_inode(InodeType::regular, 0640, 100, 200);
  Cred owner = Cred::user(100, 200);
  Cred groupie = Cred::user(101, 200);
  Cred other = Cred::user(102, 300);

  EXPECT_EQ(dac_check(owner, *inode, AccessMask::read), Errno::ok);
  EXPECT_EQ(dac_check(owner, *inode, AccessMask::write), Errno::ok);
  EXPECT_EQ(dac_check(groupie, *inode, AccessMask::read), Errno::ok);
  EXPECT_EQ(dac_check(groupie, *inode, AccessMask::write), Errno::eacces);
  EXPECT_EQ(dac_check(other, *inode, AccessMask::read), Errno::eacces);
}

TEST(DacCheck, RootOverridesViaCapability) {
  VirtualClock clock;
  Vfs vfs(&clock);
  auto inode = vfs.make_inode(InodeType::regular, 0000, 100, 100);
  EXPECT_EQ(dac_check(Cred::root(), *inode, AccessMask::read), Errno::ok);
  EXPECT_EQ(dac_check(Cred::root(), *inode, AccessMask::write), Errno::ok);
  // ... but not exec of a file with no x bit anywhere (Linux semantics).
  EXPECT_EQ(dac_check(Cred::root(), *inode, AccessMask::exec), Errno::eacces);
}

TEST(DacCheck, UnprivilegedUserBlockedFromRootFile) {
  VirtualClock clock;
  Vfs vfs(&clock);
  auto inode = vfs.make_inode(InodeType::regular, 0600, 0, 0);
  Cred user = Cred::user(1000, 1000);
  EXPECT_EQ(dac_check(user, *inode, AccessMask::read), Errno::eacces);
  EXPECT_EQ(dac_check(user, *inode, AccessMask::write), Errno::eacces);
}

TEST_F(VfsTest, SearchPermissionRequiredOnPathWalk) {
  Process p(kernel_, root());
  ASSERT_TRUE(p.mkdir("/tmp/private", 0700).ok());
  ASSERT_TRUE(p.write_file("/tmp/private/data", "secret").ok());
  Cred user = Cred::user(1000, 1000);
  auto r = kernel_.vfs().resolve(user, "/tmp/private/data", "/");
  EXPECT_EQ(r.error(), Errno::eacces);
}

}  // namespace
}  // namespace sack::kernel
