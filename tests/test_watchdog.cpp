// SDS liveness watchdog: the policy clause, the kernel-side deadline and
// failsafe forcing, the heartbeat file, the resync handshake, and the
// sequence-stamp replay suppression on the events file.
#include <gtest/gtest.h>

#include "core/policy_builder.h"
#include "core/policy_checker.h"
#include "core/policy_parser.h"
#include "core/sack_module.h"
#include "kernel/process.h"
#include "sds/sds.h"
#include "sds/traces.h"

namespace sack::core {
namespace {

using kernel::Cred;
using kernel::Kernel;
using kernel::OpenFlags;
using kernel::Process;
using kernel::Task;

constexpr std::string_view kHeartbeat = "/sys/kernel/security/SACK/heartbeat";
constexpr std::string_view kEvents = "/sys/kernel/security/SACK/events";

SackPolicy watchdog_policy(std::int64_t deadline_ms = 500) {
  PolicyBuilder b;
  b.state("normal", 0)
      .state("emergency", 1)
      .state("lockdown", 2)
      .initial("normal")
      .transition("normal", "crash_detected", "emergency")
      .transition("emergency", "emergency_cleared", "normal")
      .transition("lockdown", "sds_recovered", "normal")
      .watchdog(deadline_ms, "lockdown")
      .permission("DOORS")
      .grant("emergency", "DOORS")
      .allow("DOORS", "*", "/dev/door", MacOp::write | MacOp::ioctl);
  return b.build();
}

struct Rig {
  Kernel kernel;
  SackModule* mod;
  Rig() {
    mod = static_cast<SackModule*>(kernel.add_lsm(
        std::make_unique<SackModule>(SackMode::independent)));
  }
};

// --- policy language ---

TEST(WatchdogPolicy, ParsesAndRoundTrips) {
  auto parsed = parse_policy(R"(
states { a = 0; b = 1; }
initial a;
transitions { a -> b on go; }
watchdog {
  deadline 750;
  failsafe b;
}
)");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.policy.watchdog.has_value());
  EXPECT_EQ(parsed.policy.watchdog->deadline_ms, 750);
  EXPECT_EQ(parsed.policy.watchdog->failsafe_state, "b");

  auto again = parse_policy(parsed.policy.to_text());
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again.policy.watchdog.has_value());
  EXPECT_EQ(again.policy.watchdog->deadline_ms, 750);
  EXPECT_EQ(again.policy.watchdog->failsafe_state, "b");
}

TEST(WatchdogPolicy, SectionPresenceAndMerge) {
  SectionPresence presence;
  auto parsed = parse_policy("watchdog { deadline 100; failsafe x; }",
                             &presence);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(presence.watchdog);
  EXPECT_FALSE(presence.states);

  // Merging a document with a watchdog section replaces the clause...
  SackPolicy base = watchdog_policy();
  merge_policy_sections(base, parsed.policy, presence);
  ASSERT_TRUE(base.watchdog.has_value());
  EXPECT_EQ(base.watchdog->deadline_ms, 100);
  EXPECT_EQ(base.watchdog->failsafe_state, "x");

  // ...and an *empty* watchdog block clears it (the canonical "none" form).
  SectionPresence p2;
  auto cleared = parse_policy("watchdog { }", &p2);
  ASSERT_TRUE(cleared.ok());
  EXPECT_TRUE(p2.watchdog);
  merge_policy_sections(base, cleared.policy, p2);
  EXPECT_FALSE(base.watchdog.has_value());
}

TEST(WatchdogPolicy, CheckerRejectsBadClauses) {
  {
    PolicyBuilder b;
    b.state("a", 0).initial("a").watchdog(0, "a");
    auto diags = check_policy(b.build());
    EXPECT_TRUE(has_errors(diags));
    bool found = false;
    for (const auto& d : diags)
      if (d.code == CheckCode::invalid_watchdog_deadline) found = true;
    EXPECT_TRUE(found);
  }
  {
    PolicyBuilder b;
    b.state("a", 0).initial("a").watchdog(100, "ghost");
    auto diags = check_policy(b.build());
    EXPECT_TRUE(has_errors(diags));
    bool found = false;
    for (const auto& d : diags)
      if (d.code == CheckCode::undefined_watchdog_state) found = true;
    EXPECT_TRUE(found);
  }
  {
    PolicyBuilder b;
    b.state("a", 0).initial("a").watchdog(100, "");
    EXPECT_TRUE(has_errors(check_policy(b.build())));
  }
}

TEST(WatchdogPolicy, FailsafeStateCountsAsReachable) {
  // 'lockdown' has no inbound transition edge; only the watchdog can enter
  // it. That must not warn as unreachable.
  PolicyBuilder b;
  b.state("a", 0).state("lockdown", 1).initial("a").watchdog(100, "lockdown");
  for (const auto& d : check_policy(b.build()))
    EXPECT_NE(d.code, CheckCode::unreachable_state) << d.to_string();
}

// --- SACKfs policy/watchdog section file ---

TEST(WatchdogPolicy, SectionFileRoundTripsThroughSackfs) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  Process admin(rig.kernel, rig.kernel.init_task());

  auto dump = admin.read_file("/sys/kernel/security/SACK/policy/watchdog");
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump->find("deadline 500;"), std::string::npos);
  EXPECT_NE(dump->find("failsafe lockdown;"), std::string::npos);

  // Replace just the watchdog section; the rest of the policy survives.
  ASSERT_TRUE(admin.write_existing("/sys/kernel/security/SACK/policy/watchdog",
                                   "watchdog { deadline 900; failsafe "
                                   "lockdown; }")
                  .ok());
  EXPECT_EQ(rig.mod->policy().watchdog->deadline_ms, 900);
  EXPECT_EQ(rig.mod->policy().states.size(), 3u);

  // A section write naming an undeclared failsafe is rejected atomically.
  EXPECT_FALSE(
      admin.write_existing("/sys/kernel/security/SACK/policy/watchdog",
                           "watchdog { deadline 900; failsafe ghost; }")
          .ok());
  EXPECT_EQ(rig.mod->policy().watchdog->deadline_ms, 900);
}

// --- kernel-side watchdog ---

TEST(Watchdog, TripsExactlyAtDeadline) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  EXPECT_TRUE(rig.mod->watchdog_enabled());
  EXPECT_TRUE(rig.mod->sds_alive());

  // One tick *before* the deadline: still alive.
  rig.kernel.advance_clock_ms(499);
  EXPECT_TRUE(rig.mod->sds_alive());
  EXPECT_EQ(rig.mod->current_state_name(), "normal");

  // Exactly at the deadline — not a millisecond later.
  rig.kernel.advance_clock_ms(1);
  EXPECT_FALSE(rig.mod->sds_alive());
  EXPECT_TRUE(rig.mod->resync_pending());
  EXPECT_EQ(rig.mod->watchdog_trips(), 1u);
  EXPECT_EQ(rig.mod->current_state_name(), "lockdown");

  // Latched: further silence does not re-trip.
  rig.kernel.advance_clock_ms(10'000);
  EXPECT_EQ(rig.mod->watchdog_trips(), 1u);

  bool audited = false;
  for (const auto& r : rig.kernel.audit().records())
    if (r.operation == "transition:watchdog_failsafe") audited = true;
  EXPECT_TRUE(audited);
}

TEST(Watchdog, EventsWriteDefersDeadline) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  Process root(rig.kernel, rig.kernel.init_task());

  for (int i = 0; i < 5; ++i) {
    rig.kernel.advance_clock_ms(400);
    ASSERT_TRUE(root.write_existing(kEvents, "crash_detected\n").ok());
  }
  EXPECT_TRUE(rig.mod->sds_alive());
  EXPECT_EQ(rig.mod->watchdog_trips(), 0u);
  EXPECT_EQ(rig.mod->current_state_name(), "emergency");
}

TEST(Watchdog, HeartbeatDefersDeadline) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  Process root(rig.kernel, rig.kernel.init_task());

  for (int i = 0; i < 5; ++i) {
    rig.kernel.advance_clock_ms(400);
    ASSERT_TRUE(root.write_existing(kHeartbeat, "alive\n").ok());
  }
  EXPECT_TRUE(rig.mod->sds_alive());
  EXPECT_EQ(rig.mod->heartbeats_received(), 5u);
  EXPECT_EQ(rig.mod->watchdog_trips(), 0u);
  // The heartbeat proves liveness but is not a situation event.
  EXPECT_EQ(rig.mod->events_received(), 0u);
}

TEST(Watchdog, HeartbeatFileIsRootOnly) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  Task& evil = rig.kernel.spawn_task("evil", Cred::user(1000, 1000));
  Process p(rig.kernel, evil);
  // 0600: an unprivileged process can neither fake liveness nor spy on the
  // watchdog state.
  EXPECT_EQ(p.open(kHeartbeat, OpenFlags::write).error(), Errno::eacces);
  EXPECT_EQ(p.open(kHeartbeat, OpenFlags::read).error(), Errno::eacces);
  EXPECT_EQ(rig.mod->heartbeats_received(), 0u);
}

TEST(Watchdog, ResyncRestoresConvergence) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  Process root(rig.kernel, rig.kernel.init_task());

  // The SDS raises an emergency, then dies.
  ASSERT_TRUE(root.write_existing(kEvents, "seq=1 crash_detected\n").ok());
  EXPECT_EQ(rig.mod->current_state_name(), "emergency");
  rig.kernel.advance_clock_ms(500);
  EXPECT_EQ(rig.mod->current_state_name(), "lockdown");
  EXPECT_TRUE(rig.mod->resync_pending());

  // Restarted SDS reads the pending flag, shakes hands, replays consensus.
  auto status = root.read_file(kHeartbeat);
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("resync_pending=1"), std::string::npos);

  ASSERT_TRUE(root.write_existing(kHeartbeat, "resync\n").ok());
  EXPECT_FALSE(rig.mod->resync_pending());
  EXPECT_TRUE(rig.mod->sds_alive());
  EXPECT_EQ(rig.mod->resyncs(), 1u);
  EXPECT_EQ(rig.mod->current_state_name(), "normal");  // forced to initial

  // Consensus replay: the crash detector still believes in the emergency.
  // Its fresh numbering must not be shadowed by pre-crash sequence history.
  ASSERT_TRUE(root.write_existing(kEvents, "seq=1 crash_detected\n").ok());
  EXPECT_EQ(rig.mod->current_state_name(), "emergency");
  EXPECT_EQ(rig.mod->events_stale(), 0u);

  bool audited = false;
  for (const auto& r : rig.kernel.audit().records())
    if (r.operation == "transition:resync") audited = true;
  EXPECT_TRUE(audited);
}

TEST(Watchdog, NoClauseMeansNoTrip) {
  Rig rig;
  PolicyBuilder b;
  b.state("a", 0).initial("a");
  ASSERT_TRUE(rig.mod->load_policy(b.build()).ok());
  EXPECT_FALSE(rig.mod->watchdog_enabled());
  rig.kernel.advance_clock_ms(1'000'000);
  EXPECT_TRUE(rig.mod->sds_alive());
  EXPECT_EQ(rig.mod->watchdog_trips(), 0u);
}

TEST(Watchdog, PolicyReloadRestartsLiveness) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  rig.kernel.advance_clock_ms(500);
  EXPECT_FALSE(rig.mod->sds_alive());

  // Reloading proves an administrator is alive: the deadline restarts and
  // the trip latch clears.
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  EXPECT_TRUE(rig.mod->sds_alive());
  EXPECT_FALSE(rig.mod->resync_pending());
  EXPECT_EQ(rig.mod->current_state_name(), "normal");
  rig.kernel.advance_clock_ms(499);
  EXPECT_TRUE(rig.mod->sds_alive());
}

TEST(Watchdog, StatusAndMetricsExposeLiveness) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  rig.kernel.advance_clock_ms(500);

  auto status = rig.mod->status_text();
  EXPECT_NE(status.find("watchdog_deadline_ms: 500"), std::string::npos);
  EXPECT_NE(status.find("sds_alive: 0"), std::string::npos);
  EXPECT_NE(status.find("watchdog_trips: 1"), std::string::npos);
  auto json = rig.mod->metrics_json();
  EXPECT_NE(json.find("\"watchdog\": {\"deadline_ms\": 500"),
            std::string::npos);
  EXPECT_NE(json.find("\"sds_alive\": false"), std::string::npos);
}

// --- events-file sequence stamps ---

TEST(EventSeq, StaleReplayIsAcceptedNoOp) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  Process root(rig.kernel, rig.kernel.init_task());

  ASSERT_TRUE(root.write_existing(kEvents, "seq=3 crash_detected\n").ok());
  EXPECT_EQ(rig.mod->current_state_name(), "emergency");
  ASSERT_TRUE(root.write_existing(kEvents, "seq=1 emergency_cleared\n").ok());
  EXPECT_EQ(rig.mod->current_state_name(), "normal");

  // Replaying an old crash write must not re-enter the emergency — the
  // write still succeeds (the SDS retry path treats it as delivered).
  ASSERT_TRUE(root.write_existing(kEvents, "seq=3 crash_detected\n").ok());
  EXPECT_EQ(rig.mod->current_state_name(), "normal");
  EXPECT_EQ(rig.mod->events_stale(), 1u);

  // A fresh emission moves forward again.
  ASSERT_TRUE(root.write_existing(kEvents, "seq=4 crash_detected\n").ok());
  EXPECT_EQ(rig.mod->current_state_name(), "emergency");
}

TEST(EventSeq, MalformedStampIsRejected) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  Process root(rig.kernel, rig.kernel.init_task());
  EXPECT_EQ(root.write_existing(kEvents, "seq=x crash_detected\n").error(),
            Errno::einval);
  EXPECT_EQ(root.write_existing(kEvents, "seq=12\n").error(), Errno::einval);
  EXPECT_EQ(rig.mod->current_state_name(), "normal");
}

TEST(EventSeq, UnstampedLinesBypassSuppression) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  Process root(rig.kernel, rig.kernel.init_task());
  // The raw emulation channel has no stamps; repeats deliver every time.
  ASSERT_TRUE(root.write_existing(kEvents, "crash_detected\n").ok());
  ASSERT_TRUE(root.write_existing(kEvents, "emergency_cleared\n").ok());
  ASSERT_TRUE(root.write_existing(kEvents, "crash_detected\n").ok());
  EXPECT_EQ(rig.mod->current_state_name(), "emergency");
  EXPECT_EQ(rig.mod->events_stale(), 0u);
}

// --- end-to-end: SDS heartbeats keep the kernel alive; silence trips it ---

TEST(WatchdogEndToEnd, SdsLoopAndRecovery) {
  Rig rig;
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(500)).ok());
  sds::SituationDetectionService daemon(
      Process(rig.kernel, rig.kernel.init_task()));
  daemon.add_default_detectors();

  // 10 Hz frames: each feed writes a heartbeat, so the 500 ms deadline
  // never elapses.
  std::int64_t t_ms = 0;
  auto drive_frame = [&](double speed, bool crash = false) {
    sds::SensorFrame f;
    f.time_ms = t_ms;
    f.speed_kmh = speed;
    f.gear = sds::Gear::drive;
    f.driver_present = true;
    f.crash_signal = crash;
    (void)daemon.feed(f);
    rig.kernel.advance_clock_ms(100);
    t_ms += 100;
  };
  for (int i = 0; i < 20; ++i) drive_frame(80);
  EXPECT_TRUE(rig.mod->sds_alive());
  EXPECT_EQ(daemon.heartbeats_sent(), 20u);

  drive_frame(80, /*crash=*/true);
  EXPECT_EQ(rig.mod->current_state_name(), "emergency");

  // The SDS stops being scheduled: five silent ticks reach the deadline.
  for (int i = 0; i < 5; ++i) rig.kernel.advance_clock_ms(100);
  EXPECT_EQ(rig.mod->current_state_name(), "lockdown");
  EXPECT_TRUE(rig.mod->resync_pending());

  // First frame after the stall: the SDS sees resync_pending in its poll,
  // shakes hands, and replays consensus (the crash detector still latches
  // the emergency) — the SSM re-converges within one frame.
  t_ms += 500;
  drive_frame(80, /*crash=*/true);
  EXPECT_EQ(rig.mod->current_state_name(), "emergency");
  EXPECT_EQ(daemon.resyncs_sent(), 1u);
  EXPECT_EQ(rig.mod->resyncs(), 1u);
  EXPECT_FALSE(rig.mod->resync_pending());
  EXPECT_TRUE(rig.mod->sds_alive());
}

}  // namespace
}  // namespace sack::core
