// Fleet rollout chaos campaign: seeded trials with the fleet.* fault sites
// armed. The invariant under any fault mix: every trial ends fully rolled
// out or fully rolled back — never a mixed-version fleet — and a rollback
// never leaves a stale verdict (equivalence mismatches stay zero).
#include <gtest/gtest.h>

#include <string>

#include "fleet/rollout.h"
#include "util/fault.h"

namespace sack::fleet {
namespace {

using util::FaultInjector;
using util::FaultSpec;

PolicyVersion version_of(std::uint64_t version, std::string text) {
  auto pv = make_policy_version(version, std::move(text));
  EXPECT_TRUE(pv.ok());
  return std::move(pv).value();
}

class FleetChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().reset(); }

  // The standard campaign fault matrix, re-seeded per trial so a failing
  // trial replays from its number alone.
  static void arm_fleet_sites(std::uint64_t trial_seed) {
    auto& fi = FaultInjector::instance();
    fi.reset();
    FaultSpec drop;
    drop.probability = 0.25;
    drop.seed = trial_seed;
    FaultSpec delay;
    delay.probability = 0.25;
    delay.seed = trial_seed ^ 0xde1a7ULL;
    FaultSpec crash;
    crash.probability = 0.08;
    crash.seed = trial_seed ^ 0xc4a54ULL;
    FaultSpec activate;
    activate.probability = 0.15;
    activate.seed = trial_seed ^ 0xac7ULL;
    activate.error = Errno::eio;
    ASSERT_TRUE(fi.arm("fleet.push.drop", drop));
    ASSERT_TRUE(fi.arm("fleet.push.delay", delay));
    ASSERT_TRUE(fi.arm("fleet.vehicle.crash", crash));
    ASSERT_TRUE(fi.arm("fleet.activate.fail", activate));
  }
};

TEST_F(FleetChaosTest, FleetSitesAreRegisteredForCampaignDiscovery) {
  // The campaign driver (and sack-fuzz --list-fault-sites) discovers its
  // dials through the registry; all four fleet sites must be enumerable.
  auto sites = FaultInjector::instance().fault_sites();
  for (std::string_view name :
       {"fleet.push.drop", "fleet.push.delay", "fleet.activate.fail",
        "fleet.vehicle.crash"}) {
    bool found = false;
    for (const auto& site : sites)
      if (site.name == name) found = true;
    EXPECT_TRUE(found) << name;
  }
}

TEST_F(FleetChaosTest, FleetCampaignConvergesEveryTrial) {
  constexpr int kTrials = 40;
  int rollbacks = 0;
  int commits = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    arm_fleet_sites(0x5ac4ULL + static_cast<std::uint64_t>(trial));

    FleetConfig fc;
    fc.vehicles = 6;
    fc.shards = 1;  // serial pushes: fault draws replay deterministically
    fc.start_sds = false;
    Fleet fleet(fc, version_of(1, fleet_policy_v1()));
    RolloutConfig rc;
    rc.run_oracle = false;  // trials stress the pushes, not the gate
    RolloutController controller(fleet, rc);

    // Every fifth trial ships the regression; the rest the benign update.
    const bool bad = trial % 5 == 4;
    auto report = controller.roll_out(
        version_of(2, bad ? fleet_policy_bad() : fleet_policy_v2()));

    ASSERT_NE(report.outcome, RolloutOutcome::rejected) << "trial " << trial;
    if (report.outcome == RolloutOutcome::rolled_back)
      ++rollbacks;
    else
      ++commits;
    EXPECT_TRUE(report.fully_converged) << "trial " << trial;
    EXPECT_EQ(report.mixed_version_vehicles, 0u) << "trial " << trial;
    EXPECT_EQ(report.equivalence_mismatches, 0u) << "trial " << trial;
    const std::uint64_t final_version =
        report.outcome == RolloutOutcome::committed ? 2u : 1u;
    EXPECT_TRUE(fleet.converged_on(final_version)) << "trial " << trial;
  }
  // The bad-policy trials guarantee rollback coverage; the fault matrix is
  // mild enough that benign trials usually commit.
  EXPECT_GT(rollbacks, 0);
  EXPECT_GT(commits, 0);
}

TEST_F(FleetChaosTest, FleetRollbackUnderFaultsStaysBitExact) {
  // Worst case: the regression rollout AND a hostile network during the
  // rollback itself. Convergence must come from the reboot fallback, and
  // the restored decisions must still fingerprint identically.
  arm_fleet_sites(0xbadc0ffeULL);

  FleetConfig fc;
  fc.vehicles = 5;
  fc.shards = 1;
  fc.start_sds = false;
  Fleet fleet(fc, version_of(1, fleet_policy_v1()));
  RolloutConfig rc;
  rc.run_oracle = false;
  rc.equivalence_sample = 5;  // fingerprint the whole fleet
  RolloutController controller(fleet, rc);

  auto report = controller.roll_out(version_of(2, fleet_policy_bad()));
  ASSERT_EQ(report.outcome, RolloutOutcome::rolled_back);
  EXPECT_TRUE(report.fully_converged);
  EXPECT_EQ(report.mixed_version_vehicles, 0u);
  EXPECT_GT(report.equivalence_checked, 0u);
  EXPECT_EQ(report.equivalence_mismatches, 0u);
  EXPECT_TRUE(fleet.converged_on(1));
}

TEST_F(FleetChaosTest, FleetCrashOnlyStormCommitsOrRollsBackCleanly) {
  auto& fi = FaultInjector::instance();
  FaultSpec crash;
  crash.probability = 0.6;
  crash.seed = 0xb007;
  ASSERT_TRUE(fi.arm("fleet.vehicle.crash", crash));

  FleetConfig fc;
  fc.vehicles = 8;
  fc.shards = 1;
  fc.start_sds = false;
  Fleet fleet(fc, version_of(1, fleet_policy_v1()));
  RolloutConfig rc;
  rc.run_oracle = false;
  RolloutController controller(fleet, rc);
  auto report = controller.roll_out(version_of(2, fleet_policy_v2()));

  EXPECT_NE(report.outcome, RolloutOutcome::rejected);
  EXPECT_GT(report.crashes, 0u);
  EXPECT_TRUE(report.fully_converged);
  EXPECT_EQ(report.mixed_version_vehicles, 0u);
  // Crashed vehicles rebooted onto flash; none may still carry the staged
  // version unless the rollout fully committed.
  const std::uint64_t final_version =
      report.outcome == RolloutOutcome::committed ? 2u : 1u;
  EXPECT_TRUE(fleet.converged_on(final_version));
}

}  // namespace
}  // namespace sack::fleet
