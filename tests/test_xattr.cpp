// Extended attributes: user.* metadata, security.* labels, and their
// interplay with the TE module's inode labeling.
#include <gtest/gtest.h>

#include <algorithm>

#include "kernel/kernel.h"
#include "kernel/process.h"
#include "te/te_module.h"

namespace sack::kernel {
namespace {

class XattrTest : public ::testing::Test {
 protected:
  XattrTest() {
    Process admin(kernel_, kernel_.init_task());
    EXPECT_TRUE(admin.write_file("/tmp/f", "data").ok());
  }
  Kernel kernel_;
  Task& root() { return kernel_.init_task(); }
};

TEST_F(XattrTest, UserXattrRoundTrip) {
  ASSERT_TRUE(kernel_.sys_setxattr(root(), "/tmp/f", "user.origin", "cdn")
                  .ok());
  auto v = kernel_.sys_getxattr(root(), "/tmp/f", "user.origin");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "cdn");
  // Overwrite.
  ASSERT_TRUE(kernel_.sys_setxattr(root(), "/tmp/f", "user.origin", "local")
                  .ok());
  EXPECT_EQ(*kernel_.sys_getxattr(root(), "/tmp/f", "user.origin"), "local");
}

TEST_F(XattrTest, MissingXattrIsEnodata) {
  EXPECT_EQ(kernel_.sys_getxattr(root(), "/tmp/f", "user.none").error(),
            Errno::enodata);
  EXPECT_EQ(kernel_.sys_getxattr(root(), "/tmp/f", "security.none").error(),
            Errno::enodata);
}

TEST_F(XattrTest, UnknownNamespaceRejected) {
  EXPECT_EQ(kernel_.sys_setxattr(root(), "/tmp/f", "trusted.x", "v").error(),
            Errno::eopnotsupp);
  EXPECT_EQ(kernel_.sys_getxattr(root(), "/tmp/f", "bogus").error(),
            Errno::eopnotsupp);
}

TEST_F(XattrTest, SecurityNamespaceNeedsMacAdmin) {
  Task& user = kernel_.spawn_task("user", Cred::user(1000, 1000));
  user.cred().caps.add(Capability::dac_override);
  EXPECT_EQ(kernel_.sys_setxattr(user, "/tmp/f", "security.setype", "evil_t")
                .error(),
            Errno::eperm);
  EXPECT_TRUE(
      kernel_.sys_setxattr(root(), "/tmp/f", "security.mylabel", "x").ok());
}

TEST_F(XattrTest, UserXattrGatedByDac) {
  ASSERT_TRUE(kernel_.sys_chmod(root(), "/tmp/f", 0600).ok());
  Task& user = kernel_.spawn_task("user", Cred::user(1000, 1000));
  EXPECT_EQ(kernel_.sys_setxattr(user, "/tmp/f", "user.x", "v").error(),
            Errno::eacces);
  EXPECT_EQ(kernel_.sys_getxattr(user, "/tmp/f", "user.x").error(),
            Errno::eacces);
}

TEST_F(XattrTest, ListShowsLabelsAndUserAttrsOnly) {
  ASSERT_TRUE(kernel_.sys_setxattr(root(), "/tmp/f", "user.a", "1").ok());
  ASSERT_TRUE(
      kernel_.sys_setxattr(root(), "/tmp/f", "security.mymod", "L").ok());
  auto names = kernel_.sys_listxattr(root(), "/tmp/f");
  ASSERT_TRUE(names.ok());
  EXPECT_NE(std::find(names->begin(), names->end(), "user.a"), names->end());
  EXPECT_NE(std::find(names->begin(), names->end(), "security.mymod"),
            names->end());
}

TEST_F(XattrTest, TeLabelVisibleThroughXattr) {
  auto* te = static_cast<te::TeModule*>(
      kernel_.add_lsm(std::make_unique<te::TeModule>()));
  ASSERT_TRUE(te->load_policy_text(R"(
type tmp_t;
filecon /tmp/** tmp_t;
)")
                  .ok());
  // Touch the file through a confined-path query so the label caches...
  Process p(kernel_, root());
  ASSERT_TRUE(p.read_file("/tmp/f").ok());
  // ...and read it back the way userspace tooling (ls -Z) would.
  auto label = kernel_.sys_getxattr(root(), "/tmp/f", "security.setype");
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, "tmp_t");
  // The internal cache-generation entry is not listed.
  auto names = kernel_.sys_listxattr(root(), "/tmp/f");
  ASSERT_TRUE(names.ok());
  for (const auto& n : *names) EXPECT_EQ(n.find("cache_gen"), std::string::npos);
}

}  // namespace
}  // namespace sack::kernel
