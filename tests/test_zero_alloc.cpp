// Steady-state allocation audit for the enforcement hot path.
//
// A global counting allocator (operator new/delete overrides, which is why
// this suite lives in its own binary) measures heap traffic across warmed-up
// check sequences. The contract under test: once the caches are warm, a
// hook-path decision — AVC hit, AVC re-stamp after a flush, DFA table walk,
// labeled inode check, file_permission revalidation probe — performs ZERO
// allocations. Any regression (a composed subject string, an owned AVC key
// on the re-stamp path, a materialized label) shows up as a nonzero delta.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/avc.h"
#include "core/policy_builder.h"
#include "core/ruleset.h"
#include "core/sack_module.h"
#include "kernel/file.h"
#include "kernel/inode.h"
#include "kernel/task.h"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace sack::core {
namespace {

// Counts allocations across `fn` after the caller warmed the relevant caches.
template <typename Fn>
std::size_t allocations_during(Fn&& fn) {
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  fn();
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

SackPolicy demo_policy() {
  PolicyBuilder b;
  b.state("normal", 0)
      .state("emergency", 1)
      .initial("normal")
      .transition("normal", "crash", "emergency")
      .permission("MEDIA")
      .grant("normal", "MEDIA")
      .grant("emergency", "MEDIA")
      .allow("MEDIA", "*", "/var/media/**", MacOp::read | MacOp::getattr);
  return b.build();
}

kernel::Task make_task() {
  kernel::Task task(kernel::Pid(42), kernel::Pid(1), "app", kernel::Cred{});
  task.set_exe_path("/usr/bin/app");
  return task;
}

TEST(ZeroAlloc, AvcHitPathIsAllocationFree) {
  SackModule module(SackMode::independent);
  ASSERT_TRUE(module.load_policy(demo_policy()).ok());
  kernel::Task task = make_task();
  const std::string path = "/var/media/track.pcm";
  // Warm: first call misses the AVC, walks the matcher, inserts.
  ASSERT_EQ(module.inode_getattr(task, path), Errno::ok);
  EXPECT_EQ(allocations_during([&] {
              for (int i = 0; i < 1000; ++i)
                ASSERT_EQ(module.inode_getattr(task, path), Errno::ok);
            }),
            0u);
}

TEST(ZeroAlloc, DfaMissPathIsAllocationFree) {
  // AVC off: every check pays the full rule-set decision. With the DFA that
  // is a table walk returning a reference into the automaton's mask storage
  // — no label materialization, no subject composition.
  SackModule module(SackMode::independent);
  module.set_avc(false);
  ASSERT_TRUE(module.load_policy(demo_policy()).ok());
  kernel::Task task = make_task();
  const std::string path = "/var/media/track.pcm";
  ASSERT_EQ(module.inode_getattr(task, path), Errno::ok);
  EXPECT_EQ(allocations_during([&] {
              for (int i = 0; i < 1000; ++i)
                ASSERT_EQ(module.inode_getattr(task, path), Errno::ok);
            }),
            0u);
}

TEST(ZeroAlloc, WarmInodeLabelPathIsAllocationFree) {
  SackModule module(SackMode::independent);
  module.set_avc(false);  // force every check through the label path
  ASSERT_TRUE(module.load_policy(demo_policy()).ok());
  kernel::Task task = make_task();
  const kernel::Inode inode(kernel::InodeNo(7), kernel::InodeType::regular,
                            0644, kernel::Uid(0), kernel::Gid(0));
  const std::string path = "/var/media/track.pcm";
  // Warm: resolves and stores the label on the inode.
  ASSERT_EQ(module.file_open(task, path, inode, kernel::AccessMask::read),
            Errno::ok);
  EXPECT_EQ(allocations_during([&] {
              for (int i = 0; i < 1000; ++i)
                ASSERT_EQ(module.file_open(task, path, inode,
                                           kernel::AccessMask::read),
                          Errno::ok);
            }),
            0u);
}

TEST(ZeroAlloc, FilePermissionRevalidationProbeIsAllocationFree) {
  SackModule module(SackMode::independent);
  ASSERT_TRUE(module.load_policy(demo_policy()).ok());
  kernel::Task task = make_task();
  auto inode = std::make_shared<kernel::Inode>(
      kernel::InodeNo(8), kernel::InodeType::regular, 0644, kernel::Uid(0),
      kernel::Gid(0));
  const kernel::File file(inode, kernel::OpenFlags::read,
                          "/var/media/track.pcm");
  // Warm: first call checks and stores the composed-subject verdict.
  ASSERT_EQ(module.file_permission(task, file, kernel::AccessMask::read),
            Errno::ok);
  EXPECT_EQ(allocations_during([&] {
              for (int i = 0; i < 1000; ++i)
                ASSERT_EQ(module.file_permission(task, file,
                                                 kernel::AccessMask::read),
                          Errno::ok);
            }),
            0u);
}

TEST(ZeroAlloc, AvcRestampAfterFlushIsAllocationFree) {
  // The transition-storm shape: the AVC is flushed (generation bump), the
  // same queries return, and each insert re-stamps an existing entry. The
  // transparent-lookup insert must not copy the key strings again.
  AccessVectorCache avc;
  AccessQuery query;
  query.subject_exe = "/usr/bin/app";
  query.subject_profile = "";
  query.object_path = "/var/media/track.pcm";
  query.op = MacOp::read;
  avc.insert(query, 1, Errno::ok);  // owned key materialized once
  EXPECT_EQ(allocations_during([&] {
              for (std::uint64_t gen = 2; gen < 1000; ++gen) {
                avc.insert(query, gen, Errno::ok);
                auto hit = avc.probe(query, gen);
                ASSERT_TRUE(hit.has_value());
                ASSERT_EQ(*hit, Errno::ok);
              }
            }),
            0u);
}

TEST(ZeroAlloc, MaskSwapActivationKeepsCheckAllocationFree) {
  // Steady-state enforcement racing activation: the reader side must stay
  // allocation-free even while activations republish masks. (The writer
  // side allocates — that is the control plane.)
  DfaRuleSet rules;
  (void)rules.load(demo_policy());
  rules.activate({"MEDIA"});
  AccessQuery query;
  query.subject_exe = "/usr/bin/app";
  query.subject_profile = "";
  query.object_path = "/var/media/track.pcm";
  query.op = MacOp::read;
  ASSERT_EQ(rules.check(query), Errno::ok);
  EXPECT_EQ(allocations_during([&] {
              for (int i = 0; i < 1000; ++i)
                ASSERT_EQ(rules.check(query), Errno::ok);
            }),
            0u);
}

}  // namespace
}  // namespace sack::core
