// SituationStateMachine: Algorithm 1's transition half.
#include <gtest/gtest.h>

#include "core/policy_builder.h"
#include "core/ssm.h"
#include "simbench/policy_gen.h"
#include "util/rng.h"

namespace sack::core {
namespace {

SackPolicy fig2_policy() {
  // The paper's Fig 2: emergency, driving, parking with/without driver.
  PolicyBuilder b;
  b.state("parking_with_driver", 0)
      .state("parking_without_driver", 1)
      .state("driving", 2)
      .state("emergency", 3)
      .initial("parking_with_driver")
      .transition("parking_with_driver", "start_driving", "driving")
      .transition("driving", "stop_driving", "parking_with_driver")
      .transition("parking_with_driver", "driver_left",
                  "parking_without_driver")
      .transition("parking_without_driver", "driver_returned",
                  "parking_with_driver")
      .transition("driving", "crash_detected", "emergency")
      .transition("parking_with_driver", "crash_detected", "emergency")
      .transition("emergency", "emergency_cleared", "parking_with_driver");
  return b.build();
}

TEST(Ssm, BuildsAndStartsAtInitial) {
  auto ssm = SituationStateMachine::build(fig2_policy());
  ASSERT_TRUE(ssm.ok());
  EXPECT_EQ(ssm->current_name(), "parking_with_driver");
  EXPECT_EQ(ssm->current_encoding(), 0);
  EXPECT_EQ(ssm->state_count(), 4u);
  EXPECT_EQ(ssm->event_count(), 6u);
}

TEST(Ssm, TransitionsFollowRules) {
  auto ssm = *SituationStateMachine::build(fig2_policy());
  auto o1 = ssm.deliver("start_driving");
  ASSERT_TRUE(o1.ok());
  EXPECT_TRUE(o1->transitioned);
  EXPECT_EQ(ssm.current_name(), "driving");

  auto o2 = ssm.deliver("crash_detected");
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(ssm.current_name(), "emergency");
  EXPECT_EQ(ssm.current_encoding(), 3);

  auto o3 = ssm.deliver("emergency_cleared");
  ASSERT_TRUE(o3.ok());
  EXPECT_EQ(ssm.current_name(), "parking_with_driver");
}

TEST(Ssm, NonMatchingEventIsAcceptedButNoTransition) {
  auto ssm = *SituationStateMachine::build(fig2_policy());
  // stop_driving doesn't apply while parked.
  auto o = ssm.deliver("stop_driving");
  ASSERT_TRUE(o.ok());
  EXPECT_FALSE(o->transitioned);
  EXPECT_EQ(o->from, o->to);
  EXPECT_EQ(ssm.current_name(), "parking_with_driver");
}

TEST(Ssm, UnknownEventIsEinval) {
  auto ssm = *SituationStateMachine::build(fig2_policy());
  EXPECT_EQ(ssm.deliver("martian_invasion").error(), Errno::einval);
}

TEST(Ssm, StatisticsCount) {
  auto ssm = *SituationStateMachine::build(fig2_policy());
  (void)ssm.deliver("start_driving");   // transition
  (void)ssm.deliver("start_driving");   // no match from driving
  (void)ssm.deliver("stop_driving");    // transition
  EXPECT_EQ(ssm.events_delivered(), 3u);
  EXPECT_EQ(ssm.transitions_taken(), 2u);
}

TEST(Ssm, ResetReturnsToInitial) {
  auto ssm = *SituationStateMachine::build(fig2_policy());
  (void)ssm.deliver("start_driving");
  ssm.reset();
  EXPECT_EQ(ssm.current_name(), "parking_with_driver");
  EXPECT_EQ(ssm.events_delivered(), 0u);
}

TEST(Ssm, BuildRejectsBrokenPolicies) {
  SackPolicy empty;
  EXPECT_FALSE(SituationStateMachine::build(empty).ok());

  PolicyBuilder nondet;
  nondet.state("a", 0).state("b", 1).state("c", 2).initial("a");
  nondet.transition("a", "e", "b").transition("a", "e", "c");
  EXPECT_FALSE(SituationStateMachine::build(nondet.build()).ok());

  PolicyBuilder bad_initial;
  bad_initial.state("a", 0).initial("ghost");
  EXPECT_FALSE(SituationStateMachine::build(bad_initial.build()).ok());
}

TEST(Ssm, SelfLoopDoesNotCountAsTransition) {
  PolicyBuilder b;
  b.state("a", 0).initial("a").transition("a", "ping", "a");
  auto ssm = *SituationStateMachine::build(b.build());
  auto o = ssm.deliver("ping");
  ASSERT_TRUE(o.ok());
  EXPECT_FALSE(o->transitioned);
  EXPECT_EQ(ssm.transitions_taken(), 0u);
}

TEST(Ssm, InternedIdsRoundTrip) {
  auto ssm = *SituationStateMachine::build(fig2_policy());
  auto sid = ssm.state_id("driving");
  ASSERT_TRUE(sid.ok());
  EXPECT_EQ(ssm.state_name(*sid), "driving");
  EXPECT_EQ(ssm.encoding(*sid), 2);
  auto eid = ssm.event_id("crash_detected");
  ASSERT_TRUE(eid.ok());
  EXPECT_EQ(ssm.event_name(*eid), "crash_detected");
  EXPECT_FALSE(ssm.state_id("nope").ok());
}

TEST(Ssm, StaleEventIdAfterReloadIsIgnored) {
  // Regression: deliver(EventId) indexed the transition table without a
  // bounds check, so an id interned against a *previous* policy (an SDS or
  // bench caching ids across a reload) read out of range. A stale id must
  // be dropped — counted, never transitioned on.
  auto big = *SituationStateMachine::build(fig2_policy());
  EventId stale = *big.event_id("emergency_cleared");  // id 5 of 6

  PolicyBuilder b;
  b.state("a", 0).state("b", 1).initial("a").transition("a", "ping", "b");
  auto small = *SituationStateMachine::build(b.build());
  ASSERT_LT(small.event_count(), big.event_count());
  ASSERT_GE(static_cast<std::size_t>(stale.get()), small.event_count());

  auto out = small.deliver(stale);
  EXPECT_FALSE(out.transitioned);
  EXPECT_EQ(out.from, small.current());
  EXPECT_EQ(out.to, small.current());
  EXPECT_EQ(small.events_invalid(), 1u);
  EXPECT_EQ(small.events_delivered(), 0u);
  EXPECT_EQ(small.transitions_taken(), 0u);
  EXPECT_EQ(small.current_name(), "a");

  // A valid pre-interned id still works after the rejection.
  auto good = small.deliver(*small.event_id("ping"));
  EXPECT_TRUE(good.transitioned);
  EXPECT_EQ(small.events_invalid(), 1u);
}

// Property: in a ring SSM, delivering "advance" k times lands on state k % n,
// for any n — the deterministic-model check used by Fig 3(a)'s policies.
class SsmRingProperty : public ::testing::TestWithParam<int> {};

TEST_P(SsmRingProperty, AdvanceWalksTheRing) {
  int n = GetParam();
  auto policy = simbench::sack_policy_with_states(n);
  auto ssm = *SituationStateMachine::build(policy);
  Rng rng(static_cast<std::uint64_t>(n));
  int expected = 0;
  for (int step = 0; step < 200; ++step) {
    int hops = static_cast<int>(rng.below(5)) + 1;
    for (int h = 0; h < hops; ++h) (void)ssm.deliver("advance");
    expected = (expected + hops) % n;
    EXPECT_EQ(ssm.current_name(), "s" + std::to_string(expected));
    EXPECT_EQ(ssm.current_encoding(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, SsmRingProperty,
                         ::testing::Values(2, 3, 10, 50, 100));

}  // namespace
}  // namespace sack::core
