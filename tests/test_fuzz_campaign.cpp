// Chaos-suite entry: a real (if short) coverage-guided campaign with the
// hostile racer armed, seeded from the checked-in corpus. Any mediation
// violation, kernel abort, or sanitizer report fails the suite.
#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"
#include "util/log.h"

namespace sack::fuzz {
namespace {

TEST(FuzzChaosCampaign, SeededCampaignFindsNoViolations) {
  Logger::instance().set_level(LogLevel::off);

  FuzzConfig config;
  config.seed = 0xC4A05;
  config.max_execs = 1500;
  config.plateau_execs = 1500;  // spend the whole budget
  config.corpus_dir = SACK_SOURCE_DIR "/tests/fixtures/fuzz/corpus";
  Fuzzer fuzzer(
      config, load_manifest_or_die(SACK_SOURCE_DIR "/docs/hook_manifest.toml"));
  fuzzer.run();

  Logger::instance().set_level(LogLevel::warn);

  EXPECT_EQ(fuzzer.stats().execs, 1500u);
  EXPECT_GT(fuzzer.stats().coverage_keys, 150u);
  for (const Finding& f : fuzzer.findings()) {
    ADD_FAILURE() << f.violations.front().rule << " in "
                  << f.violations.front().syscall << ": "
                  << f.violations.front().detail << "\nreproducer:\n"
                  << f.program.to_text();
  }
}

}  // namespace
}  // namespace sack::fuzz
