// AppArmor-like module: parser, matcher, confinement, runtime patching.
#include <gtest/gtest.h>

#include "apparmor/apparmor.h"
#include "apparmor/parser.h"
#include "kernel/process.h"

namespace sack::apparmor {
namespace {

using kernel::Capability;
using kernel::Cred;
using kernel::Fd;
using kernel::Kernel;
using kernel::OpenFlags;
using kernel::Process;
using kernel::SockFamily;
using kernel::SockType;
using kernel::Task;

// --- parser ---

TEST(AaParser, ParsesFullProfile) {
  auto result = parse_profiles(R"(
# media player
profile media /usr/bin/media_app flags=(complain) {
  /var/media/** r,
  deny /etc/shadow rwx,
  /dev/vehicle/audio rwi,
  capability net_bind_service,
  network inet stream,
}
)");
  ASSERT_TRUE(result.ok()) << (result.errors.empty()
                                   ? ""
                                   : result.errors[0].to_string());
  ASSERT_EQ(result.profiles.size(), 1u);
  const Profile& p = result.profiles[0];
  EXPECT_EQ(p.name, "media");
  ASSERT_TRUE(p.attachment.has_value());
  EXPECT_TRUE(p.attachment->matches("/usr/bin/media_app"));
  EXPECT_EQ(p.mode, ProfileMode::complain);
  ASSERT_EQ(p.rules.size(), 3u);
  EXPECT_FALSE(p.rules[0].deny);
  EXPECT_TRUE(p.rules[1].deny);
  EXPECT_TRUE(has_all(p.rules[2].perms, FilePerm::ioctl));
  EXPECT_TRUE(p.caps.has(Capability::net_bind_service));
  EXPECT_TRUE(p.net_families.contains(SockFamily::inet));
}

TEST(AaParser, PathNamedProfileAttachesByName) {
  auto result = parse_profiles("/usr/bin/tool { /tmp/** rw, }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.profiles[0].name, "/usr/bin/tool");
  EXPECT_TRUE(result.profiles[0].attachment->matches("/usr/bin/tool"));
}

TEST(AaParser, MultipleProfilesInOneDocument) {
  auto result = parse_profiles(R"(
profile a /bin/a { /x r, }
profile b /bin/b { /y w, }
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.profiles.size(), 2u);
}

TEST(AaParser, CollectsErrorsAndContinues) {
  auto result = parse_profiles(R"(
profile a /bin/a {
  /x q,
  /y r,
}
)");
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.profiles.size(), 1u);
  // The good rule survived.
  EXPECT_EQ(result.profiles[0].rules.size(), 1u);
}

TEST(AaParser, RejectsWriteAppendCombo) {
  auto result = parse_profiles("profile a /b { /x wa, }");
  EXPECT_FALSE(result.ok());
}

TEST(AaParser, RoundTripThroughToText) {
  auto result = parse_profiles(R"(
profile media /usr/bin/media_app {
  /var/media/** r,
  deny /etc/shadow r,
  capability chown,
  network unix,
}
)");
  ASSERT_TRUE(result.ok());
  auto again = parse_profiles(result.profiles[0].to_text());
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.profiles.size(), 1u);
  EXPECT_EQ(again.profiles[0].name, "media");
  EXPECT_EQ(again.profiles[0].rules.size(), 2u);
  EXPECT_TRUE(again.profiles[0].caps.has(Capability::chown));
}

// --- matcher ---

TEST(AaMatcher, DenyHasPrecedence) {
  auto result = parse_profiles(R"(
profile p /bin/p {
  /data/** rw,
  deny /data/secret/** w,
}
)");
  ASSERT_TRUE(result.ok());
  ProfileMatcher m(result.profiles[0]);
  EXPECT_EQ(m.check("/data/a", FilePerm::write), Errno::ok);
  EXPECT_EQ(m.check("/data/secret/key", FilePerm::read), Errno::ok);
  EXPECT_EQ(m.check("/data/secret/key", FilePerm::write), Errno::eacces);
}

TEST(AaMatcher, PermsAccumulateAcrossRules) {
  auto result = parse_profiles(R"(
profile p /bin/p {
  /f r,
  /f w,
}
)");
  ASSERT_TRUE(result.ok());
  ProfileMatcher m(result.profiles[0]);
  EXPECT_EQ(m.check("/f", FilePerm::read | FilePerm::write), Errno::ok);
}

TEST(AaMatcher, WriteImpliesAppend) {
  auto result = parse_profiles("profile p /bin/p { /log w, }");
  ASSERT_TRUE(result.ok());
  ProfileMatcher m(result.profiles[0]);
  EXPECT_EQ(m.check("/log", FilePerm::append), Errno::ok);
}

TEST(AaMatcher, UnmatchedPathDenied) {
  auto result = parse_profiles("profile p /bin/p { /a r, }");
  ASSERT_TRUE(result.ok());
  ProfileMatcher m(result.profiles[0]);
  EXPECT_EQ(m.check("/b", FilePerm::read), Errno::eacces);
}

// --- module behaviour in the kernel ---

class AaModuleTest : public ::testing::Test {
 protected:
  AaModuleTest() {
    aa_ = static_cast<AppArmorModule*>(
        kernel_.add_lsm(std::make_unique<AppArmorModule>()));
    kernel_.vfs().mkdir_p("/data");
    kernel_.vfs().mkdir_p("/scratch");
    Process admin(kernel_, kernel_.init_task());
    EXPECT_TRUE(admin.write_file("/usr/bin/confined", "ELF").ok());
    EXPECT_TRUE(
        kernel_.sys_chmod(kernel_.init_task(), "/usr/bin/confined", 0755)
            .ok());
    EXPECT_TRUE(admin.write_file("/data/allowed.txt", "ok").ok());
    EXPECT_TRUE(admin.write_file("/data/other.txt", "no").ok());
    EXPECT_TRUE(aa_->load_policy_text(R"(
profile confined /usr/bin/confined {
  /data/allowed.txt r,
  /scratch/** rwx,
  /scratch rw,
}
)")
                    .ok());
  }

  Task& confined() {
    if (!task_) {
      task_ = &kernel_.spawn_task("confined", Cred::root(),
                                  "/usr/bin/confined");
    }
    return *task_;
  }

  Kernel kernel_;
  AppArmorModule* aa_ = nullptr;
  Task* task_ = nullptr;
};

TEST_F(AaModuleTest, AttachmentOnSpawn) {
  EXPECT_EQ(aa_->profile_of(confined()), "confined");
}

TEST_F(AaModuleTest, UnconfinedTaskUnrestricted) {
  Process p(kernel_, kernel_.init_task());
  EXPECT_TRUE(p.read_file("/data/other.txt").ok());
}

TEST_F(AaModuleTest, ConfinedTaskDenyByDefault) {
  Process p(kernel_, confined());
  EXPECT_TRUE(p.read_file("/data/allowed.txt").ok());
  EXPECT_EQ(p.open("/data/other.txt", OpenFlags::read).error(),
            Errno::eacces);
  EXPECT_EQ(aa_->denial_count(), 1u);
}

TEST_F(AaModuleTest, ConfinementInheritedAcrossFork) {
  Pid child_pid = *kernel_.sys_fork(confined());
  Task& child = kernel_.task(child_pid).value();
  EXPECT_EQ(aa_->profile_of(child), "confined");
  Process p(kernel_, child);
  EXPECT_EQ(p.open("/data/other.txt", OpenFlags::read).error(),
            Errno::eacces);
}

TEST_F(AaModuleTest, DomainTransitionOnExec) {
  // confined's profile has /scratch/** rwx but exec of an unprofiled binary
  // needs x on its path, which the profile lacks -> denied.
  Process admin(kernel_, kernel_.init_task());
  ASSERT_TRUE(admin.write_file("/usr/bin/other", "ELF").ok());
  ASSERT_TRUE(
      kernel_.sys_chmod(kernel_.init_task(), "/usr/bin/other", 0755).ok());
  EXPECT_EQ(kernel_.sys_execve(confined(), "/usr/bin/other").error(),
            Errno::eacces);

  // An unconfined task execing the profiled binary becomes confined.
  Task& fresh = kernel_.spawn_task("sh", Cred::root(), "/bin/sh");
  EXPECT_EQ(aa_->profile_of(fresh), "");
  ASSERT_TRUE(kernel_.sys_execve(fresh, "/usr/bin/confined").ok());
  EXPECT_EQ(aa_->profile_of(fresh), "confined");
}

TEST_F(AaModuleTest, CreateUnlinkMediatedByWritePerm) {
  Process p(kernel_, confined());
  kernel_.vfs().mkdir_p("/scratch");
  EXPECT_TRUE(p.write_file("/scratch/f", "x").ok());
  EXPECT_TRUE(p.unlink("/scratch/f").ok());
  EXPECT_EQ(p.write_file("/data/new.txt", "x").error(), Errno::eacces);
}

TEST(AaExecTransition, ExplicitTransitionOverridesAttachment) {
  Kernel kernel;
  auto* aa = static_cast<AppArmorModule*>(
      kernel.add_lsm(std::make_unique<AppArmorModule>()));
  Process admin(kernel, kernel.init_task());
  ASSERT_TRUE(admin.write_file("/usr/bin/launcher", "ELF").ok());
  ASSERT_TRUE(admin.write_file("/usr/bin/helper", "ELF").ok());
  for (auto* bin : {"/usr/bin/launcher", "/usr/bin/helper"})
    ASSERT_TRUE(kernel.sys_chmod(kernel.init_task(), bin, 0755).ok());

  ASSERT_TRUE(aa->load_policy_text(R"(
profile launcher /usr/bin/launcher {
  /usr/bin/helper rx -> helper_sandbox,
}
profile helper /usr/bin/helper {
  /etc/** r,
}
profile helper_sandbox {
  /tmp/** rw,
}
)")
                  .ok());

  // From the launcher profile the explicit transition wins over the
  // attachment-matched "helper" profile.
  Task& t = kernel.spawn_task("launcher", Cred::root(), "/usr/bin/launcher");
  ASSERT_EQ(aa->profile_of(t), "launcher");
  ASSERT_TRUE(kernel.sys_execve(t, "/usr/bin/helper").ok());
  EXPECT_EQ(aa->profile_of(t), "helper_sandbox");

  // From anywhere else, attachment matching still applies.
  Task& other = kernel.spawn_task("sh", Cred::root(), "/bin/sh");
  ASSERT_TRUE(kernel.sys_execve(other, "/usr/bin/helper").ok());
  EXPECT_EQ(aa->profile_of(other), "helper");
}

TEST(AaExecTransition, MissingTargetFailsExec) {
  Kernel kernel;
  auto* aa = static_cast<AppArmorModule*>(
      kernel.add_lsm(std::make_unique<AppArmorModule>()));
  Process admin(kernel, kernel.init_task());
  ASSERT_TRUE(admin.write_file("/usr/bin/launcher", "ELF").ok());
  ASSERT_TRUE(admin.write_file("/usr/bin/helper", "ELF").ok());
  for (auto* bin : {"/usr/bin/launcher", "/usr/bin/helper"})
    ASSERT_TRUE(kernel.sys_chmod(kernel.init_task(), bin, 0755).ok());
  ASSERT_TRUE(aa->load_policy_text(R"(
profile launcher /usr/bin/launcher {
  /usr/bin/helper rx -> ghost_profile,
}
)")
                  .ok());
  Task& t = kernel.spawn_task("launcher", Cred::root(), "/usr/bin/launcher");
  EXPECT_EQ(kernel.sys_execve(t, "/usr/bin/helper").error(), Errno::eacces);
  EXPECT_EQ(aa->profile_of(t), "launcher");  // unchanged
}

TEST(AaExecTransition, ParserRejectsTransitionWithoutExec) {
  EXPECT_FALSE(parse_profiles(
                   "profile a /bin/a { /bin/b r -> target, }")
                   .ok());
  EXPECT_FALSE(parse_profiles(
                   "profile a /bin/a { deny /bin/b rx -> target, }")
                   .ok());
}

TEST(AaExecTransition, RoundTripsThroughText) {
  auto parsed = parse_profiles(
      "profile a /bin/a { /bin/b rx -> sandbox, }");
  ASSERT_TRUE(parsed.ok());
  auto again = parse_profiles(parsed.profiles[0].to_text());
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.profiles[0].exec_transitions.size(), 1u);
  EXPECT_EQ(again.profiles[0].exec_transitions[0].target, "sandbox");
}

TEST_F(AaModuleTest, HardLinkNeedsLinkPermission) {
  Process admin(kernel_, kernel_.init_task());
  // The confined profile can read /data/allowed.txt but has no 'l' anywhere:
  // linking it into /scratch must fail despite rwx there ('x' != 'l').
  EXPECT_EQ(kernel_.sys_link(confined(), "/data/allowed.txt",
                             "/scratch/alias")
                .error(),
            Errno::eacces);
  Profile p = *aa_->find_profile("confined");
  FileRule rule;
  rule.pattern = *Glob::compile("/scratch/**");
  rule.perms = FilePerm::link;
  p.rules.push_back(std::move(rule));
  ASSERT_TRUE(aa_->replace_profile(std::move(p)).ok());
  EXPECT_TRUE(
      kernel_.sys_link(confined(), "/data/allowed.txt", "/scratch/alias")
          .ok());
}

TEST_F(AaModuleTest, CapabilityRulesGateCapable) {
  EXPECT_EQ(kernel_.capable(confined(), Capability::sys_admin), Errno::eperm);
  Profile p = *aa_->find_profile("confined");
  p.caps.add(Capability::sys_admin);
  ASSERT_TRUE(aa_->replace_profile(std::move(p)).ok());
  EXPECT_EQ(kernel_.capable(confined(), Capability::sys_admin), Errno::ok);
}

TEST_F(AaModuleTest, NetworkRulesGateSocketCreate) {
  EXPECT_EQ(kernel_.sys_socket(confined(), SockFamily::inet,
                               SockType::stream)
                .error(),
            Errno::eacces);
  Profile p = *aa_->find_profile("confined");
  p.net_families.insert(SockFamily::inet);
  ASSERT_TRUE(aa_->replace_profile(std::move(p)).ok());
  EXPECT_TRUE(
      kernel_.sys_socket(confined(), SockFamily::inet, SockType::stream)
          .ok());
}

TEST_F(AaModuleTest, ComplainModeLogsButAllows) {
  Profile p = *aa_->find_profile("confined");
  p.mode = ProfileMode::complain;
  ASSERT_TRUE(aa_->replace_profile(std::move(p)).ok());
  Process proc(kernel_, confined());
  EXPECT_TRUE(proc.read_file("/data/other.txt").ok());
  EXPECT_GT(aa_->denial_count(), 0u);  // still recorded
}

TEST_F(AaModuleTest, InjectAndRetractRulesByOrigin) {
  Process p(kernel_, confined());
  EXPECT_EQ(p.open("/data/other.txt", OpenFlags::read).error(),
            Errno::eacces);

  auto glob = Glob::compile("/data/other.txt");
  std::vector<FileRule> rules;
  rules.push_back({std::move(glob).value(), FilePerm::read, false,
                   "sack:TEST_PERM"});
  ASSERT_TRUE(aa_->inject_rules("confined", std::move(rules)).ok());
  EXPECT_TRUE(p.read_file("/data/other.txt").ok());

  EXPECT_EQ(aa_->remove_rules_by_origin("sack:TEST_PERM"), 1u);
  EXPECT_EQ(p.open("/data/other.txt", OpenFlags::read).error(),
            Errno::eacces);
  EXPECT_EQ(aa_->remove_rules_by_origin("sack:TEST_PERM"), 0u);
}

TEST_F(AaModuleTest, GenerationBumpsInvalidateOpenFileCache) {
  Process p(kernel_, confined());
  Fd fd = *p.open("/data/allowed.txt", OpenFlags::read);
  std::string out;
  EXPECT_TRUE(p.read(fd, out, 2).ok());

  // Replace the profile with one that no longer allows the file: the open fd
  // must stop working (adaptive revocation through file_permission).
  Profile replacement;
  replacement.name = "confined";
  replacement.attachment = *Glob::compile("/usr/bin/confined");
  ASSERT_TRUE(aa_->replace_profile(std::move(replacement)).ok());
  EXPECT_EQ(p.read(fd, out, 2).error(), Errno::eacces);
}

TEST_F(AaModuleTest, SecurityfsLoadInterface) {
  Process admin(kernel_, kernel_.init_task());
  ASSERT_TRUE(admin
                  .write_existing("/sys/kernel/security/apparmor/.load",
                                  "profile extra /usr/bin/extra { /e r, }")
                  .ok());
  EXPECT_NE(aa_->find_profile("extra"), nullptr);

  auto listing = admin.read_file("/sys/kernel/security/apparmor/profiles");
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(listing->find("extra (enforce)"), std::string::npos);

  ASSERT_TRUE(
      admin.write_existing("/sys/kernel/security/apparmor/.remove", "extra")
          .ok());
  EXPECT_EQ(aa_->find_profile("extra"), nullptr);
}

TEST_F(AaModuleTest, SecurityfsLoadRequiresMacAdmin) {
  Task& user = kernel_.spawn_task("user", Cred::user(1000, 1000));
  user.cred().caps.add(Capability::dac_override);  // get past DAC 0200
  Process up(kernel_, user);
  EXPECT_EQ(up.write_existing("/sys/kernel/security/apparmor/.load",
                              "profile x /x { /y r, }")
                .error(),
            Errno::eperm);
}

TEST_F(AaModuleTest, RemovingProfileUnconfinesFutureChecks) {
  Process p(kernel_, confined());
  EXPECT_EQ(p.open("/data/other.txt", OpenFlags::read).error(),
            Errno::eacces);
  ASSERT_TRUE(aa_->remove_profile("confined").ok());
  // Blob still names "confined" but the profile is gone -> unconfined.
  EXPECT_TRUE(p.read_file("/data/other.txt").ok());
}

}  // namespace
}  // namespace sack::apparmor
