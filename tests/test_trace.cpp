// Observability: trace ring semantics, SACKfs metrics/trace files, the
// runtime toggle's zero-cost-when-off contract, and TSan-checked concurrent
// enforcement + scraping.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/sack_module.h"
#include "core/trace.h"
#include "kernel/process.h"

namespace sack::core {
namespace {

using kernel::Cred;
using kernel::Kernel;
using kernel::OpenFlags;
using kernel::Process;
using kernel::Task;

TraceRecord rec(std::uint64_t latency) {
  TraceRecord r;
  r.hook = TraceHook::check_op;
  r.op = MacOp::read;
  r.latency_ns = latency;
  return r;
}

TEST(TraceRing, AppendsAndSnapshotsInOrder) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.append(rec(i));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  auto snap = ring.snapshot(100);
  ASSERT_EQ(snap.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(snap[i].seq, i);
    EXPECT_EQ(snap[i].latency_ns, i);
  }
  // last-N read.
  auto tail = ring.snapshot(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 3u);
  EXPECT_EQ(tail[1].seq, 4u);
}

TEST(TraceRing, WraparoundDropsOldestAndCounts) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.append(rec(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  auto snap = ring.snapshot(100);
  ASSERT_EQ(snap.size(), 4u);
  // The oldest surviving record is #6; order is preserved across the wrap.
  EXPECT_EQ(snap.front().seq, 6u);
  EXPECT_EQ(snap.back().seq, 9u);
}

TEST(TraceRing, ClearEmptiesButKeepsLossCounters) {
  TraceRing ring(2);
  for (int i = 0; i < 5; ++i) ring.append(rec(1));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot(10).empty());
  EXPECT_EQ(ring.recorded(), 5u);  // monotonic: loss stays visible
}

TEST(TraceRing, RecordLineFormat) {
  TraceRecord r;
  r.hook = TraceHook::check_op;
  r.op = MacOp::write;
  r.verdict = Errno::eacces;
  r.avc_hit = true;
  r.state_encoding = 3;
  r.subject = "/usr/bin/app";
  r.object = "/dev/door";
  r.latency_ns = 77;
  const std::string line = r.to_line();
  EXPECT_NE(line.find("hook=check_op"), std::string::npos);
  EXPECT_NE(line.find("op=write"), std::string::npos);
  EXPECT_NE(line.find("avc=hit"), std::string::npos);
  EXPECT_NE(line.find("verdict=EACCES"), std::string::npos);
  EXPECT_NE(line.find("state=3"), std::string::npos);
  EXPECT_NE(line.find("latency_ns=77"), std::string::npos);
}

// --- SackModule integration ---

constexpr std::string_view kPolicy = R"(
states { normal = 0; emergency = 1; }
initial normal;
transitions {
  normal -> emergency on crash_detected;
  emergency -> normal on emergency_cleared;
}
permissions { MEDIA_READ; DOOR_CONTROL; }
state_per {
  normal: MEDIA_READ;
  emergency: MEDIA_READ, DOOR_CONTROL;
}
per_rules {
  MEDIA_READ { allow * /var/media/** read getattr; }
  DOOR_CONTROL { allow /usr/bin/rescue /dev/door write ioctl; }
}
)";

class TraceObservabilityTest : public ::testing::Test {
 protected:
  TraceObservabilityTest() {
    sack_ = static_cast<SackModule*>(kernel_.add_lsm(
        std::make_unique<SackModule>(SackMode::independent)));
    kernel_.vfs().mkdir_p("/var/media");
    Process admin(kernel_, kernel_.init_task());
    EXPECT_TRUE(admin.write_file("/var/media/track.pcm", "DATA").ok());
    EXPECT_TRUE(admin.write_file("/dev/door", "").ok());
    EXPECT_TRUE(admin.write_file("/usr/bin/app", "ELF").ok());
    EXPECT_TRUE(sack_->load_policy_text(kPolicy).ok());
  }

  Process admin() { return {kernel_, kernel_.init_task()}; }

  Kernel kernel_;
  SackModule* sack_ = nullptr;
};

TEST_F(TraceObservabilityTest, DisabledByDefaultAndCollectsNothing) {
  EXPECT_FALSE(sack_->observing());
  auto p = admin();
  EXPECT_TRUE(p.read_file("/var/media/track.pcm").ok());
  EXPECT_EQ(sack_->trace_ring().recorded(), 0u);
  auto metrics = p.read_file("/sys/kernel/security/SACK/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("observe: off"), std::string::npos);
  EXPECT_NE(metrics->find("hook_total_ns: count=0"), std::string::npos);
}

TEST_F(TraceObservabilityTest, ToggleViaSackfsCollectsHookLatencies) {
  auto p = admin();
  ASSERT_TRUE(
      p.write_existing("/sys/kernel/security/SACK/trace_enable", "1").ok());
  EXPECT_TRUE(sack_->observing());

  for (int i = 0; i < 32; ++i)
    EXPECT_TRUE(p.read_file("/var/media/track.pcm").ok());
  ASSERT_TRUE(p.write_existing("/sys/kernel/security/SACK/events",
                               "crash_detected\n")
                  .ok());

  auto metrics = p.read_file("/sys/kernel/security/SACK/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("observe: on"), std::string::npos);
  // Non-zero hook latency percentiles and AVC traffic after real hooks ran.
  EXPECT_EQ(metrics->find("hook_total_ns: count=0"), std::string::npos);
  EXPECT_NE(metrics->find("avc_hits:"), std::string::npos);
  EXPECT_NE(metrics->find("event_to_enforce_ns: count="),
            std::string::npos);
  EXPECT_NE(metrics->find("state_occupancy:"), std::string::npos);
  EXPECT_GT(sack_->trace_ring().recorded(), 0u);

  auto trace = p.read_file("/sys/kernel/security/SACK/trace");
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace->find("hook=check_op"), std::string::npos);
  EXPECT_NE(trace->find("hook=transition"), std::string::npos);
  EXPECT_NE(trace->find("hook=event"), std::string::npos);
  EXPECT_NE(trace->find("hook=apply_state"), std::string::npos);

  // JSON mirror carries the same per-stage percentiles.
  const std::string json = sack_->metrics_json();
  EXPECT_NE(json.find("\"hook_total_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"avc_probe_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"matcher_walk_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"event_to_enforce_ns\""), std::string::npos);

  // Toggle off: collection stops, data stays readable.
  ASSERT_TRUE(
      p.write_existing("/sys/kernel/security/SACK/trace_enable", "0").ok());
  const auto recorded = sack_->trace_ring().recorded();
  EXPECT_TRUE(p.read_file("/var/media/track.pcm").ok());
  EXPECT_EQ(sack_->trace_ring().recorded(), recorded);

  // "clear" resets histograms and the ring.
  ASSERT_TRUE(p.write_existing("/sys/kernel/security/SACK/trace_enable",
                               "clear")
                  .ok());
  metrics = p.read_file("/sys/kernel/security/SACK/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("hook_total_ns: count=0"), std::string::npos);
}

TEST_F(TraceObservabilityTest, TraceRecordsCarryDecisionContext) {
  sack_->set_observe(true);
  Task& app = kernel_.spawn_task("app", Cred::root(), "/usr/bin/app");
  Process p(kernel_, app);
  // Denied op: /dev/door is guarded, DOOR_CONTROL inactive in 'normal'.
  EXPECT_FALSE(p.open("/dev/door", OpenFlags::write).ok());
  auto snap = sack_->trace_ring().snapshot(4);
  ASSERT_FALSE(snap.empty());
  bool saw_denial = false;
  for (const auto& r : snap) {
    if (r.hook == TraceHook::check_op && r.verdict == Errno::eacces) {
      saw_denial = true;
      EXPECT_EQ(r.subject, "/usr/bin/app");
      EXPECT_EQ(r.object, "/dev/door");
      EXPECT_EQ(r.state_encoding, 0);
      EXPECT_EQ(r.pid, app.pid().get());
    }
  }
  EXPECT_TRUE(saw_denial);
}

TEST_F(TraceObservabilityTest, BatchCheckOpsTracesEveryQuery) {
  // The batch API mirrors check_op's observability shape: one trace record
  // per query (with per-query verdict and AVC hit flag), not one per batch.
  Task& app = kernel_.spawn_task("app", Cred::root(), "/usr/bin/app");
  sack_->set_observe(true);
  std::vector<AccessQuery> queries(2);
  queries[0].object_path = "/var/media/track.pcm";
  queries[0].op = MacOp::read;
  queries[1].object_path = "/dev/door";
  queries[1].op = MacOp::write;
  std::vector<Errno> verdicts(queries.size());

  sack_->check_ops(app, queries, verdicts);
  EXPECT_EQ(verdicts[0], Errno::ok);
  EXPECT_EQ(verdicts[1], Errno::eacces);  // guarded, inactive in 'normal'
  ASSERT_EQ(sack_->trace_ring().recorded(), 2u);
  auto snap = sack_->trace_ring().snapshot(2);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].object, "/var/media/track.pcm");
  EXPECT_EQ(snap[0].verdict, Errno::ok);
  EXPECT_FALSE(snap[0].avc_hit);
  EXPECT_EQ(snap[1].object, "/dev/door");
  EXPECT_EQ(snap[1].verdict, Errno::eacces);
  EXPECT_FALSE(snap[1].avc_hit);
  EXPECT_EQ(snap[1].subject, "/usr/bin/app");
  EXPECT_EQ(snap[1].pid, app.pid().get());
  EXPECT_EQ(sack_->denial_count(), 1u);  // denials audit per occurrence

  // Second round: both verdicts now come from the AVC; still one record
  // each, flagged as hits, and the denial audits again.
  sack_->check_ops(app, queries, verdicts);
  EXPECT_EQ(verdicts[1], Errno::eacces);
  ASSERT_EQ(sack_->trace_ring().recorded(), 4u);
  snap = sack_->trace_ring().snapshot(2);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_TRUE(snap[0].avc_hit);
  EXPECT_TRUE(snap[1].avc_hit);
  EXPECT_EQ(sack_->denial_count(), 2u);
}

TEST_F(TraceObservabilityTest, UnprivilegedCannotToggle) {
  Task& user = kernel_.spawn_task("user", Cred::user(1000, 1000));
  Process up(kernel_, user);
  EXPECT_FALSE(
      up.write_existing("/sys/kernel/security/SACK/trace_enable", "1").ok());
  EXPECT_FALSE(sack_->observing());
}

// Concurrent enforcement + scrape + toggling: run under TSan in CI. Worker
// threads drive the public hook surface on distinct tasks while the main
// thread scrapes metrics/trace and flips the toggle — the hot path and the
// scrape path must share only atomics and the ring mutex.
TEST(TraceMt, ConcurrentCheckOpAndMetricsScrape) {
  Kernel kernel;
  auto* sack = static_cast<SackModule*>(
      kernel.add_lsm(std::make_unique<SackModule>(SackMode::independent)));
  kernel.vfs().mkdir_p("/var/media");
  Process admin(kernel, kernel.init_task());
  ASSERT_TRUE(admin.write_file("/var/media/track.pcm", "DATA").ok());
  ASSERT_TRUE(sack->load_policy_text(kPolicy).ok());
  sack->set_observe(true);

  constexpr int kThreads = 4;
  std::vector<Task*> tasks;
  for (int t = 0; t < kThreads; ++t)
    tasks.push_back(&kernel.spawn_task("worker" + std::to_string(t),
                                       Cred::root(), "/usr/bin/worker"));

  constexpr int kOpsPerThread = 4000;
  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Allowed paths only: denials would route into the (single-threaded)
      // audit log, which is not part of the lock-cheap hot path.
      const std::string guarded = "/var/media/track.pcm";
      const std::string unguarded = "/tmp/scratch_" + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        EXPECT_EQ(sack->inode_getattr(*tasks[t], guarded), Errno::ok);
        EXPECT_EQ(sack->inode_getattr(*tasks[t], unguarded), Errno::ok);
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Scrape (and flap the toggle) for as long as the workers are running.
  int round = 0;
  while (done.load(std::memory_order_relaxed) < kThreads) {
    (void)sack->metrics_text();
    (void)sack->metrics_json();
    (void)sack->trace_ring().snapshot(64);
    sack->set_observe(++round % 4 != 0);  // mostly on, sometimes off
  }
  sack->set_observe(true);
  for (auto& w : workers) w.join();
  // One final traced op so recorded() is non-zero regardless of how the
  // toggle flapping interleaved with the workers.
  EXPECT_EQ(sack->inode_getattr(*tasks[0], "/var/media/track.pcm"),
            Errno::ok);

  EXPECT_GT(sack->trace_ring().recorded(), 0u);
  const auto& h = sack->avc().stats();
  EXPECT_GT(h.hits + h.misses, 0u);
}

}  // namespace
}  // namespace sack::core
