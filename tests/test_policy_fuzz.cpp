// Deterministic corpus-driven fuzz over the policy parser and its consumers.
//
// The corpus is the set of shipped policies (plus the verification fixtures);
// each round applies seeded byte- and token-level mutations and feeds the
// result through the full pipeline a hostile securityfs write would reach:
// parse -> check -> canonical dump -> re-parse, and, when the mutant still
// parses, SSM construction and rule-set compilation. Nothing may crash,
// abort, or trip ASan/UBSan — errors must come back as ParseError /
// Diagnostic values. Runs under the `chaos` ctest label so CI executes it
// sanitized.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy_checker.h"
#include "core/policy_parser.h"
#include "core/ruleset.h"
#include "core/ssm.h"
#include "util/rng.h"

#ifndef SACK_POLICY_DIR
#define SACK_POLICY_DIR "policies"
#endif

namespace sack::core {
namespace {

std::vector<std::string> load_corpus() {
  std::vector<std::string> corpus;
  for (const char* name :
       {"cav_default.sack", "speed_gate.sack", "emergency_failsafe.sack",
        "watchdog_failsafe.sack", "fixtures/escalation_seeded.sack",
        "fixtures/broken_gate.sack"}) {
    std::ifstream in(std::string(SACK_POLICY_DIR) + "/" + name);
    EXPECT_TRUE(in.good()) << "cannot open corpus file " << name;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    corpus.push_back(buffer.str());
  }
  return corpus;
}

// The tokens the grammar cares about — splicing these in reaches deeper
// parser states than raw byte noise alone.
constexpr const char* kDictionary[] = {
    "states",  "initial",   "transitions", "events", "watchdog",
    "permissions", "state_per", "per_rules", "allow",  "deny",
    "->",      "on",        "after",       "ms",     "failsafe",
    "{",       "}",         ";",           ":",      ",",
    "*",       "**",        "@profile",    "read",   "write",
    "ioctl",   "/dev/**",   "[a-z]",       "{a,b}",  "\\",
    "#",       "=",         "0xffff",      "-1",     "9999999999999999999",
};

std::string mutate(const std::string& base, Rng& rng) {
  std::string out = base;
  int edits = static_cast<int>(rng.range(1, 8));
  for (int i = 0; i < edits; ++i) {
    if (out.empty()) {
      out = kDictionary[rng.below(std::size(kDictionary))];
      continue;
    }
    switch (rng.below(5)) {
      case 0: {  // flip a byte
        out[rng.below(out.size())] = static_cast<char>(rng.below(256));
        break;
      }
      case 1: {  // delete a span
        std::size_t at = rng.below(out.size());
        std::size_t len = 1 + rng.below(16);
        out.erase(at, len);
        break;
      }
      case 2: {  // splice a dictionary token
        std::size_t at = rng.below(out.size() + 1);
        out.insert(at, kDictionary[rng.below(std::size(kDictionary))]);
        break;
      }
      case 3: {  // duplicate a span (nested sections, repeated rules)
        std::size_t at = rng.below(out.size());
        std::size_t len = std::min<std::size_t>(1 + rng.below(64),
                                                out.size() - at);
        out.insert(at, out.substr(at, len));
        break;
      }
      case 4: {  // truncate (simulates a partial securityfs write)
        out.resize(rng.below(out.size() + 1));
        break;
      }
    }
    // Keep mutants bounded so a pathological duplication chain cannot make
    // the round quadratic.
    if (out.size() > 64 * 1024) out.resize(64 * 1024);
  }
  return out;
}

// One mutant through the whole pipeline. The only acceptable outcomes are
// "parses" or "reports errors" — never a crash.
void exercise(const std::string& text) {
  SectionPresence presence;
  auto parsed = parse_policy(text, &presence);
  // check_policy must hold on whatever the parser produced, even from a
  // document that had errors (partial policies are still checked).
  auto diags = check_policy(parsed.policy, CheckMode::any);
  (void)diags;
  if (!parsed.ok()) return;

  // A clean parse must canonical-dump and re-parse cleanly.
  std::string dump = parsed.policy.to_text();
  auto reparsed = parse_policy(dump);
  EXPECT_TRUE(reparsed.ok())
      << "canonical dump of a valid mutant failed to re-parse:\n"
      << dump;

  // SSM construction either succeeds or reports EINVAL — never crashes.
  auto ssm = SituationStateMachine::build(parsed.policy);
  if (ssm.ok()) (void)ssm.value().current_name();

  // Rule-set compilation accepts any parsed policy.
  CompiledRuleSet rules;
  (void)rules.load(parsed.policy);
  rules.activate(parsed.policy.permissions_of(parsed.policy.initial_state));
  AccessQuery q;
  q.subject_exe = "/usr/bin/fuzz_probe";
  q.object_path = "/fuzz/probe";
  q.op = MacOp::read;
  (void)rules.check(q);
}

TEST(PolicyParserFuzz, SeededMutantsNeverCrashThePipeline) {
  auto corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  // Fixed seed: every CI run explores the identical mutant set, so a failure
  // here reproduces locally byte for byte.
  Rng rng(0xfeed'5ac4'0000'0001ULL);
  constexpr int kRoundsPerSeed = 400;
  for (const auto& base : corpus) {
    for (int round = 0; round < kRoundsPerSeed; ++round) {
      exercise(mutate(base, rng));
    }
  }
}

TEST(PolicyParserFuzz, HostileHandWrittenInputs) {
  // Regression corpus for parser edge cases: each entry once pointed at a
  // class of bug in some real-world parser (unterminated constructs, deep
  // nesting, stray high bytes, null-ish content).
  std::vector<std::string> inputs = {
      "",
      ";",
      "{",
      "}",
      "states",
      "states {",
      "states { a = ",
      "states { a = 0; } initial",
      "transitions { -> on ; }",
      "per_rules { P { allow } }",
      "per_rules { P { allow * } }",
      "per_rules { P { allow * /x } }",
      "per_rules { P { deny @ /x read; } }",
      "watchdog ms failsafe;",
      "watchdog 10 ms failsafe",
      std::string(4096, '{'),
      std::string(4096, '#'),
      "state_per { a: " + std::string(2000, 'P') + "; }",
      "per_rules { P { allow * /a/{b,{c,{d,e}}}/** read; } }",
      "per_rules { P { allow * /a/[ read; } }",
      "per_rules { P { allow * /a\\ read; } }",
      "events { \xff\xfe\xfd; }",
      "initial \x01\x02;",
  };
  for (const auto& text : inputs) {
    exercise(text);
  }
}

}  // namespace
}  // namespace sack::core
