// Hook-coverage matrix: for every MacOp, a policy granting exactly that op
// on a guarded object must allow exactly the corresponding syscall and deny
// the others. This pins the hook→operation mapping end to end.
#include <gtest/gtest.h>

#include "core/policy_builder.h"
#include "core/sack_module.h"
#include "kernel/process.h"

namespace sack::core {
namespace {

using kernel::AccessMask;
using kernel::Cred;
using kernel::Fd;
using kernel::Kernel;
using kernel::OpenFlags;
using kernel::Process;
using kernel::Task;

// The world: /guarded/dir and files inside it, all guarded by the policy
// (object pattern /guarded/**).
class HookCoverage : public ::testing::TestWithParam<MacOp> {
 protected:
  HookCoverage() {
    sack_ = static_cast<SackModule*>(kernel_.add_lsm(
        std::make_unique<SackModule>(SackMode::independent)));
    kernel_.vfs().mkdir_p("/guarded/dir");
    kernel_.vfs().mkdir_p("/guarded/emptydir");
    Process admin(kernel_, kernel_.init_task());
    EXPECT_TRUE(admin.write_file("/guarded/file", "0123456789").ok());
    EXPECT_TRUE(admin.write_file("/guarded/other", "x").ok());
    EXPECT_TRUE(admin.write_file("/guarded/binary", "ELF").ok());
    EXPECT_TRUE(
        kernel_.sys_chmod(kernel_.init_task(), "/guarded/binary", 0755).ok());
    task_ = &kernel_.spawn_task("probe", Cred::root(), "/usr/bin/probe");
  }

  void load(MacOp op) {
    PolicyBuilder b;
    b.state("s", 0).initial("s").permission("P").grant("s", "P");
    b.allow("P", "*", "/guarded/**", op);
    std::vector<Diagnostic> diags;
    ASSERT_TRUE(sack_->load_policy(b.build(), &diags).ok());
  }

  // Attempts the operation corresponding to `op`; true if it succeeded.
  bool attempt(MacOp op) {
    Process p(kernel_, *task_);
    auto ok = [](auto result) { return result.ok(); };
    switch (op) {
      case MacOp::read: {
        auto fd = p.open("/guarded/file", OpenFlags::read);
        if (!fd.ok()) return false;
        (void)p.close(*fd);
        return true;
      }
      case MacOp::write: {
        auto fd = p.open("/guarded/file", OpenFlags::write);
        if (!fd.ok()) return false;
        (void)p.close(*fd);
        return true;
      }
      case MacOp::append: {
        auto fd = p.open("/guarded/file",
                         OpenFlags::write | OpenFlags::append);
        if (!fd.ok()) return false;
        (void)p.close(*fd);
        return true;
      }
      case MacOp::exec:
        return ok(kernel_.sys_execve(*task_, "/guarded/binary"));
      case MacOp::ioctl: {
        // The LSM hook runs before the "is it a device" check, so ENOTTY
        // (not EACCES) proves the MAC layer allowed the ioctl.
        auto pf = p.open("/guarded/file", OpenFlags::read);
        if (!pf.ok()) return false;  // needs read too; see companions()
        auto io = p.ioctl(*pf, 1, 0);
        (void)p.close(*pf);
        return io.error() == Errno::enotty;
      }
      case MacOp::mmap: {
        auto fd = p.open("/guarded/file", OpenFlags::read);
        if (!fd.ok()) return false;
        auto id = kernel_.sys_mmap(*task_, *fd, 4096, AccessMask::read);
        bool mapped = id.ok();
        if (mapped) (void)kernel_.sys_munmap(*task_, *id);
        (void)p.close(*fd);
        return mapped;
      }
      case MacOp::create:
        return ok(p.write_file("/guarded/newfile", "x"));
      case MacOp::unlink:
        return ok(p.unlink("/guarded/other"));
      case MacOp::mkdir:
        return ok(p.mkdir("/guarded/newdir"));
      case MacOp::rmdir:
        return ok(kernel_.sys_rmdir(*task_, "/guarded/emptydir"));
      case MacOp::rename:
        return ok(kernel_.sys_rename(*task_, "/guarded/other",
                                     "/guarded/renamed"));
      case MacOp::getattr:
        return ok(p.stat("/guarded/file"));
      case MacOp::chmod:
        return ok(kernel_.sys_chmod(*task_, "/guarded/file", 0640));
      case MacOp::chown:
        return ok(kernel_.sys_chown(*task_, "/guarded/file", 1, 1));
      case MacOp::truncate:
        return ok(kernel_.sys_truncate(*task_, "/guarded/file", 1));
      default:
        ADD_FAILURE() << "unhandled op";
        return false;
    }
  }

  // Ops whose probe path inherently performs extra mediated operations.
  static MacOp companions(MacOp op) {
    switch (op) {
      case MacOp::ioctl:
      case MacOp::mmap:
        return op | MacOp::read;        // the probe opens the file to get a fd
      case MacOp::append:
        return op | MacOp::write;       // open(write|append) checks both
      case MacOp::create:
        return op | MacOp::write;       // the new file is opened for writing
      default:
        return op;
    }
  }

  Kernel kernel_;
  SackModule* sack_ = nullptr;
  Task* task_ = nullptr;
};

TEST_P(HookCoverage, ExactlyTheGrantedOpSucceeds) {
  MacOp op = GetParam();

  // With nothing granted the op must fail.
  load(MacOp::getattr == op ? MacOp::ioctl : MacOp::getattr);
  EXPECT_FALSE(attempt(op)) << "op allowed without grant: "
                            << mac_op_name(op);

  // With the op (and its probe companions) granted, it must succeed.
  load(companions(op));
  EXPECT_TRUE(attempt(op)) << "op denied despite grant: " << mac_op_name(op);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, HookCoverage,
    ::testing::Values(MacOp::read, MacOp::write, MacOp::append, MacOp::exec,
                      MacOp::ioctl, MacOp::mmap, MacOp::create, MacOp::unlink,
                      MacOp::mkdir, MacOp::rmdir, MacOp::rename,
                      MacOp::getattr, MacOp::chmod, MacOp::chown,
                      MacOp::truncate),
    [](const auto& info) { return std::string(mac_op_name(info.param)); });

}  // namespace
}  // namespace sack::core
