// Result<T>, strings, tokenizer, bitmask, rng, clock, rcu_ptr.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "kernel/types.h"
#include "util/bitmask.h"
#include "util/clock.h"
#include "util/rcu_ptr.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/tokenizer.h"

namespace sack {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.error(), Errno::ok);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Errno::enoent;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::enoent);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, VoidSpecialization) {
  VoidResult ok;
  EXPECT_TRUE(ok.ok());
  VoidResult err = Errno::eacces;
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), Errno::eacces);
}

Result<int> try_helper(Result<int> in) {
  SACK_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(Result, TryMacroPropagates) {
  EXPECT_EQ(*try_helper(21), 42);
  EXPECT_EQ(try_helper(Errno::eio).error(), Errno::eio);
}

TEST(ErrnoNames, RoundTripish) {
  EXPECT_EQ(errno_name(Errno::eacces), "EACCES");
  EXPECT_EQ(errno_message(Errno::enoent), "no such file or directory");
  EXPECT_EQ(errno_name(Errno::ok), "OK");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split) {
  auto parts = split("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, SplitWs) {
  auto parts = split_ws("  one\ttwo \n three ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "two");
}

TEST(Strings, Identifier) {
  EXPECT_TRUE(is_identifier("normal_state"));
  EXPECT_TRUE(is_identifier("parking-with-driver"));
  EXPECT_FALSE(is_identifier("9lives"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("has space"));
}

TEST(Tokenizer, BasicKinds) {
  Tokenizer t("states { a = 0; } /dev/door* -> \"str\" @p # comment\nnext");
  auto toks = t.run();
  ASSERT_TRUE(toks.ok());
  auto& v = *toks;
  EXPECT_EQ(v[0].kind, TokenKind::identifier);
  EXPECT_EQ(v[0].text, "states");
  EXPECT_TRUE(v[1].is_punct('{'));
  EXPECT_EQ(v[3].kind, TokenKind::punct);  // '='
  EXPECT_EQ(v[4].kind, TokenKind::number);
  EXPECT_EQ(v[7].kind, TokenKind::path);
  EXPECT_EQ(v[7].text, "/dev/door*");
  EXPECT_EQ(v[8].kind, TokenKind::arrow);
  EXPECT_EQ(v[9].kind, TokenKind::string);
  EXPECT_EQ(v[9].text, "str");
  EXPECT_TRUE(v[10].is_punct('@'));
  // comment swallowed; "next" follows
  EXPECT_EQ(v[12].text, "next");
  EXPECT_EQ(v.back().kind, TokenKind::end);
}

TEST(Tokenizer, PathStopsAtStatementPunctuation) {
  Tokenizer t("/a/b, /c/d; /e{f,g}h");
  auto toks = t.run();
  ASSERT_TRUE(toks.ok());
  auto& v = *toks;
  EXPECT_EQ(v[0].text, "/a/b");
  EXPECT_TRUE(v[1].is_punct(','));
  EXPECT_EQ(v[2].text, "/c/d");
  EXPECT_TRUE(v[3].is_punct(';'));
  EXPECT_EQ(v[4].text, "/e{f,g}h");  // braces keep the comma in the path
}

TEST(Tokenizer, UnterminatedStringFails) {
  Tokenizer t("\"abc");
  EXPECT_FALSE(t.run().ok());
}

TEST(Tokenizer, TracksLineNumbers) {
  Tokenizer t("a\nb\n  c");
  auto toks = t.run();
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[1].line, 2);
  EXPECT_EQ((*toks)[2].line, 3);
  EXPECT_EQ((*toks)[2].column, 3);
}

TEST(Bitmask, Operators) {
  using kernel::OpenFlags;
  OpenFlags f = OpenFlags::read | OpenFlags::create;
  EXPECT_TRUE(has_any(f, OpenFlags::read));
  EXPECT_TRUE(has_all(f, OpenFlags::read | OpenFlags::create));
  EXPECT_FALSE(has_all(f, OpenFlags::rdwr));
  f |= OpenFlags::write;
  EXPECT_TRUE(has_all(f, OpenFlags::rdwr));
  f &= ~OpenFlags::read;
  EXPECT_FALSE(has_any(f, OpenFlags::read));
  EXPECT_TRUE(is_empty(OpenFlags::none));
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBounds) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(VirtualClock, AdvancesOnly) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0);
  c.advance_ms(3);
  c.advance_us(5);
  c.advance_ns(7);
  EXPECT_EQ(c.now(), 3'000'000 + 5'000 + 7);
}

TEST(RcuPtr, LoadReturnsPublishedVersion) {
  RcuPtr<const int> cell(std::make_shared<const int>(1));
  EXPECT_EQ(*cell.load(), 1);
  cell.store(std::make_shared<const int>(2));
  EXPECT_EQ(*cell.load(), 2);
}

TEST(RcuPtr, DefaultIsNull) {
  RcuPtr<int> cell;
  EXPECT_EQ(cell.load(), nullptr);
}

TEST(RcuPtr, OldVersionOutlivesStoreWhileHeld) {
  RcuPtr<const std::string> cell(std::make_shared<const std::string>("old"));
  auto held = cell.load();
  cell.store(std::make_shared<const std::string>("new"));
  EXPECT_EQ(*held, "old");  // reader's version survives the publication
  EXPECT_EQ(*cell.load(), "new");
}

TEST(RcuPtr, ConcurrentLoadersSeeOnlyCompleteVersions) {
  // Publishes pair-snapshots {n, n}; readers must never observe a torn
  // version. TSan makes this a real race detector, not just a smoke test.
  struct Pair {
    int a, b;
  };
  RcuPtr<const Pair> cell(std::make_shared<const Pair>(Pair{0, 0}));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        auto p = cell.load();
        if (p->a != p->b) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread writer([&] {
    for (int n = 1; !stop.load(std::memory_order_relaxed); ++n)
      cell.store(std::make_shared<const Pair>(Pair{n, n}));
  });
  for (auto& th : readers) th.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(torn.load(), 0u);
}

}  // namespace
}  // namespace sack
