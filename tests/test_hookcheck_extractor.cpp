// Unit tests for the sack-hookcheck C++ extractor: the lexer, the hook-table
// parser, function/dispatch extraction, guard classification, and the
// ordering-anchor pattern matcher. Focuses on the shapes that historically
// break lightweight parsers: overloads, lambdas, early returns, helper
// wrappers, conditional dispatch, and if-init guards.
#include <gtest/gtest.h>

#include <string>

#include "analysis/checks.h"
#include "analysis/extractor.h"
#include "analysis/lexer.h"

namespace sack::analysis {
namespace {

// A representative hook header shared by most tests.
constexpr const char* kHeader = R"(
namespace sack {
class SecurityModule {
 public:
  virtual ~SecurityModule() = default;
  virtual Errno file_open(int pid, const std::string& path) {
    return Errno::ok;
  }
  virtual Errno file_permission(int pid, int fd) { return Errno::ok; }
  virtual void task_free(int pid) {}
  virtual std::string getprocattr(int pid) { return {}; }
};
}  // namespace sack
)";

HookTable table() { return parse_hook_table(lex(kHeader)); }

SourceFile extract_src(const std::string& body) {
  return extract("test.cpp", lex(body), table());
}

const FunctionDef* fn_named(const SourceFile& f, const std::string& name) {
  for (const auto& fn : f.functions)
    if (fn.name == name) return &fn;
  return nullptr;
}

// --- lexer -----------------------------------------------------------------

TEST(HookcheckLexer, StripsCommentsPreprocessorAndStringContents) {
  auto toks = lex("#include <map>\n// file_open in a comment\n"
                  "/* file_open again */ int x = 1; auto s = \"file_open\";");
  for (const auto& t : toks) {
    if (t.kind == TokKind::ident) EXPECT_NE(t.text, "file_open");
    if (t.kind == TokKind::str) EXPECT_EQ(t.text, "\"\"");
  }
}

TEST(HookcheckLexer, MultiCharOperatorsStayWhole) {
  auto toks = lex("a != b; c == d; e -> f; g::h; i <= j;");
  int two_char = 0;
  for (const auto& t : toks) {
    if (t.kind != TokKind::punct) continue;
    EXPECT_NE(t.text, "!");  // `!=` must never split
    if (t.text.size() == 2) ++two_char;
  }
  EXPECT_EQ(two_char, 5);
}

TEST(HookcheckLexer, RawStringsAreOpaque) {
  auto toks = lex("auto s = R\"x(lsm_.check mutation = )x\"; int y;");
  for (const auto& t : toks)
    if (t.kind == TokKind::ident) EXPECT_NE(t.text, "lsm_");
}

TEST(HookcheckLexer, TracksLineNumbers) {
  auto toks = lex("int a;\nint b;\n\nint c;");
  ASSERT_GE(toks.size(), 9u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[3].line, 2);
  EXPECT_EQ(toks[6].line, 4);
}

// --- hook table ------------------------------------------------------------

TEST(HookcheckTable, ClassifiesHookKinds) {
  HookTable t = table();
  ASSERT_TRUE(t.contains("file_open"));
  EXPECT_EQ(t.kind("file_open"), HookKind::mediation);
  EXPECT_EQ(t.kind("file_permission"), HookKind::mediation);
  EXPECT_EQ(t.kind("task_free"), HookKind::notify);
  EXPECT_EQ(t.kind("getprocattr"), HookKind::other);
  EXPECT_FALSE(t.contains("SecurityModule"));  // dtor is not a hook
  EXPECT_GT(t.line("file_open"), 0);
}

// --- function extraction ---------------------------------------------------

TEST(HookcheckExtract, QualifiedOutOfClassDefinition) {
  auto f = extract_src("Errno Kernel::sys_open(int pid) { return Errno::ok; }");
  ASSERT_EQ(f.functions.size(), 1u);
  EXPECT_EQ(f.functions[0].qualified, "Kernel::sys_open");
  EXPECT_EQ(f.functions[0].name, "sys_open");
}

TEST(HookcheckExtract, OverloadsBothRecorded) {
  auto f = extract_src(
      "int Kernel::resolve(int fd) { return fd; }\n"
      "int Kernel::resolve(const std::string& p) { return 0; }");
  ASSERT_EQ(f.functions.size(), 2u);
  EXPECT_EQ(f.functions[0].name, "resolve");
  EXPECT_EQ(f.functions[1].name, "resolve");
  Corpus c = build_corpus(table(), {f});
  EXPECT_EQ(c.by_name.at("resolve").size(), 2u);
}

TEST(HookcheckExtract, DeclarationsAreNotDefinitions) {
  auto f = extract_src(
      "Errno sys_open(int pid);\n"
      "class K { Errno sys_read(int fd); };\n"
      "Errno K::sys_read(int fd) { return Errno::ok; }");
  ASSERT_EQ(f.functions.size(), 1u);
  EXPECT_EQ(f.functions[0].qualified, "K::sys_read");
}

TEST(HookcheckExtract, ConstructorInitListSkipped) {
  auto f = extract_src(
      "Kernel::Kernel(Vfs& v) : vfs_(v), clock_{0} { boot(); }");
  ASSERT_EQ(f.functions.size(), 1u);
  ASSERT_EQ(f.functions[0].calls.size(), 1u);
  EXPECT_EQ(f.functions[0].calls[0].callee, "boot");
}

TEST(HookcheckExtract, HelperWrapperCallSitesRecorded) {
  auto f = extract_src(
      "Errno Kernel::check_path(int pid, const std::string& p) {\n"
      "  return lsm_.check([&](SecurityModule& m) {\n"
      "    return m.file_open(pid, p); });\n"
      "}\n"
      "Errno Kernel::sys_open(int pid, const std::string& p) {\n"
      "  Errno rc = check_path(pid, p);\n"
      "  if (rc != Errno::ok) return rc;\n"
      "  return Errno::ok;\n"
      "}");
  const FunctionDef* open = fn_named(f, "sys_open");
  ASSERT_NE(open, nullptr);
  bool saw = false;
  for (const auto& c : open->calls) saw = saw || c.callee == "check_path";
  EXPECT_TRUE(saw);
  // ...and the wrapper itself carries the hook, so reachability closes over it.
  const FunctionDef* helper = fn_named(f, "check_path");
  ASSERT_NE(helper, nullptr);
  ASSERT_EQ(helper->hooks.size(), 1u);
  EXPECT_EQ(helper->hooks[0].hook, "file_open");

  Corpus corpus = build_corpus(table(), {f});
  Reachability r = compute_reachability(corpus, open, {});
  ASSERT_TRUE(r.hooks.count("file_open"));
  EXPECT_TRUE(r.hooks.at("file_open").unconditional);
}

// --- guard classification --------------------------------------------------

TEST(HookcheckGuard, DirectReturnPropagates) {
  auto f = extract_src(
      "Errno Kernel::sys_stat(int pid) {\n"
      "  return lsm_.check([&](SecurityModule& m) {\n"
      "    return m.file_permission(pid, 0); });\n"
      "}");
  ASSERT_EQ(f.functions[0].hooks.size(), 1u);
  EXPECT_EQ(f.functions[0].hooks[0].guard, Guard::propagated);
}

TEST(HookcheckGuard, CheckedVariablePropagates) {
  auto f = extract_src(
      "Errno Kernel::sys_open(int pid) {\n"
      "  Errno rc = lsm_.check([&](SecurityModule& m) {\n"
      "    return m.file_open(pid, \"/\"); });\n"
      "  if (rc != Errno::ok) return rc;\n"
      "  return Errno::ok;\n"
      "}");
  ASSERT_EQ(f.functions[0].hooks.size(), 1u);
  EXPECT_EQ(f.functions[0].hooks[0].guard, Guard::propagated);
}

TEST(HookcheckGuard, IfInitFormPropagates) {
  auto f = extract_src(
      "Errno Kernel::sys_open(int pid) {\n"
      "  if (Errno rc = lsm_.check([&](SecurityModule& m) {\n"
      "        return m.file_open(pid, \"/\"); });\n"
      "      rc != Errno::ok)\n"
      "    return rc;\n"
      "  return Errno::ok;\n"
      "}");
  ASSERT_EQ(f.functions[0].hooks.size(), 1u);
  EXPECT_EQ(f.functions[0].hooks[0].guard, Guard::propagated);
}

TEST(HookcheckGuard, DenialWithLoggingBeforeReturnStillPropagates) {
  auto f = extract_src(
      "Errno Kernel::sys_open(int pid) {\n"
      "  Errno rc = lsm_.check([&](SecurityModule& m) {\n"
      "    return m.file_open(pid, \"/\"); });\n"
      "  if (rc != Errno::ok) {\n"
      "    log_debug(\"denied\");\n"
      "    return rc;\n"
      "  }\n"
      "  return Errno::ok;\n"
      "}");
  ASSERT_EQ(f.functions[0].hooks.size(), 1u);
  EXPECT_EQ(f.functions[0].hooks[0].guard, Guard::propagated);
}

TEST(HookcheckGuard, HardcodedDenialDetected) {
  auto f = extract_src(
      "Errno Kernel::sys_open(int pid) {\n"
      "  Errno rc = lsm_.check([&](SecurityModule& m) {\n"
      "    return m.file_open(pid, \"/\"); });\n"
      "  if (rc != Errno::ok) return Errno::eacces;\n"
      "  return Errno::ok;\n"
      "}");
  ASSERT_EQ(f.functions[0].hooks.size(), 1u);
  EXPECT_EQ(f.functions[0].hooks[0].guard, Guard::hardcoded);
  EXPECT_EQ(f.functions[0].hooks[0].hardcoded_errno, "Errno::eacces");
}

TEST(HookcheckGuard, SwallowedDenialDetected) {
  auto f = extract_src(
      "Errno Kernel::sys_open(int pid) {\n"
      "  Errno rc = lsm_.check([&](SecurityModule& m) {\n"
      "    return m.file_open(pid, \"/\"); });\n"
      "  if (rc != Errno::ok) { log_debug(\"denied\"); }\n"
      "  return Errno::ok;\n"
      "}");
  ASSERT_EQ(f.functions[0].hooks.size(), 1u);
  EXPECT_EQ(f.functions[0].hooks[0].guard, Guard::swallowed);
}

TEST(HookcheckGuard, UnguardedVerdictDetected) {
  auto f = extract_src(
      "Errno Kernel::sys_open(int pid) {\n"
      "  Errno rc = lsm_.check([&](SecurityModule& m) {\n"
      "    return m.file_open(pid, \"/\"); });\n"
      "  return Errno::ok;\n"
      "}");
  ASSERT_EQ(f.functions[0].hooks.size(), 1u);
  EXPECT_EQ(f.functions[0].hooks[0].guard, Guard::unguarded);
}

TEST(HookcheckGuard, NotifyDispatchIsNotGuarded) {
  auto f = extract_src(
      "void Kernel::reap(int pid) {\n"
      "  lsm_.notify([&](SecurityModule& m) { m.task_free(pid); });\n"
      "}");
  ASSERT_EQ(f.functions[0].hooks.size(), 1u);
  EXPECT_TRUE(f.functions[0].hooks[0].via_notify);
  EXPECT_EQ(f.functions[0].hooks[0].guard, Guard::notify);
}

// --- conditional-context tracking ------------------------------------------

TEST(HookcheckConditional, DispatchUnderIfIsConditional) {
  auto f = extract_src(
      "Errno Kernel::sys_open(int pid, int flags) {\n"
      "  if (flags != 0) {\n"
      "    Errno rc = lsm_.check([&](SecurityModule& m) {\n"
      "      return m.file_open(pid, \"/\"); });\n"
      "    if (rc != Errno::ok) return rc;\n"
      "  }\n"
      "  return Errno::ok;\n"
      "}");
  ASSERT_EQ(f.functions[0].hooks.size(), 1u);
  EXPECT_TRUE(f.functions[0].hooks[0].conditional);
}

TEST(HookcheckConditional, EarlyReturnDoesNotTaintLaterDispatch) {
  auto f = extract_src(
      "Errno Kernel::sys_open(int pid, int fd) {\n"
      "  if (fd < 0) return Errno::enoent;\n"
      "  return lsm_.check([&](SecurityModule& m) {\n"
      "    return m.file_open(pid, \"/\"); });\n"
      "}");
  ASSERT_EQ(f.functions[0].hooks.size(), 1u);
  EXPECT_FALSE(f.functions[0].hooks[0].conditional);
}

TEST(HookcheckConditional, UnbracedIfBodyIsConditional) {
  auto f = extract_src(
      "void Kernel::maybe_log(int pid, bool v) {\n"
      "  if (v)\n"
      "    audit(pid);\n"
      "  commit(pid);\n"
      "}");
  const FunctionDef* fn = fn_named(f, "maybe_log");
  ASSERT_NE(fn, nullptr);
  bool audit_cond = false, commit_cond = true;
  for (const auto& c : fn->calls) {
    if (c.callee == "audit") audit_cond = c.conditional;
    if (c.callee == "commit") commit_cond = c.conditional;
  }
  EXPECT_TRUE(audit_cond);
  EXPECT_FALSE(commit_cond);
}

TEST(HookcheckConditional, ShortCircuitRhsInControlHeaderIsConditional) {
  // The left operand of a header condition always evaluates; everything after
  // a top-level `&&` may be skipped, so calls there are conditional.
  auto f = extract_src(
      "void Kernel::gate(int pid) {\n"
      "  if (is_root(pid) && audited(pid)) { mark(pid); }\n"
      "}");
  const FunctionDef* fn = fn_named(f, "gate");
  ASSERT_NE(fn, nullptr);
  bool lhs_cond = true, rhs_cond = false, body_cond = false;
  for (const auto& c : fn->calls) {
    if (c.callee == "is_root") lhs_cond = c.conditional;
    if (c.callee == "audited") rhs_cond = c.conditional;
    if (c.callee == "mark") body_cond = c.conditional;
  }
  EXPECT_FALSE(lhs_cond);
  EXPECT_TRUE(rhs_cond);
  EXPECT_TRUE(body_cond);
}

TEST(HookcheckConditional, CallsInsideNonDispatchLambdaStillRecorded) {
  auto f = extract_src(
      "void Kernel::walk(int pid) {\n"
      "  for_each([&](int fd) { revalidate(fd); });\n"
      "}");
  const FunctionDef* fn = fn_named(f, "walk");
  ASSERT_NE(fn, nullptr);
  bool saw = false;
  for (const auto& c : fn->calls) saw = saw || c.callee == "revalidate";
  EXPECT_TRUE(saw);
}

// --- opaque dispatch -------------------------------------------------------

TEST(HookcheckOpaque, UnknownHookNameInDispatchFlagged) {
  auto f = extract_src(
      "Errno Kernel::sys_open(int pid) {\n"
      "  return lsm_.check([&](SecurityModule& m) {\n"
      "    return m.file_opne(pid, \"/\"); });\n"  // typo'd hook
      "}");
  ASSERT_EQ(f.functions[0].hooks.size(), 0u);
  EXPECT_EQ(f.functions[0].opaque_dispatch_lines.size(), 1u);
}

TEST(HookcheckOpaque, OtherKindHookIsNotOpaque) {
  auto f = extract_src(
      "void Procfs::render(int pid) {\n"
      "  kernel_->lsm().notify([&](SecurityModule& m) {\n"
      "    out_ += m.getprocattr(pid); });\n"
      "}");
  ASSERT_EQ(f.functions.size(), 1u);
  EXPECT_TRUE(f.functions[0].opaque_dispatch_lines.empty());
  EXPECT_TRUE(f.functions[0].hooks.empty());  // "other" never mediates
}

// --- ordering-anchor pattern matching --------------------------------------

TEST(HookcheckPattern, ArrowAndDotAreInterchangeable) {
  auto toks = lex("void f() { fds()->install(fd); }");
  auto pat = lex("fds().install");
  EXPECT_NE(find_pattern(toks, 0, toks.size(), pat), std::string::npos);
}

TEST(HookcheckPattern, TrailingAssignNeverMatchesComparison) {
  auto toks = lex("void f() { if (sock.state == kOpen) {} }");
  auto pat = lex("sock.state =");
  EXPECT_EQ(find_pattern(toks, 0, toks.size(), pat), std::string::npos);

  auto toks2 = lex("void f() { sock.state = kOpen; }");
  EXPECT_NE(find_pattern(toks2, 0, toks2.size(), pat), std::string::npos);
}

TEST(HookcheckPattern, RespectsRange) {
  auto toks = lex("int a; vfs_.unlink_child(p, l); int b;");
  auto pat = lex("vfs_.unlink_child");
  std::size_t at = find_pattern(toks, 0, toks.size(), pat);
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(find_pattern(toks, at + 1, toks.size(), pat), std::string::npos);
}


// --- satellite regressions: raw strings, if constexpr, template calls ------

TEST(HookcheckLexer, RawStringEncodingPrefixesAreOpaque) {
  // u8R/uR/UR/LR raw strings must lex as string tokens with their contents
  // (including fake identifiers and quotes) dropped, like plain R"".
  auto toks = lex("auto a = u8R\"(file_open \" inner)\";\n"
                  "auto b = LR\"sep(task_free)sep\"; int after = 1;");
  int strs = 0;
  bool saw_after = false;
  for (const auto& t : toks) {
    if (t.kind == TokKind::str) {
      ++strs;
      EXPECT_EQ(t.text, "\"\"");
    }
    if (t.kind == TokKind::ident) {
      EXPECT_NE(t.text, "file_open");
      EXPECT_NE(t.text, "task_free");
      if (t.text == "after") saw_after = true;
    }
  }
  EXPECT_EQ(strs, 2);
  EXPECT_TRUE(saw_after);  // lexing resynchronized after the raw strings
}

TEST(HookcheckLexer, IdentifiersEndingInUppercaseRAreNotRawStrings) {
  // `vaR"x"` is the identifier vaR followed by an ordinary string.
  auto toks = lex("int vaR = 0; use(vaR);");
  int var_idents = 0;
  for (const auto& t : toks)
    if (t.ident_is("vaR")) ++var_idents;
  EXPECT_EQ(var_idents, 2);
}

TEST(HookcheckExtractor, IfConstexprBodyIsConditionalContext) {
  auto f = extract_src(R"(
void dispatch(int pid) {
  if constexpr (kAudited) {
    audit(pid);
  }
  commit(pid);
}
)");
  ASSERT_EQ(f.functions.size(), 1u);
  bool audit_cond = false, commit_cond = true;
  for (const auto& c : f.functions[0].calls) {
    if (c.callee == "audit") audit_cond = c.conditional;
    if (c.callee == "commit") commit_cond = c.conditional;
  }
  EXPECT_TRUE(audit_cond);    // guarded by the if constexpr
  EXPECT_FALSE(commit_cond);  // straight-line after it
}

TEST(HookcheckExtractor, ExplicitTemplateArgumentCallsAreCallSites) {
  auto f = extract_src(R"(
void run(Task& t) {
  helper<int>(t);
  t.blob<SfiTaskBlob, 4>(key);
  if (limit < threshold && count > limit) rebalance();
}
)");
  ASSERT_EQ(f.functions.size(), 1u);
  bool saw_helper = false, saw_blob = false, saw_cmp_callee = false;
  for (const auto& c : f.functions[0].calls) {
    if (c.callee == "helper") saw_helper = true;
    if (c.callee == "blob") saw_blob = true;
    if (c.callee == "limit" || c.callee == "threshold" ||
        c.callee == "count")
      saw_cmp_callee = true;
  }
  EXPECT_TRUE(saw_helper);
  EXPECT_TRUE(saw_blob);
  EXPECT_FALSE(saw_cmp_callee);  // comparisons are not template calls
}

TEST(HookcheckExtractor, TemplateMemberDefinitionGetsQualifiedName) {
  auto f = extract_src(R"(
template <typename T>
int Registry<T>::lookup(int key) {
  return find_slot(key);
}
template <>
int decode<int>(int raw) { return raw; }
)");
  const FunctionDef* m = fn_named(f, "lookup");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->qualified, "Registry::lookup");
  ASSERT_EQ(m->calls.size(), 1u);
  EXPECT_EQ(m->calls[0].callee, "find_slot");
  // The explicit specialization is extracted as a plain function.
  EXPECT_NE(fn_named(f, "decode"), nullptr);
}

}  // namespace
}  // namespace sack::analysis
