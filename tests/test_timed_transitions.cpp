// Timed (dwell-time) situation transitions — the fail-safe extension:
// "emergency auto-reverts after N ms even if the SDS never clears it".
#include <gtest/gtest.h>

#include "core/policy_builder.h"
#include "core/policy_checker.h"
#include "core/policy_parser.h"
#include "core/sack_module.h"
#include "core/ssm.h"
#include "kernel/process.h"

namespace sack::core {
namespace {

using kernel::Cred;
using kernel::Kernel;
using kernel::OpenFlags;
using kernel::Process;
using kernel::Task;

SackPolicy failsafe_policy() {
  PolicyBuilder b;
  b.state("normal", 0)
      .state("emergency", 1)
      .initial("normal")
      .transition("normal", "crash_detected", "emergency")
      .transition("emergency", "emergency_cleared", "normal")
      .timed_transition("emergency", 30'000, "normal")
      .permission("DOORS")
      .grant("emergency", "DOORS")
      .allow("DOORS", "*", "/dev/door", MacOp::write | MacOp::ioctl);
  return b.build();
}

TEST(TimedTransitions, ParserAcceptsAfterSyntax) {
  auto parsed = parse_policy(R"(
states { a = 0; b = 1; }
initial a;
transitions {
  a -> b on go;
  b -> a after 5000;
}
)");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.policy.timed_transitions.size(), 1u);
  EXPECT_EQ(parsed.policy.timed_transitions[0].from, "b");
  EXPECT_EQ(parsed.policy.timed_transitions[0].after_ms, 5000);
  EXPECT_EQ(parsed.policy.timed_transitions[0].to, "a");
  // Round-trips through the canonical dump.
  auto again = parse_policy(parsed.policy.to_text());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.policy.timed_transitions.size(), 1u);
}

TEST(TimedTransitions, CheckerValidates) {
  PolicyBuilder b;
  b.state("a", 0).initial("a");
  b.timed_transition("a", 100, "ghost");
  EXPECT_TRUE(has_errors(check_policy(b.build())));

  PolicyBuilder dup;
  dup.state("a", 0).state("b", 1).state("c", 2).initial("a");
  dup.timed_transition("a", 100, "b").timed_transition("a", 200, "c");
  EXPECT_TRUE(has_errors(check_policy(dup.build())));

  PolicyBuilder nonpos;
  nonpos.state("a", 0).state("b", 1).initial("a");
  nonpos.timed_transition("a", 0, "b");
  EXPECT_TRUE(has_errors(check_policy(nonpos.build())));

  // Reachability counts timed edges: 'b' reachable only via the timer.
  PolicyBuilder reach;
  reach.state("a", 0).state("b", 1).initial("a");
  reach.timed_transition("a", 100, "b");
  EXPECT_FALSE(has_errors(check_policy(reach.build())));
  for (const auto& d : check_policy(reach.build()))
    EXPECT_NE(d.code, CheckCode::unreachable_state);
}

TEST(TimedTransitions, SsmTickFiresAfterDwell) {
  auto ssm = *SituationStateMachine::build(failsafe_policy());
  ASSERT_TRUE(ssm.deliver("crash_detected", /*now=*/1'000'000).ok());
  EXPECT_EQ(ssm.current_name(), "emergency");

  // Not yet: 29.999 s after entry.
  auto o1 = ssm.tick(1'000'000 + 29'999'000'000LL);
  EXPECT_FALSE(o1.transitioned);
  EXPECT_EQ(ssm.current_name(), "emergency");

  auto o2 = ssm.tick(1'000'000 + 30'000'000'000LL);
  EXPECT_TRUE(o2.transitioned);
  EXPECT_EQ(ssm.current_name(), "normal");
  // No timed rule in 'normal': further ticks are no-ops.
  EXPECT_FALSE(ssm.tick(1'000'000'000'000'000'000LL).transitioned);
}

TEST(TimedTransitions, EventTransitionResetsDwellClock) {
  auto ssm = *SituationStateMachine::build(failsafe_policy());
  (void)ssm.deliver("crash_detected", 0);
  (void)ssm.deliver("emergency_cleared", 10'000'000'000LL);
  // Re-enter the emergency late; the timeout counts from the re-entry.
  (void)ssm.deliver("crash_detected", 50'000'000'000LL);
  EXPECT_FALSE(ssm.tick(60'000'000'000LL).transitioned);   // 10 s in
  EXPECT_TRUE(ssm.tick(80'000'000'000LL).transitioned);    // 30 s in
}

TEST(TimedTransitions, KernelClockDrivesFailsafe) {
  Kernel kernel;
  auto* sack_module = static_cast<SackModule*>(kernel.add_lsm(
      std::make_unique<SackModule>(SackMode::independent)));
  Process admin(kernel, kernel.init_task());
  ASSERT_TRUE(admin.write_file("/dev/door", "").ok());
  ASSERT_TRUE(sack_module->load_policy(failsafe_policy()).ok());

  Task& rescue = kernel.spawn_task("rescue", Cred::root(), "/usr/bin/rescue");
  Process p(kernel, rescue);

  ASSERT_TRUE(sack_module->deliver_event("crash_detected").ok());
  EXPECT_TRUE(p.open("/dev/door", OpenFlags::write).ok());

  // The SDS dies; nobody sends emergency_cleared. Time passes.
  kernel.advance_clock_ms(29'999);
  EXPECT_EQ(sack_module->current_state_name(), "emergency");
  kernel.advance_clock_ms(2);
  EXPECT_EQ(sack_module->current_state_name(), "normal");
  // The fail-safe revoked the emergency permissions.
  EXPECT_EQ(p.open("/dev/door", OpenFlags::write).error(), Errno::eacces);

  // And it is audited as a timeout transition.
  bool found = false;
  for (const auto& r : kernel.audit().records()) {
    if (r.operation == "transition:timeout") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TimedTransitions, SackfsLoadedPolicyWorksToo) {
  Kernel kernel;
  auto* sack_module = static_cast<SackModule*>(kernel.add_lsm(
      std::make_unique<SackModule>(SackMode::independent)));
  Process admin(kernel, kernel.init_task());
  ASSERT_TRUE(admin.write_existing("/sys/kernel/security/SACK/policy/load",
                                   R"(
states { quiet = 0; loud = 1; }
initial quiet;
transitions {
  quiet -> loud on party_started;
  loud -> quiet after 1000;
}
)")
                  .ok());
  ASSERT_TRUE(sack_module->deliver_event("party_started").ok());
  EXPECT_EQ(sack_module->current_state_name(), "loud");
  kernel.advance_clock_ms(1001);
  EXPECT_EQ(sack_module->current_state_name(), "quiet");
}

}  // namespace
}  // namespace sack::core
