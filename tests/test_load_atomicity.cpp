// load_policy failure atomicity: a failed load is a no-op.
//
// Whatever the failure mode — parse error, checker rejection, a strict DFA
// build budget blowout (ENOMEM), or an injected rule-set snapshot failure —
// the module must keep serving exactly the pre-attempt policy: same active
// snapshot, same policy generation, same rule-set label generation, same AVC
// contents (still warm, still hitting), same situation state, and — the
// property the rest derives its meaning from — the same verdict for every
// probe. These tests take a full observable snapshot around each failing
// load and require it bit-identical.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/sack_module.h"
#include "kernel/process.h"
#include "util/fault.h"

namespace sack::core {
namespace {

using kernel::Cred;
using kernel::Kernel;
using kernel::Process;
using kernel::Task;

constexpr std::string_view kPolicyV1 = R"(
states { normal = 0; emergency = 1; }
initial normal;
transitions {
  normal -> emergency on crash_detected;
  emergency -> normal on emergency_cleared;
}
permissions { MEDIA_READ; DOOR_CONTROL; }
state_per {
  normal: MEDIA_READ;
  emergency: MEDIA_READ, DOOR_CONTROL;
}
per_rules {
  MEDIA_READ { allow * /var/media/** read getattr; }
  DOOR_CONTROL { allow /usr/bin/rescue /dev/door write ioctl; }
}
)";

// Parses, but the checker rejects it: `initial` names an undefined state.
constexpr std::string_view kCheckerReject = R"(
states { normal = 0; }
initial missing;
permissions { MEDIA_READ; }
state_per { normal: MEDIA_READ; }
per_rules { MEDIA_READ { allow * /var/media/** read; } }
)";

constexpr std::string_view kParseError = "states { broken";

// Valid, and glob-heavy enough that a 2-state DFA budget cannot hold it.
constexpr std::string_view kPolicyV2 = R"(
states { normal = 0; emergency = 1; }
initial normal;
transitions {
  normal -> emergency on crash_detected;
  emergency -> normal on emergency_cleared;
}
permissions { MEDIA_READ; DOOR_CONTROL; LOG_WRITE; }
state_per {
  normal: MEDIA_READ, LOG_WRITE;
  emergency: MEDIA_READ, DOOR_CONTROL;
}
per_rules {
  MEDIA_READ { allow * /var/media/**/*.pcm read getattr; }
  DOOR_CONTROL { allow /usr/bin/* /dev/door* write ioctl; }
  LOG_WRITE { allow /usr/bin/logger /var/log/**/*.log write append; }
}
)";

class LoadAtomicityTest : public ::testing::Test {
 protected:
  LoadAtomicityTest() {
    sack_ = static_cast<SackModule*>(kernel_.add_lsm(
        std::make_unique<SackModule>(SackMode::independent)));
    kernel_.vfs().mkdir_p("/var/media");
    Process admin(kernel_, kernel_.init_task());
    EXPECT_TRUE(admin.write_file("/var/media/track.pcm", "DATA").ok());
    EXPECT_TRUE(admin.write_file("/dev/door", "").ok());
    media_ = &kernel_.spawn_task("media", Cred::root(), "/usr/bin/media");
    rescue_ = &kernel_.spawn_task("rescue", Cred::root(), "/usr/bin/rescue");
    EXPECT_TRUE(sack_->load_policy_text(kPolicyV1).ok());
  }

  void TearDown() override { util::FaultInjector::instance().reset(); }

  // Everything a failed load must not change.
  struct Observables {
    std::uint64_t policy_generation = 0;
    std::uint64_t label_generation = 0;
    std::size_t active_rules = 0;
    std::size_t total_rules = 0;
    std::string state;
    std::size_t avc_entries = 0;
    std::vector<Errno> decisions;  // cold pass + warm (AVC-served) pass

    bool operator==(const Observables&) const = default;
  };

  Observables observe() {
    Observables snapshot;
    snapshot.policy_generation = sack_->policy_generation();
    snapshot.label_generation = sack_->ruleset().label_generation();
    snapshot.active_rules = sack_->ruleset().active_rule_count();
    snapshot.total_rules = sack_->ruleset().total_rule_count();
    snapshot.state = sack_->current_state_name();

    std::array<AccessQuery, 6> queries{
        AccessQuery{{}, {}, "/var/media/track.pcm", MacOp::read},
        AccessQuery{{}, {}, "/var/media/track.pcm", MacOp::getattr},
        AccessQuery{{}, {}, "/var/media/track.pcm", MacOp::write},
        AccessQuery{{}, {}, "/dev/door", MacOp::write},
        AccessQuery{{}, {}, "/dev/door", MacOp::ioctl},
        AccessQuery{{}, {}, "/etc/unguarded", MacOp::read},
    };
    std::array<Errno, 6> verdicts{};
    for (int pass = 0; pass < 2; ++pass) {
      for (Task* task : {media_, rescue_}) {
        sack_->check_ops(*task, queries, verdicts);
        snapshot.decisions.insert(snapshot.decisions.end(), verdicts.begin(),
                                  verdicts.end());
      }
    }
    // Entries are read after the sweep so both snapshots count the same
    // (now fully populated) working set.
    snapshot.avc_entries = sack_->avc().stats().entries;
    return snapshot;
  }

  Kernel kernel_;
  SackModule* sack_ = nullptr;
  Task* media_ = nullptr;
  Task* rescue_ = nullptr;
};

TEST_F(LoadAtomicityTest, ParseErrorChangesNothing) {
  const Observables before = observe();
  const std::uint64_t hits_before = sack_->avc().stats().hits;
  EXPECT_FALSE(sack_->load_policy_text(kParseError).ok());
  const Observables after = observe();
  EXPECT_EQ(before, after);
  // The warm pass after the failed load was still served by the cache: the
  // failure did not flush or re-generation the AVC.
  EXPECT_GT(sack_->avc().stats().hits, hits_before);
}

TEST_F(LoadAtomicityTest, CheckerRejectionChangesNothing) {
  const Observables before = observe();
  EXPECT_FALSE(sack_->load_policy_text(kCheckerReject).ok());
  EXPECT_EQ(before, observe());
}

TEST_F(LoadAtomicityTest, StrictDfaBudgetEnomemChangesNothing) {
  ASSERT_TRUE(sack_->set_dfa_build_limits(GlobDfa::BuildLimits{2}, true));
  const Observables before = observe();
  auto load = sack_->load_policy_text(kPolicyV2);
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.error(), Errno::enomem);
  EXPECT_EQ(before, observe());

  // The same text is loadable once the budget is lifted — the rejection was
  // the budget, not the policy.
  ASSERT_TRUE(sack_->set_dfa_build_limits(GlobDfa::BuildLimits{}, false));
  EXPECT_TRUE(sack_->load_policy_text(kPolicyV2).ok());
  EXPECT_NE(before.policy_generation, sack_->policy_generation());
}

TEST_F(LoadAtomicityTest, InjectedRulesetLoadFailureChangesNothing) {
  auto& fi = util::FaultInjector::instance();
  util::FaultSpec spec;
  spec.error = Errno::enomem;
  ASSERT_TRUE(fi.arm("sack.ruleset.load", spec));

  const Observables before = observe();
  auto load = sack_->load_policy_text(kPolicyV2);
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.error(), Errno::enomem);
  EXPECT_EQ(before, observe());

  // Disarmed, the identical text loads and the snapshot atomically moves:
  // new generation, new label generation, new rule counts.
  fi.reset();
  ASSERT_TRUE(sack_->load_policy_text(kPolicyV2).ok());
  const Observables after = observe();
  EXPECT_NE(before.policy_generation, after.policy_generation);
  EXPECT_NE(before.label_generation, after.label_generation);
  EXPECT_EQ(after.total_rules, 3u);
}

TEST_F(LoadAtomicityTest, FailedLoadKeepsEnforcingOldPolicy) {
  // End-to-end: real syscalls, not just the check API. Media can read its
  // track before and after the failed load; rescue still cannot open the
  // door for writing in `normal`.
  Process media(kernel_, *media_);
  Process rescue(kernel_, *rescue_);
  EXPECT_TRUE(media.read_file("/var/media/track.pcm").ok());
  EXPECT_FALSE(rescue.write_existing("/dev/door", "open").ok());

  auto& fi = util::FaultInjector::instance();
  util::FaultSpec spec;
  spec.error = Errno::eio;
  ASSERT_TRUE(fi.arm("sack.ruleset.load", spec));
  ASSERT_FALSE(sack_->load_policy_text(kPolicyV2).ok());

  EXPECT_TRUE(media.read_file("/var/media/track.pcm").ok());
  EXPECT_FALSE(rescue.write_existing("/dev/door", "open").ok());
  EXPECT_EQ(sack_->current_state_name(), "normal");
}

}  // namespace
}  // namespace sack::core
