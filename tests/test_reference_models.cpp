// Reference-model property tests: pit the optimized implementations against
// brutally simple oracles on randomized inputs.
//
//  * Glob vs std::regex translation of the same pattern
//  * ProfileMatcher (hash-indexed) vs a naive scan over the rule list
#include <gtest/gtest.h>

#include <regex>

#include "apparmor/matcher.h"
#include "util/glob.h"
#include "util/rng.h"

namespace sack {
namespace {

// Translates a brace- and class-free glob into an equivalent std::regex
// (the random pattern generator below only emits '*', '**', '?' and
// literals, so that subset suffices for the oracle).
std::string glob_to_regex(std::string_view pattern) {
  std::string out = "^";
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    switch (c) {
      case '*':
        if (i + 1 < pattern.size() && pattern[i + 1] == '*') {
          out += ".*";
          ++i;
        } else {
          out += "[^/]*";
        }
        break;
      case '?':
        out += "[^/]";
        break;
      case '.': case '+': case '(': case ')': case '^': case '$':
      case '|': case '\\': case '{': case '}': case '[': case ']':
        out += '\\';
        out += c;
        break;
      default:
        out += c;
    }
  }
  out += '$';
  return out;
}

// Random path over a tiny alphabet so collisions with patterns are common.
std::string random_path(Rng& rng) {
  std::string path;
  int segments = 1 + static_cast<int>(rng.below(4));
  for (int s = 0; s < segments; ++s) {
    path += '/';
    int len = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < len; ++i)
      path += static_cast<char>('a' + rng.below(3));
  }
  return path;
}

std::string random_pattern(Rng& rng) {
  std::string pattern;
  int segments = 1 + static_cast<int>(rng.below(3));
  for (int s = 0; s < segments; ++s) {
    pattern += '/';
    switch (rng.below(5)) {
      case 0: pattern += "*"; break;
      case 1: pattern += "**"; break;
      case 2: pattern += static_cast<char>('a' + rng.below(3)); break;
      case 3:
        pattern += static_cast<char>('a' + rng.below(3));
        pattern += '?';
        break;
      default:
        pattern += static_cast<char>('a' + rng.below(3));
        pattern += static_cast<char>('a' + rng.below(3));
        break;
    }
  }
  return pattern;
}

class GlobVsRegex : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobVsRegex, AgreeOnRandomInputs) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::string pattern = random_pattern(rng);
    auto glob = Glob::compile(pattern);
    ASSERT_TRUE(glob.ok()) << pattern;
    std::regex re;
    // '**' followed by nothing vs "[^/]*" subtleties are encoded in
    // glob_to_regex; a throw here would be a translation bug, not a Glob bug.
    ASSERT_NO_THROW(re = std::regex(glob_to_regex(pattern)));
    for (int p = 0; p < 30; ++p) {
      std::string path = random_path(rng);
      EXPECT_EQ(glob->matches(path), std::regex_match(path, re))
          << "pattern=" << pattern << " path=" << path;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobVsRegex,
                         ::testing::Values(3u, 14u, 159u, 2653u));

// --- ProfileMatcher vs naive oracle ---

apparmor::FilePerm naive_allowed(const apparmor::Profile& profile,
                                 std::string_view path) {
  using apparmor::FilePerm;
  FilePerm allow = FilePerm::none, deny = FilePerm::none;
  for (const auto& rule : profile.rules) {
    if (!rule.pattern.matches(path)) continue;
    if (rule.deny) {
      deny |= rule.perms;
    } else {
      allow |= rule.perms;
    }
  }
  if (has_any(allow, FilePerm::write)) allow |= FilePerm::append;
  if (has_any(deny, FilePerm::write)) deny |= FilePerm::append;
  return allow & ~deny;
}

class MatcherVsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherVsOracle, AgreeOnRandomProfiles) {
  using apparmor::FilePerm;
  Rng rng(GetParam());
  const FilePerm perm_choices[] = {
      FilePerm::read, FilePerm::write, FilePerm::read | FilePerm::exec,
      FilePerm::ioctl | FilePerm::write, FilePerm::mmap | FilePerm::read};

  for (int round = 0; round < 40; ++round) {
    apparmor::Profile profile;
    profile.name = "random";
    int n_rules = 1 + static_cast<int>(rng.below(12));
    for (int r = 0; r < n_rules; ++r) {
      apparmor::FileRule rule;
      // Half the rules literal (exercise the hash index), half globby.
      std::string pattern =
          rng.chance(0.5) ? random_path(rng) : random_pattern(rng);
      auto glob = Glob::compile(pattern);
      ASSERT_TRUE(glob.ok());
      rule.pattern = std::move(glob).value();
      rule.perms = perm_choices[rng.below(5)];
      rule.deny = rng.chance(0.3);
      profile.rules.push_back(std::move(rule));
    }
    apparmor::ProfileMatcher matcher(profile);
    for (int p = 0; p < 40; ++p) {
      std::string path = random_path(rng);
      EXPECT_EQ(matcher.allowed(path), naive_allowed(profile, path))
          << "path=" << path;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherVsOracle,
                         ::testing::Values(7u, 77u, 777u, 7777u));

}  // namespace
}  // namespace sack
