// Deterministic fault-injection (chaos) suite.
//
// Every suite here is named Fault* so the TSan CI job and the `chaos` ctest
// label can select the whole matrix. All scenarios are deterministic from
// the FaultSpec seeds and the SDS's fixed jitter stream — a failure replays
// exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/policy_builder.h"
#include "core/sack_module.h"
#include "kernel/process.h"
#include "sds/sds.h"
#include "util/fault.h"

namespace sack {
namespace {

using core::PolicyBuilder;
using core::SackMode;
using core::SackModule;
using core::SackPolicy;
using kernel::Kernel;
using kernel::Process;
using sds::Detector;
using sds::FeedResult;
using sds::SensorFrame;
using sds::SituationDetectionService;
using util::FaultInjector;
using util::FaultSpec;

// Emits a scripted burst of events per on_frame() call — lets a test drive
// the transport layer with exact event sequences.
class ScriptedDetector final : public Detector {
 public:
  explicit ScriptedDetector(std::vector<std::vector<std::string>> script)
      : script_(std::move(script)) {}
  std::string_view detector_name() const override { return "scripted"; }
  std::vector<std::string> on_frame(const SensorFrame&) override {
    if (next_ >= script_.size()) return {};
    return script_[next_++];
  }
  void reset() override { next_ = 0; }

 private:
  std::vector<std::vector<std::string>> script_;
  std::size_t next_ = 0;
};

SackPolicy two_state_policy() {
  PolicyBuilder b;
  b.state("normal", 0)
      .state("emergency", 1)
      .initial("normal")
      .transition("normal", "crash_detected", "emergency")
      .transition("emergency", "emergency_cleared", "normal");
  return b.build();
}

SackPolicy watchdog_policy(std::int64_t deadline_ms) {
  PolicyBuilder b;
  b.state("normal", 0)
      .state("emergency", 1)
      .state("lockdown", 2)
      .initial("normal")
      .transition("normal", "crash_detected", "emergency")
      .transition("emergency", "emergency_cleared", "normal")
      .transition("lockdown", "sds_recovered", "normal")
      .watchdog(deadline_ms, "lockdown");
  return b.build();
}

SensorFrame frame_at(std::int64_t t_ms) {
  SensorFrame f;
  f.time_ms = t_ms;
  return f;
}

// Every test arms the process-wide injector; keep it hermetic.
class FaultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& fi = FaultInjector::instance();
    fi.reset();
    // arm() rejects names outside the registry, so declare the test-local
    // sites the mechanics suite drives directly.
    for (const char* site : {"s", "p", "w", "e", "d", "mt.site", "mt.other"})
      fi.register_site(site, "test-local site");
  }
  void TearDown() override { FaultInjector::instance().reset(); }
};

// Kernel + SACK module + SDS, wired like the paper's deployment.
struct ChaosRig {
  Kernel kernel;
  SackModule* mod;
  SituationDetectionService sds;

  explicit ChaosRig(SackPolicy policy)
      : mod(static_cast<SackModule*>(kernel.add_lsm(
            std::make_unique<SackModule>(SackMode::independent)))),
        sds(Process(kernel, kernel.init_task())) {
    EXPECT_TRUE(mod->load_policy(std::move(policy)).ok());
  }

  // The retry-queue conservation law: nothing leaves without accounting.
  void expect_retry_invariant() const {
    EXPECT_EQ(sds.retry_enqueued(), sds.retry_succeeded() +
                                        sds.retry_dropped() +
                                        sds.retry_exhausted() +
                                        sds.retry_depth());
  }
};

// --- FaultInjector mechanics ---

using FaultInjectorTest = FaultFixture;

TEST_F(FaultInjectorTest, DisarmedSiteNeverFires) {
  auto& fi = FaultInjector::instance();
  EXPECT_FALSE(fi.fire("nope"));
  EXPECT_FALSE(fi.fail_errno("nope").has_value());
  EXPECT_EQ(fi.stats("nope").hits, 0u);
}

TEST_F(FaultInjectorTest, ArmRejectsUnknownSiteName) {
  auto& fi = FaultInjector::instance();
  EXPECT_FALSE(fi.arm("sackfs.wirte", FaultSpec{}));  // the classic typo
  EXPECT_FALSE(fi.any_armed());
  EXPECT_FALSE(fi.fire("sackfs.wirte"));
  // The real name arms fine.
  EXPECT_TRUE(fi.arm("sackfs.write", FaultSpec{}));
  EXPECT_TRUE(fi.any_armed());
}

TEST_F(FaultInjectorTest, RegistrySurvivesResetAndEnumerates) {
  auto& fi = FaultInjector::instance();
  fi.register_site("reg.extra", "suite-local probe");
  EXPECT_TRUE(fi.is_registered("reg.extra"));
  EXPECT_TRUE(fi.arm("reg.extra", FaultSpec{}));
  fi.reset();
  // reset() disarms but does not forget the name.
  EXPECT_TRUE(fi.is_registered("reg.extra"));
  EXPECT_TRUE(fi.arm("reg.extra", FaultSpec{}));

  auto sites = fi.fault_sites();
  bool found_extra = false, found_builtin = false, armed_extra = false;
  for (const auto& s : sites) {
    if (s.name == "reg.extra") {
      found_extra = true;
      armed_extra = s.armed;
      EXPECT_EQ(s.description, "suite-local probe");
    }
    if (s.name == "fleet.push.drop") found_builtin = true;
  }
  EXPECT_TRUE(found_extra);
  EXPECT_TRUE(armed_extra);
  EXPECT_TRUE(found_builtin);
  // Sorted by name — stable output for --list-fault-sites consumers.
  for (std::size_t i = 1; i < sites.size(); ++i)
    EXPECT_LT(sites[i - 1].name, sites[i].name);
}

TEST_F(FaultInjectorTest, RegisterSiteIsIdempotent) {
  auto& fi = FaultInjector::instance();
  fi.register_site("reg.twice");
  fi.register_site("reg.twice", "late description");
  fi.register_site("reg.twice", "even later");
  for (const auto& s : fi.fault_sites())
    if (s.name == "reg.twice") EXPECT_EQ(s.description, "late description");
}

TEST_F(FaultInjectorTest, SkipDelaysFirstFire) {
  auto& fi = FaultInjector::instance();
  FaultSpec spec;
  spec.skip = 2;
  fi.arm("s", spec);
  EXPECT_FALSE(fi.fire("s"));
  EXPECT_FALSE(fi.fire("s"));
  EXPECT_TRUE(fi.fire("s"));
  EXPECT_TRUE(fi.fire("s"));
  EXPECT_EQ(fi.stats("s").hits, 4u);
  EXPECT_EQ(fi.stats("s").fires, 2u);
}

TEST_F(FaultInjectorTest, MaxFiresBoundsTheBurst) {
  auto& fi = FaultInjector::instance();
  FaultSpec spec;
  spec.max_fires = 2;
  fi.arm("s", spec);
  EXPECT_TRUE(fi.fire("s"));
  EXPECT_TRUE(fi.fire("s"));
  EXPECT_FALSE(fi.fire("s"));
  EXPECT_FALSE(fi.fire("s"));
  EXPECT_EQ(fi.stats("s").fires, 2u);
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicFromSeed) {
  auto& fi = FaultInjector::instance();
  auto run = [&] {
    fi.reset();
    FaultSpec spec;
    spec.probability = 0.5;
    spec.seed = 42;
    fi.arm("p", spec);
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(fi.fire("p"));
    return fires;
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);
  // And it is actually probabilistic, not stuck at one value.
  std::size_t on = 0;
  for (bool f : a) on += f ? 1 : 0;
  EXPECT_GT(on, 10u);
  EXPECT_LT(on, 54u);
}

TEST_F(FaultInjectorTest, MatchTargetsBySubstring) {
  auto& fi = FaultInjector::instance();
  FaultSpec spec;
  spec.match = "events";
  fi.arm("w", spec);
  EXPECT_FALSE(fi.fire("w", "/sys/kernel/security/SACK/heartbeat"));
  EXPECT_TRUE(fi.fire("w", "/sys/kernel/security/SACK/events"));
  EXPECT_EQ(fi.stats("w").fires, 1u);
}

TEST_F(FaultInjectorTest, FailErrnoReturnsArmedError) {
  auto& fi = FaultInjector::instance();
  FaultSpec spec;
  spec.error = Errno::enospc;
  fi.arm("e", spec);
  auto rc = fi.fail_errno("e");
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(*rc, Errno::enospc);
}

TEST_F(FaultInjectorTest, DisarmAndResetStopInjection) {
  auto& fi = FaultInjector::instance();
  fi.arm("d", FaultSpec{});
  EXPECT_TRUE(fi.fire("d"));
  fi.disarm("d");
  EXPECT_FALSE(fi.fire("d"));
  fi.arm("d", FaultSpec{});
  fi.reset();
  EXPECT_FALSE(fi.fire("d"));
  EXPECT_FALSE(fi.any_armed());
  EXPECT_EQ(fi.stats("d").hits, 0u);
}

// --- SACKfs write errno matrix, through the SDS transport ---

using FaultTransportTest = FaultFixture;

TEST_F(FaultTransportTest, PermanentEaccesIsNotRetried) {
  ChaosRig rig(two_state_policy());
  rig.sds.set_heartbeat_enabled(false);
  rig.sds.add_detector(
      std::make_unique<ScriptedDetector>(
          std::vector<std::vector<std::string>>{{"crash_detected"}}));
  FaultSpec spec;
  spec.error = Errno::eacces;
  spec.match = "events";
  FaultInjector::instance().arm("sackfs.write", spec);

  auto fed = rig.sds.feed(frame_at(0));
  ASSERT_EQ(fed.emitted.size(), 1u);
  EXPECT_TRUE(fed.delivered.empty());  // the failure is visible, not lied about
  EXPECT_EQ(fed.queued_for_retry, 0u);
  EXPECT_EQ(rig.sds.send_failures(), 1u);
  EXPECT_EQ(rig.sds.retry_enqueued(), 0u);
  EXPECT_EQ(rig.mod->current_state_name(), "normal");
  rig.expect_retry_invariant();
}

TEST_F(FaultTransportTest, PermanentEinvalIsNotRetried) {
  ChaosRig rig(two_state_policy());
  rig.sds.set_heartbeat_enabled(false);
  rig.sds.add_detector(
      std::make_unique<ScriptedDetector>(
          std::vector<std::vector<std::string>>{{"crash_detected"}}));
  FaultSpec spec;
  spec.error = Errno::einval;
  spec.match = "events";
  FaultInjector::instance().arm("sackfs.write", spec);

  auto fed = rig.sds.feed(frame_at(0));
  EXPECT_TRUE(fed.delivered.empty());
  EXPECT_EQ(fed.queued_for_retry, 0u);
  EXPECT_EQ(rig.sds.retry_enqueued(), 0u);
}

TEST_F(FaultTransportTest, EnospcBurstRetriesUntilDelivered) {
  ChaosRig rig(two_state_policy());
  rig.sds.set_heartbeat_enabled(false);
  rig.sds.add_detector(
      std::make_unique<ScriptedDetector>(
          std::vector<std::vector<std::string>>{{"crash_detected"}}));
  // Two spurious ENOSPC, then the disk clears.
  FaultSpec spec;
  spec.max_fires = 2;
  spec.error = Errno::enospc;
  spec.match = "events";
  FaultInjector::instance().arm("sackfs.write", spec);

  auto f0 = rig.sds.feed(frame_at(0));
  EXPECT_EQ(f0.queued_for_retry, 1u);
  EXPECT_TRUE(f0.delivered.empty());

  (void)rig.sds.feed(frame_at(100));   // retry #1: second ENOSPC
  auto f2 = rig.sds.feed(frame_at(300));  // retry #2: delivered
  ASSERT_EQ(f2.delivered.size(), 1u);
  EXPECT_EQ(f2.delivered[0], "crash_detected");
  EXPECT_EQ(rig.sds.retry_succeeded(), 1u);
  EXPECT_EQ(rig.sds.send_failures(), 2u);
  EXPECT_EQ(rig.mod->current_state_name(), "emergency");
  rig.expect_retry_invariant();
}

TEST_F(FaultTransportTest, RetryExhaustionIsAccounted) {
  ChaosRig rig(two_state_policy());
  rig.sds.set_heartbeat_enabled(false);
  rig.sds.set_retry_policy(/*base_ms=*/10, /*max_attempts=*/2);
  rig.sds.add_detector(
      std::make_unique<ScriptedDetector>(
          std::vector<std::vector<std::string>>{{"crash_detected"}}));
  FaultSpec spec;
  spec.error = Errno::enospc;
  spec.match = "events";
  FaultInjector::instance().arm("sackfs.write", spec);

  (void)rig.sds.feed(frame_at(0));
  (void)rig.sds.feed(frame_at(100));
  (void)rig.sds.feed(frame_at(200));
  (void)rig.sds.feed(frame_at(300));
  EXPECT_EQ(rig.sds.retry_exhausted(), 1u);
  EXPECT_EQ(rig.sds.retry_depth(), 0u);
  EXPECT_EQ(rig.mod->current_state_name(), "normal");
  rig.expect_retry_invariant();
}

TEST_F(FaultTransportTest, RepeatedEmissionsCoalesceInQueue) {
  ChaosRig rig(two_state_policy());
  rig.sds.set_heartbeat_enabled(false);
  rig.sds.add_detector(std::make_unique<ScriptedDetector>(
      std::vector<std::vector<std::string>>{
          {"crash_detected"}, {"crash_detected"}, {"crash_detected"}}));
  FaultSpec spec;
  spec.error = Errno::enospc;
  spec.match = "events";
  FaultInjector::instance().arm("sackfs.write", spec);

  (void)rig.sds.feed(frame_at(0));
  (void)rig.sds.feed(frame_at(1));  // before the backoff: coalesces
  (void)rig.sds.feed(frame_at(2));
  EXPECT_EQ(rig.sds.retry_enqueued(), 1u);
  EXPECT_EQ(rig.sds.retry_coalesced(), 2u);
  EXPECT_EQ(rig.sds.retry_depth(), 1u);
  rig.expect_retry_invariant();
}

TEST_F(FaultTransportTest, FullQueueEvictsOldestWithAccounting) {
  ChaosRig rig(two_state_policy());
  rig.sds.set_heartbeat_enabled(false);
  std::vector<std::string> burst;
  for (int i = 0; i < 70; ++i) burst.push_back("ev_" + std::to_string(i));
  rig.sds.add_detector(std::make_unique<ScriptedDetector>(
      std::vector<std::vector<std::string>>{burst}));
  FaultSpec spec;
  spec.error = Errno::enospc;
  spec.match = "events";
  FaultInjector::instance().arm("sackfs.write", spec);

  (void)rig.sds.feed(frame_at(0));
  EXPECT_EQ(rig.sds.retry_enqueued(), 70u);
  EXPECT_EQ(rig.sds.retry_depth(), SituationDetectionService::kMaxRetryQueue);
  EXPECT_EQ(rig.sds.retry_dropped(),
            70u - SituationDetectionService::kMaxRetryQueue);
  rig.expect_retry_invariant();
}

TEST_F(FaultTransportTest, SequenceStampsMakeRetriesIdempotent) {
  ChaosRig rig(two_state_policy());
  rig.sds.set_heartbeat_enabled(false);
  rig.sds.add_detector(std::make_unique<ScriptedDetector>(
      std::vector<std::vector<std::string>>{{"crash_detected"},
                                            {"emergency_cleared"}}));
  // The write goes through but the SDS is told it failed — the classic
  // lost-success-report. The retry must not double-transition the kernel.
  // We emulate it by letting the first write succeed, then replaying the
  // same stamped line by hand.
  auto f0 = rig.sds.feed(frame_at(0));
  ASSERT_EQ(f0.delivered.size(), 1u);
  EXPECT_EQ(rig.mod->current_state_name(), "emergency");
  auto f1 = rig.sds.feed(frame_at(100));
  ASSERT_EQ(f1.delivered.size(), 1u);
  EXPECT_EQ(rig.mod->current_state_name(), "normal");

  // Replay of the first (seq=1) write: accepted, but a no-op.
  Process root(rig.kernel, rig.kernel.init_task());
  ASSERT_TRUE(
      root.write_existing("/sys/kernel/security/SACK/events",
                          "seq=1 crash_detected\n")
          .ok());
  EXPECT_EQ(rig.mod->current_state_name(), "normal");
  EXPECT_EQ(rig.mod->events_stale(), 1u);
}

// --- heartbeat loss → watchdog trip → recovery handshake ---

using FaultWatchdogTest = FaultFixture;

TEST_F(FaultWatchdogTest, HeartbeatLossTripsWatchdogThenRecovers) {
  ChaosRig rig(watchdog_policy(500));
  // No detectors: the heartbeat is the only sign of life.
  FaultInjector::instance().arm("sds.heartbeat.drop", FaultSpec{});

  std::int64_t t_ms = 0;
  for (int i = 0; i < 4; ++i) {
    (void)rig.sds.feed(frame_at(t_ms));
    rig.kernel.advance_clock_ms(100);
    t_ms += 100;
  }
  EXPECT_TRUE(rig.mod->sds_alive());  // 400 ms of silence: not yet

  (void)rig.sds.feed(frame_at(t_ms));
  rig.kernel.advance_clock_ms(100);  // exactly the 500 ms deadline
  t_ms += 100;
  EXPECT_FALSE(rig.mod->sds_alive());
  EXPECT_EQ(rig.mod->watchdog_trips(), 1u);
  EXPECT_EQ(rig.mod->current_state_name(), "lockdown");
  EXPECT_EQ(rig.sds.heartbeats_sent(), 0u);

  // The scheduler recovers: the next beacon goes through, the SDS sees
  // resync_pending in its poll and completes the handshake in one frame.
  FaultInjector::instance().disarm("sds.heartbeat.drop");
  (void)rig.sds.feed(frame_at(t_ms));
  EXPECT_TRUE(rig.mod->sds_alive());
  EXPECT_FALSE(rig.mod->resync_pending());
  EXPECT_EQ(rig.mod->resyncs(), 1u);
  EXPECT_EQ(rig.sds.resyncs_sent(), 1u);
  EXPECT_EQ(rig.mod->current_state_name(), "normal");
  EXPECT_EQ(rig.sds.heartbeats_sent(), 1u);
}

// --- detector fault isolation ---

using FaultDetectorTest = FaultFixture;

TEST_F(FaultDetectorTest, ThrowingDetectorIsIsolatedThenQuarantined) {
  ChaosRig rig(two_state_policy());
  rig.sds.set_heartbeat_enabled(false);
  rig.sds.add_default_detectors();
  FaultSpec spec;
  spec.match = "crash";
  FaultInjector::instance().arm("sds.detector.throw", spec);

  SensorFrame f = frame_at(0);
  f.speed_kmh = 80.0;
  f.gear = sds::Gear::drive;
  f.driver_present = true;
  auto fed = rig.sds.feed(f);
  // The crash detector threw, but the others still saw the frame.
  EXPECT_EQ(rig.sds.detector_faults(), 1u);
  bool others_ran = false;
  for (const auto& e : fed.emitted)
    if (e == "start_driving") others_ran = true;
  EXPECT_TRUE(others_ran);

  for (int i = 1; i < sds::SituationDetectionService::kQuarantineAfter; ++i) {
    f.time_ms = i * 100;
    (void)rig.sds.feed(f);
  }
  EXPECT_EQ(rig.sds.detector_faults(),
            static_cast<std::uint64_t>(
                sds::SituationDetectionService::kQuarantineAfter));
  EXPECT_EQ(rig.sds.detectors_quarantined(), 1u);

  // Quarantined: no further faults even with the site still armed.
  f.time_ms = 1000;
  (void)rig.sds.feed(f);
  EXPECT_EQ(rig.sds.detector_faults(),
            static_cast<std::uint64_t>(
                sds::SituationDetectionService::kQuarantineAfter));

  // Restart clears the quarantine; with the fault gone the detector works.
  FaultInjector::instance().disarm("sds.detector.throw");
  rig.sds.reset_detectors();
  f.time_ms = 2000;
  f.crash_signal = true;
  auto recovered = rig.sds.feed(f);
  bool crash_seen = false;
  for (const auto& e : recovered.emitted)
    if (e == "crash_detected") crash_seen = true;
  EXPECT_TRUE(crash_seen);
}

// --- frame starvation ---

using FaultFrameTest = FaultFixture;

TEST_F(FaultFrameTest, DroppedFrameVanishesDelayedFrameIsReplayedInOrder) {
  ChaosRig rig(two_state_policy());
  rig.sds.add_detector(std::make_unique<ScriptedDetector>(
      std::vector<std::vector<std::string>>{{"crash_detected"},
                                            {"emergency_cleared"}}));

  FaultSpec drop;
  drop.max_fires = 1;
  FaultInjector::instance().arm("sds.frame.drop", drop);
  auto dropped = rig.sds.feed(frame_at(0));
  EXPECT_TRUE(dropped.emitted.empty());
  EXPECT_EQ(rig.sds.frames_dropped(), 1u);
  EXPECT_EQ(rig.sds.heartbeats_sent(), 0u);  // dropped before the beacon

  FaultSpec delay;
  delay.max_fires = 1;
  FaultInjector::instance().arm("sds.frame.delay", delay);
  auto delayed = rig.sds.feed(frame_at(100));
  EXPECT_TRUE(delayed.emitted.empty());
  EXPECT_EQ(rig.sds.frames_delayed(), 1u);

  // The backlog frame runs first, then the current one — in arrival order.
  auto resumed = rig.sds.feed(frame_at(200));
  ASSERT_EQ(resumed.delivered.size(), 2u);
  EXPECT_EQ(resumed.delivered[0], "crash_detected");
  EXPECT_EQ(resumed.delivered[1], "emergency_cleared");
  EXPECT_EQ(rig.mod->current_state_name(), "normal");
}

// --- policy reload failure is atomic ---

using FaultReloadTest = FaultFixture;

TEST_F(FaultReloadTest, FailedReloadLeavesRunningPolicyUntouched) {
  ChaosRig rig(watchdog_policy(500));
  rig.kernel.advance_clock_ms(200);

  FaultSpec spec;
  spec.error = Errno::enomem;
  FaultInjector::instance().arm("sack.policy.reload", spec);
  auto rc = rig.mod->load_policy(watchdog_policy(900));
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error(), Errno::enomem);
  ASSERT_TRUE(rig.mod->policy().watchdog.has_value());
  EXPECT_EQ(rig.mod->policy().watchdog->deadline_ms, 500);

  // A section write rides the same path and fails the same way.
  Process admin(rig.kernel, rig.kernel.init_task());
  EXPECT_FALSE(
      admin.write_existing("/sys/kernel/security/SACK/policy/watchdog",
                          "watchdog { deadline 900; failsafe lockdown; }")
          .ok());
  EXPECT_EQ(rig.mod->policy().watchdog->deadline_ms, 500);

  // The failed reload did not restart the liveness clock: the original
  // deadline still counts from t=0 and trips on schedule.
  rig.kernel.advance_clock_ms(300);
  EXPECT_FALSE(rig.mod->sds_alive());
  EXPECT_EQ(rig.mod->current_state_name(), "lockdown");

  FaultInjector::instance().disarm("sack.policy.reload");
  ASSERT_TRUE(rig.mod->load_policy(watchdog_policy(900)).ok());
  EXPECT_EQ(rig.mod->policy().watchdog->deadline_ms, 900);
  EXPECT_TRUE(rig.mod->sds_alive());
}

// --- probabilistic chaos: conservation + determinism ---

using FaultAccountingTest = FaultFixture;

struct ChaosCounters {
  std::uint64_t sent, failures, enqueued, succeeded, coalesced, dropped,
      exhausted, depth;
  bool operator==(const ChaosCounters&) const = default;
};

ChaosCounters run_probabilistic_chaos() {
  FaultInjector::instance().reset();
  FaultSpec spec;
  spec.probability = 0.4;
  spec.seed = 1234;
  spec.error = Errno::enospc;
  spec.match = "events";
  FaultInjector::instance().arm("sackfs.write", spec);
  ChaosRig rig(two_state_policy());
  rig.sds.set_heartbeat_enabled(false);
  std::vector<std::vector<std::string>> script;
  for (int i = 0; i < 200; ++i)
    script.push_back({i % 2 == 0 ? "crash_detected" : "emergency_cleared"});
  rig.sds.add_detector(
      std::make_unique<ScriptedDetector>(std::move(script)));
  for (int i = 0; i < 220; ++i) (void)rig.sds.feed(frame_at(i * 20));
  rig.expect_retry_invariant();
  return ChaosCounters{rig.sds.events_sent(),      rig.sds.send_failures(),
                       rig.sds.retry_enqueued(),   rig.sds.retry_succeeded(),
                       rig.sds.retry_coalesced(),  rig.sds.retry_dropped(),
                       rig.sds.retry_exhausted(),  rig.sds.retry_depth()};
}

TEST_F(FaultAccountingTest, ProbabilisticChaosConservesAndReplays) {
  auto first = run_probabilistic_chaos();
  // The fault stream actually bit: retries happened and recovered.
  EXPECT_GT(first.failures, 0u);
  EXPECT_GT(first.enqueued, 0u);
  EXPECT_GT(first.succeeded, 0u);
  EXPECT_EQ(first.enqueued,
            first.succeeded + first.dropped + first.exhausted + first.depth);

  // Deterministic: the identical seed replays the identical run.
  auto second = run_probabilistic_chaos();
  EXPECT_TRUE(first == second);
}

// --- concurrency: armed probes from many threads (TSan target) ---

using FaultConcurrencyTest = FaultFixture;

TEST_F(FaultConcurrencyTest, ParallelProbesAndRearmAreSafe) {
  auto& fi = FaultInjector::instance();
  FaultSpec site;
  site.probability = 0.5;
  site.seed = 7;
  fi.arm("mt.site", site);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fi] {
      for (int i = 0; i < 2000; ++i) {
        (void)fi.fire("mt.site", "detail");
        (void)fi.fail_errno("mt.other");
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    FaultSpec other;
    other.probability = 0.1;
    other.seed = 9;
    other.error = Errno::eio;
    fi.arm("mt.other", other);
    (void)fi.stats("mt.site");
    fi.disarm("mt.other");
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fi.stats("mt.site").hits, 8000u);
}


TEST_F(FaultConcurrencyTest, ParallelRegistrationAndEnumerationAreSafe) {
  // Regression for the registry lock annotations (sites_/registry_ are
  // SACK_GUARDED_BY(mu_)): register_site()/is_registered()/fault_sites()
  // racing against armed probes must be TSan-clean — the registry map
  // rebalances on insert while fault_sites() walks it.
  auto& fi = FaultInjector::instance();
  FaultSpec site;
  site.probability = 1.0;
  site.seed = 3;
  fi.arm("mt.site", site);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&fi, t] {
      for (int i = 0; i < 500; ++i) {
        fi.register_site("mt.dyn." + std::to_string(t) + "." +
                             std::to_string(i),
                         "registered mid-flight");
        (void)fi.fire("mt.site", "detail");
        (void)fi.is_registered("mt.other");
      }
    });
  }
  std::size_t seen_max = 0;
  for (int i = 0; i < 200; ++i)
    seen_max = std::max(seen_max, fi.fault_sites().size());
  for (auto& th : threads) th.join();
  EXPECT_GE(fi.fault_sites().size(), seen_max);
  EXPECT_TRUE(fi.is_registered("mt.dyn.0.499"));
  EXPECT_EQ(fi.stats("mt.site").hits, 1500u);
}

}  // namespace
}  // namespace sack
