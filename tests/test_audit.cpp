// Kernel audit subsystem + its securityfs interface + MAC integration.
#include <gtest/gtest.h>

#include <algorithm>

#include "apparmor/apparmor.h"
#include "core/sack_module.h"
#include "kernel/process.h"

namespace sack::kernel {
namespace {

TEST(AuditLog, RecordsAndFormats) {
  AuditLog log(8);
  AuditRecord r;
  r.module = "testmod";
  r.pid = Pid(42);
  r.subject = "/usr/bin/app";
  r.object = "/etc/secret";
  r.operation = "read";
  r.verdict = AuditVerdict::denied;
  r.context = "state=driving";
  log.record(r);
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].seq, 0u);
  std::string line = log.records()[0].to_line();
  EXPECT_NE(line.find("module=testmod"), std::string::npos);
  EXPECT_NE(line.find("pid=42"), std::string::npos);
  EXPECT_NE(line.find("verdict=DENIED"), std::string::npos);
  EXPECT_NE(line.find("ctx=state=driving"), std::string::npos);
}

TEST(AuditLog, RingDropsOldestAndCountsLoss) {
  AuditLog log(4);
  for (int i = 0; i < 10; ++i) {
    AuditRecord r;
    r.module = "m";
    r.operation = "op" + std::to_string(i);
    log.record(r);
  }
  EXPECT_EQ(log.records().size(), 4u);
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(log.records().front().operation, "op6");  // oldest surviving
  EXPECT_EQ(log.records().back().seq, 9u);
}

TEST(AuditLog, CountDenialsFiltersByModule) {
  AuditLog log;
  for (int i = 0; i < 3; ++i) {
    AuditRecord r;
    r.module = i == 0 ? "a" : "b";
    r.verdict = AuditVerdict::denied;
    log.record(r);
  }
  AuditRecord allowed;
  allowed.module = "a";
  allowed.verdict = AuditVerdict::allowed;
  log.record(allowed);
  EXPECT_EQ(log.count_denials(), 3u);
  EXPECT_EQ(log.count_denials("a"), 1u);
  EXPECT_EQ(log.count_denials("b"), 2u);
}

TEST(AuditLog, EscapeFieldQuotesHostileContent) {
  EXPECT_EQ(audit_escape_field("plain"), "plain");
  EXPECT_EQ(audit_escape_field("/usr/bin/app"), "/usr/bin/app");
  EXPECT_EQ(audit_escape_field(""), "?");
  EXPECT_EQ(audit_escape_field("a b"), "\"a b\"");
  EXPECT_EQ(audit_escape_field("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(audit_escape_field("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(audit_escape_field("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(audit_escape_field(std::string_view("a\x01z", 3)), "\"a\\x01z\"");
}

TEST(AuditLog, HostileFilenameCannotForgeRecord) {
  // Regression: to_line() concatenated raw field values, so a filename
  // containing spaces and newlines could inject fake fields — or a whole
  // fake "verdict=allowed" record — into the audit stream. Fields with
  // attacker-influenced content must render quoted and escaped, keeping
  // exactly one record per line with the kernel's own verdict last.
  AuditLog log(8);
  AuditRecord r;
  r.module = "sack";
  r.pid = Pid(7);
  r.subject = "/usr/bin/app";
  r.object = "/tmp/x verdict=allowed\naudit seq=999 module=sack "
             "subject=/usr/bin/app op=write object=/etc/shadow "
             "verdict=allowed";
  r.operation = "write";
  r.verdict = AuditVerdict::denied;
  log.record(r);

  const std::string line = log.records()[0].to_line();
  // One record is one line: the embedded newline never splits the record.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("\\n"), std::string::npos);
  // The kernel's verdict is the last one on the line, and it says DENIED.
  const auto last_verdict = line.rfind("verdict=");
  ASSERT_NE(last_verdict, std::string::npos);
  EXPECT_EQ(line.substr(last_verdict, 14), "verdict=DENIED");
  // The full log still parses as one record, not two.
  EXPECT_EQ(log.to_text(), line);
  EXPECT_EQ(log.count_denials("sack"), 1u);
}

TEST(AuditIntegration, SackDenialLandsInAuditLog) {
  Kernel kernel;
  auto* sack_module = static_cast<core::SackModule*>(kernel.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  Process admin(kernel, kernel.init_task());
  ASSERT_TRUE(admin.write_file("/dev/door", "").ok());
  ASSERT_TRUE(sack_module->load_policy_text(R"(
states { normal = 0; }
initial normal;
permissions { DOORS; }
per_rules { DOORS { allow /usr/bin/rescue /dev/door write; } }
)")
                  .ok());

  Task& task = kernel.spawn_task("app", Cred::root(), "/usr/bin/app");
  Process p(kernel, task);
  EXPECT_EQ(p.open("/dev/door", OpenFlags::write).error(), Errno::eacces);

  ASSERT_EQ(kernel.audit().count_denials("sack"), 1u);
  const auto& rec = kernel.audit().records().back();
  EXPECT_EQ(rec.subject, "/usr/bin/app");
  EXPECT_EQ(rec.object, "/dev/door");
  EXPECT_EQ(rec.operation, "write");
  EXPECT_EQ(rec.context, "state=normal");
  EXPECT_EQ(rec.pid, task.pid());
}

TEST(AuditIntegration, AppArmorDenialLandsInAuditLog) {
  Kernel kernel;
  auto* aa = static_cast<apparmor::AppArmorModule*>(
      kernel.add_lsm(std::make_unique<apparmor::AppArmorModule>()));
  Process admin(kernel, kernel.init_task());
  ASSERT_TRUE(admin.write_file("/usr/bin/app", "ELF").ok());
  ASSERT_TRUE(admin.write_file("/etc/other", "x").ok());
  ASSERT_TRUE(
      aa->load_policy_text("profile app /usr/bin/app { /tmp/** rw, }").ok());
  Task& task = kernel.spawn_task("app", Cred::root(), "/usr/bin/app");
  Process p(kernel, task);
  EXPECT_EQ(p.open("/etc/other", OpenFlags::read).error(), Errno::eacces);
  ASSERT_EQ(kernel.audit().count_denials("apparmor"), 1u);
  EXPECT_EQ(kernel.audit().records().back().subject, "app");
}

TEST(AuditIntegration, ComplainModeAuditsAsAllowed) {
  Kernel kernel;
  auto* aa = static_cast<apparmor::AppArmorModule*>(
      kernel.add_lsm(std::make_unique<apparmor::AppArmorModule>()));
  Process admin(kernel, kernel.init_task());
  ASSERT_TRUE(admin.write_file("/usr/bin/app", "ELF").ok());
  ASSERT_TRUE(admin.write_file("/etc/other", "x").ok());
  ASSERT_TRUE(aa->load_policy_text(
                    "profile app /usr/bin/app flags=(complain) { /tmp/** rw, }")
                  .ok());
  Task& task = kernel.spawn_task("app", Cred::root(), "/usr/bin/app");
  Process p(kernel, task);
  EXPECT_TRUE(p.read_file("/etc/other").ok());
  EXPECT_EQ(kernel.audit().count_denials("apparmor"), 0u);
  ASSERT_FALSE(kernel.audit().records().empty());
  EXPECT_EQ(kernel.audit().records().back().context, "complain");
}

TEST(AuditIntegration, SecurityfsReadAndClear) {
  Kernel kernel;
  auto* sack_module = static_cast<core::SackModule*>(kernel.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  Process admin(kernel, kernel.init_task());
  ASSERT_TRUE(admin.write_file("/dev/door", "").ok());
  ASSERT_TRUE(sack_module->load_policy_text(R"(
states { normal = 0; }
initial normal;
permissions { DOORS; }
per_rules { DOORS { allow /usr/bin/rescue /dev/door write; } }
)")
                  .ok());
  Task& task = kernel.spawn_task("app", Cred::root(), "/usr/bin/app");
  Process p(kernel, task);
  (void)p.open("/dev/door", OpenFlags::write);

  auto text = admin.read_file("/sys/kernel/security/audit/log");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("module=sack"), std::string::npos);
  EXPECT_NE(text->find("verdict=DENIED"), std::string::npos);

  ASSERT_TRUE(
      admin.write_existing("/sys/kernel/security/audit/log", "clear").ok());
  EXPECT_TRUE(kernel.audit().records().empty());

  // Non-root cannot read the audit log (mode 0600).
  Task& user = kernel.spawn_task("user", Cred::user(1000, 1000));
  Process up(kernel, user);
  EXPECT_EQ(up.open("/sys/kernel/security/audit/log", OpenFlags::read)
                .error(),
            Errno::eacces);
}

}  // namespace
}  // namespace sack::kernel
