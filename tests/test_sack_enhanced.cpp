// SACK-enhanced AppArmor: the APE patches AppArmor profiles on situation
// transitions; AppArmor enforces.
#include <gtest/gtest.h>

#include "apparmor/apparmor.h"
#include "core/sack_module.h"
#include "kernel/process.h"

namespace sack::core {
namespace {

using apparmor::AppArmorModule;
using kernel::Cred;
using kernel::Fd;
using kernel::Kernel;
using kernel::OpenFlags;
using kernel::Process;
using kernel::Task;

constexpr std::string_view kProfiles = R"(
profile rescue_daemon /usr/bin/rescue_daemon {
  /etc/rescue.conf r,
}
profile media_app /usr/bin/media_app {
  /var/media/** r,
}
)";

constexpr std::string_view kPolicy = R"(
states { normal = 0; emergency = 1; }
initial normal;
transitions {
  normal -> emergency on crash_detected;
  emergency -> normal on emergency_cleared;
}
permissions { DOOR_CONTROL; LOUD_ALERTS; }
state_per {
  emergency: DOOR_CONTROL, LOUD_ALERTS;
}
per_rules {
  DOOR_CONTROL { allow @rescue_daemon /dev/door* write ioctl; }
  LOUD_ALERTS  { allow @media_app /dev/audio write ioctl; }
}
)";

class SackEnhancedTest : public ::testing::Test {
 protected:
  SackEnhancedTest() {
    sack_ = static_cast<SackModule*>(kernel_.add_lsm(
        std::make_unique<SackModule>(SackMode::apparmor_enhanced)));
    aa_ = static_cast<AppArmorModule*>(
        kernel_.add_lsm(std::make_unique<AppArmorModule>()));
    sack_->attach_apparmor(aa_);

    Process admin(kernel_, kernel_.init_task());
    EXPECT_TRUE(admin.write_file("/etc/rescue.conf", "cfg").ok());
    EXPECT_TRUE(admin.write_file("/dev/door0", "").ok());
    EXPECT_TRUE(admin.write_file("/dev/audio", "").ok());
    EXPECT_TRUE(admin.write_file("/usr/bin/rescue_daemon", "ELF").ok());
    EXPECT_TRUE(admin.write_file("/usr/bin/media_app", "ELF").ok());
    EXPECT_TRUE(aa_->load_policy_text(kProfiles).ok());
    EXPECT_TRUE(sack_->load_policy_text(kPolicy).ok());
    rescue_ = &kernel_.spawn_task("rescue", Cred::root(),
                                  "/usr/bin/rescue_daemon");
  }

  Kernel kernel_;
  SackModule* sack_ = nullptr;
  AppArmorModule* aa_ = nullptr;
  Task* rescue_ = nullptr;
};

TEST_F(SackEnhancedTest, RequiresAttachedAppArmor) {
  Kernel k2;
  auto* lone = static_cast<SackModule*>(k2.add_lsm(
      std::make_unique<SackModule>(SackMode::apparmor_enhanced)));
  EXPECT_FALSE(lone->load_policy_text(kPolicy).ok());
}

TEST_F(SackEnhancedTest, BaseProfileHasNoDoorAccess) {
  Process p(kernel_, *rescue_);
  EXPECT_TRUE(p.read_file("/etc/rescue.conf").ok());  // base rule works
  EXPECT_EQ(p.open("/dev/door0", OpenFlags::write).error(), Errno::eacces);
}

TEST_F(SackEnhancedTest, TransitionInjectsRulesIntoProfiles) {
  ASSERT_TRUE(sack_->deliver_event("crash_detected").ok());

  // The rescue profile gained the origin-tagged door rule.
  const auto* profile = aa_->find_profile("rescue_daemon");
  ASSERT_NE(profile, nullptr);
  ASSERT_EQ(profile->rules.size(), 2u);
  EXPECT_EQ(profile->rules[1].origin, "sack:DOOR_CONTROL");

  Process p(kernel_, *rescue_);
  Fd fd = *p.open("/dev/door0", OpenFlags::write);
  EXPECT_TRUE(p.write(fd, "unlock").ok());

  // And media_app got its audio rule.
  const auto* media = aa_->find_profile("media_app");
  ASSERT_EQ(media->rules.size(), 2u);
  EXPECT_EQ(media->rules[1].origin, "sack:LOUD_ALERTS");
}

TEST_F(SackEnhancedTest, ReverseTransitionRetractsRules) {
  ASSERT_TRUE(sack_->deliver_event("crash_detected").ok());
  Process p(kernel_, *rescue_);
  Fd fd = *p.open("/dev/door0", OpenFlags::write);
  EXPECT_TRUE(p.write(fd, "unlock").ok());

  ASSERT_TRUE(sack_->deliver_event("emergency_cleared").ok());
  EXPECT_EQ(aa_->find_profile("rescue_daemon")->rules.size(), 1u);
  // The open fd is revoked through AppArmor's generation bump.
  EXPECT_EQ(p.write(fd, "unlock").error(), Errno::eacces);
  EXPECT_EQ(p.open("/dev/door0", OpenFlags::write).error(), Errno::eacces);
}

TEST_F(SackEnhancedTest, SackDoesNotEnforceByItself) {
  // In enhanced mode an unconfined task is not restricted by SACK: the
  // enforcement lives entirely in AppArmor (matching the paper: the check
  // process is the same as original AppArmor).
  Process p(kernel_, kernel_.init_task());
  EXPECT_TRUE(p.write_file("/dev/door0", "raw").ok());
}

TEST_F(SackEnhancedTest, RepeatedTransitionsAreIdempotent) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sack_->deliver_event("crash_detected").ok());
    EXPECT_EQ(aa_->find_profile("rescue_daemon")->rules.size(), 2u);
    ASSERT_TRUE(sack_->deliver_event("emergency_cleared").ok());
    EXPECT_EQ(aa_->find_profile("rescue_daemon")->rules.size(), 1u);
  }
}

TEST_F(SackEnhancedTest, PolicyReloadRetractsInjectedRules) {
  ASSERT_TRUE(sack_->deliver_event("crash_detected").ok());
  EXPECT_EQ(aa_->find_profile("rescue_daemon")->rules.size(), 2u);
  // Reload: back to initial state, injected rules must be gone.
  ASSERT_TRUE(sack_->load_policy_text(kPolicy).ok());
  EXPECT_EQ(aa_->find_profile("rescue_daemon")->rules.size(), 1u);
}

TEST_F(SackEnhancedTest, MissingProfileIsToleratedAtTransition) {
  ASSERT_TRUE(aa_->remove_profile("media_app").ok());
  // Transition still works; the missing profile's injection is skipped.
  ASSERT_TRUE(sack_->deliver_event("crash_detected").ok());
  EXPECT_EQ(aa_->find_profile("rescue_daemon")->rules.size(), 2u);
}

TEST_F(SackEnhancedTest, DenyRulesInjectAsDenies) {
  constexpr std::string_view kDenyPolicy = R"(
states { normal = 0; driving = 1; }
initial normal;
transitions { normal -> driving on start_driving;
              driving -> normal on stop_driving; }
permissions { QUIET_DRIVE; }
state_per { driving: QUIET_DRIVE; }
per_rules { QUIET_DRIVE { deny @media_app /dev/audio write ioctl; } }
)";
  ASSERT_TRUE(sack_->load_policy_text(kDenyPolicy).ok());
  Task& media = kernel_.spawn_task("media", Cred::root(),
                                   "/usr/bin/media_app");
  Process p(kernel_, media);

  // Give media a base audio rule so the deny has something to override.
  apparmor::Profile prof = *aa_->find_profile("media_app");
  auto glob = Glob::compile("/dev/audio");
  prof.rules.push_back({std::move(glob).value(),
                        apparmor::FilePerm::write | apparmor::FilePerm::ioctl,
                        false, ""});
  ASSERT_TRUE(aa_->replace_profile(std::move(prof)).ok());
  EXPECT_TRUE(p.open("/dev/audio", OpenFlags::write).ok());

  ASSERT_TRUE(sack_->deliver_event("start_driving").ok());
  EXPECT_EQ(p.open("/dev/audio", OpenFlags::write).error(), Errno::eacces);

  ASSERT_TRUE(sack_->deliver_event("stop_driving").ok());
  EXPECT_TRUE(p.open("/dev/audio", OpenFlags::write).ok());
}

}  // namespace
}  // namespace sack::core
