// Type-enforcement module: parser, labeling, domains, enforcement, and
// coexistence with SACK in the LSM stack.
#include <gtest/gtest.h>

#include "core/sack_module.h"
#include "kernel/process.h"
#include "te/te_module.h"

namespace sack::te {
namespace {

using kernel::Cred;
using kernel::Kernel;
using kernel::OpenFlags;
using kernel::Process;
using kernel::Task;

// A do-nothing char device so /dev/audio really is a chardev-class object.
class NullAudioDevice : public kernel::DeviceOps {
 public:
  std::string_view device_name() const override { return "null-audio"; }
  Result<std::size_t> write(Task&, kernel::File&,
                            std::string_view data) override {
    return data.size();
  }
  Result<long> ioctl(Task&, kernel::File&, std::uint32_t, long) override {
    return 0;
  }
};

NullAudioDevice& audio_device() {
  static NullAudioDevice device;
  return device;
}

constexpr std::string_view kPolicy = R"(
# media player domain
type media_t;
type media_exec_t;
type media_file_t;
type audio_dev_t;
type secret_t;

allow media_t media_file_t : file { read getattr };
allow media_t audio_dev_t : chardev { write ioctl };
allow media_t media_exec_t : file { execute getattr };

domain_transition unconfined_t media_exec_t media_t;

filecon /usr/bin/media_app media_exec_t;
filecon /var/media/** media_file_t;
filecon /dev/audio audio_dev_t;
filecon /etc/secret secret_t;
)";

// --- parser ---

TEST(TeParser, ParsesFullPolicy) {
  auto result = parse_te_policy(kPolicy);
  ASSERT_TRUE(result.ok()) << result.errors[0].to_string();
  const TePolicy& p = result.policy;
  EXPECT_EQ(p.types.size(), 5u);
  ASSERT_EQ(p.rules.size(), 3u);
  EXPECT_EQ(p.rules[0].source, "media_t");
  EXPECT_EQ(p.rules[0].cls, TeClass::file);
  EXPECT_TRUE(has_all(p.rules[0].perms, TePerm::read | TePerm::getattr));
  ASSERT_EQ(p.transitions.size(), 1u);
  EXPECT_EQ(p.transitions[0].target_domain, "media_t");
  EXPECT_EQ(p.file_contexts.size(), 4u);
  EXPECT_EQ(p.default_domain, "unconfined_t");
}

TEST(TeParser, RejectsUnknownClassAndPerm) {
  EXPECT_FALSE(parse_te_policy("type a; allow a a : widget { read };").ok());
  EXPECT_FALSE(parse_te_policy("type a; allow a a : file { fly };").ok());
  EXPECT_FALSE(parse_te_policy("type a; allow a a : file { };").ok());
}

TEST(TeChecker, FlagsUndefinedTypes) {
  auto result = parse_te_policy("type a; allow a ghost_t : file { read };");
  ASSERT_TRUE(result.ok());
  auto problems = check_te_policy(result.policy);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("ghost_t"), std::string::npos);
}

// --- module ---

class TeModuleTest : public ::testing::Test {
 protected:
  TeModuleTest() {
    te_ = static_cast<TeModule*>(
        kernel_.add_lsm(std::make_unique<TeModule>()));
    kernel_.vfs().mkdir_p("/var/media");
    Process admin(kernel_, kernel_.init_task());
    EXPECT_TRUE(admin.write_file("/usr/bin/media_app", "ELF").ok());
    EXPECT_TRUE(
        kernel_.sys_chmod(kernel_.init_task(), "/usr/bin/media_app", 0755)
            .ok());
    EXPECT_TRUE(admin.write_file("/var/media/track.pcm", "DATA").ok());
    EXPECT_TRUE(kernel_.register_chardev("/dev/audio", &audio_device()).ok());
    EXPECT_TRUE(admin.write_file("/etc/secret", "s3cret").ok());
    EXPECT_TRUE(te_->load_policy_text(kPolicy).ok());
  }

  Task& media() {
    if (!media_) {
      media_ = &kernel_.spawn_task("sh", Cred::root(), "/bin/sh");
      // Enter the media domain by exec'ing the labeled binary.
      EXPECT_TRUE(kernel_.sys_execve(*media_, "/usr/bin/media_app").ok());
    }
    return *media_;
  }

  Kernel kernel_;
  TeModule* te_ = nullptr;
  Task* media_ = nullptr;
};

TEST_F(TeModuleTest, DomainTransitionOnExec) {
  EXPECT_EQ(te_->domain_of(kernel_.init_task()), "unconfined_t");
  EXPECT_EQ(te_->domain_of(media()), "media_t");
}

TEST_F(TeModuleTest, AllowRulesGrantExactly) {
  Process p(kernel_, media());
  EXPECT_TRUE(p.read_file("/var/media/track.pcm").ok());
  // No write permission on media_file_t.
  EXPECT_EQ(p.open("/var/media/track.pcm", OpenFlags::write).error(),
            Errno::eacces);
  // audio_dev_t: write+ioctl allowed, read not.
  EXPECT_TRUE(p.open("/dev/audio", OpenFlags::write).ok());
  EXPECT_EQ(p.open("/dev/audio", OpenFlags::read).error(), Errno::eacces);
  // Unrelated labels: denied.
  EXPECT_EQ(p.open("/etc/secret", OpenFlags::read).error(), Errno::eacces);
  EXPECT_GT(te_->denial_count(), 0u);
}

TEST_F(TeModuleTest, UnconfinedDomainBypasses) {
  Process p(kernel_, kernel_.init_task());
  EXPECT_TRUE(p.read_file("/etc/secret").ok());
}

TEST_F(TeModuleTest, DomainInheritedOnFork) {
  Pid child = *kernel_.sys_fork(media());
  EXPECT_EQ(te_->domain_of(kernel_.task(child).value()), "media_t");
}

TEST_F(TeModuleTest, LabelsCachedAndRelabeledOnReload) {
  Process p(kernel_, media());
  EXPECT_TRUE(p.read_file("/var/media/track.pcm").ok());
  // Reload with the media tree relabeled as secret: access must flip.
  std::string flipped(kPolicy);
  flipped += "\nfilecon /var/media/** secret_t;\n";
  ASSERT_TRUE(te_->load_policy_text(flipped).ok());
  EXPECT_EQ(p.open("/var/media/track.pcm", OpenFlags::read).error(),
            Errno::eacces);
}

TEST_F(TeModuleTest, ExecIntoUnlabeledBinaryDeniedForConfined) {
  Process admin(kernel_, kernel_.init_task());
  ASSERT_TRUE(admin.write_file("/usr/bin/other", "ELF").ok());
  ASSERT_TRUE(
      kernel_.sys_chmod(kernel_.init_task(), "/usr/bin/other", 0755).ok());
  EXPECT_EQ(kernel_.sys_execve(media(), "/usr/bin/other").error(),
            Errno::eacces);
}

TEST_F(TeModuleTest, PolicyLoadViaSecurityfsNeedsMacAdmin) {
  Task& user = kernel_.spawn_task("user", Cred::user(1000, 1000));
  user.cred().caps.add(kernel::Capability::dac_override);
  Process up(kernel_, user);
  EXPECT_EQ(up.write_existing("/sys/kernel/security/setype/policy",
                              "type x;")
                .error(),
            Errno::eperm);
  Process admin(kernel_, kernel_.init_task());
  EXPECT_TRUE(admin
                  .write_existing("/sys/kernel/security/setype/policy",
                                  std::string(kPolicy))
                  .ok());
}

// --- booleans (conditional policy, the pre-SACK adaptation mechanism) ---

constexpr std::string_view kBooleanPolicy = R"(
type rescue_t;
type rescue_exec_t;
type door_dev_t;
bool emergency_mode false;
allow rescue_t rescue_exec_t : file { execute getattr };
if emergency_mode {
  allow rescue_t door_dev_t : chardev { write ioctl };
}
domain_transition unconfined_t rescue_exec_t rescue_t;
filecon /usr/bin/rescued rescue_exec_t;
filecon /dev/door door_dev_t;
)";

class TeBooleanTest : public ::testing::Test {
 protected:
  TeBooleanTest() {
    te_ = static_cast<TeModule*>(
        kernel_.add_lsm(std::make_unique<TeModule>()));
    Process admin(kernel_, kernel_.init_task());
    EXPECT_TRUE(admin.write_file("/usr/bin/rescued", "ELF").ok());
    EXPECT_TRUE(
        kernel_.sys_chmod(kernel_.init_task(), "/usr/bin/rescued", 0755).ok());
    EXPECT_TRUE(kernel_.register_chardev("/dev/door", &audio_device()).ok());
    EXPECT_TRUE(te_->load_policy_text(kBooleanPolicy).ok());
    rescue_ = &kernel_.spawn_task("sh", Cred::root(), "/bin/sh");
    EXPECT_TRUE(kernel_.sys_execve(*rescue_, "/usr/bin/rescued").ok());
  }

  Kernel kernel_;
  TeModule* te_ = nullptr;
  Task* rescue_ = nullptr;
};

TEST_F(TeBooleanTest, ConditionalRuleFollowsBoolean) {
  Process p(kernel_, *rescue_);
  EXPECT_EQ(p.open("/dev/door", OpenFlags::write).error(), Errno::eacces);
  ASSERT_TRUE(te_->set_boolean("emergency_mode", true).ok());
  EXPECT_TRUE(p.open("/dev/door", OpenFlags::write).ok());
  ASSERT_TRUE(te_->set_boolean("emergency_mode", false).ok());
  EXPECT_EQ(p.open("/dev/door", OpenFlags::write).error(), Errno::eacces);
}

TEST_F(TeBooleanTest, SecurityfsBooleanInterface) {
  Process admin(kernel_, kernel_.init_task());
  EXPECT_EQ(*admin.read_file("/sys/kernel/security/setype/booleans"),
            "emergency_mode 0\n");
  ASSERT_TRUE(admin
                  .write_existing("/sys/kernel/security/setype/booleans",
                                  "emergency_mode 1")
                  .ok());
  EXPECT_EQ(*te_->get_boolean("emergency_mode"), true);
  EXPECT_EQ(admin
                .write_existing("/sys/kernel/security/setype/booleans",
                                "no_such_bool 1")
                .error(),
            Errno::enoent);
  EXPECT_EQ(admin
                .write_existing("/sys/kernel/security/setype/booleans",
                                "emergency_mode maybe")
                .error(),
            Errno::einval);
}

TEST_F(TeBooleanTest, UndeclaredConditionRejectedAtLoad) {
  EXPECT_FALSE(te_->load_policy_text(R"(
type a_t;
if ghost_bool { allow a_t a_t : file { read }; }
)")
                   .ok());
}

TEST_F(TeBooleanTest, BooleanFlipDoesNotRevokeOpenFds) {
  // The design gap SACK closes: TE booleans change future decisions but a
  // kept-open fd retains access (no file_permission revalidation), whereas
  // SACK's generation bump revokes in-flight fds on situation change
  // (SackModuleTest.OpenFdRevokedOnTransition).
  ASSERT_TRUE(te_->set_boolean("emergency_mode", true).ok());
  Process p(kernel_, *rescue_);
  auto fd = p.open("/dev/door", OpenFlags::write);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(te_->set_boolean("emergency_mode", false).ok());
  EXPECT_TRUE(p.write(*fd, "unlock").ok());  // still allowed: the gap
  EXPECT_EQ(p.open("/dev/door", OpenFlags::write).error(), Errno::eacces);
}

// --- SACK + TE coexistence (generalizes the paper's §IV-D claim) ---

TEST(TeWithSack, StackedEnforcementIsConjunction) {
  Kernel kernel;
  auto* sack_module = static_cast<core::SackModule*>(kernel.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  auto* te = static_cast<TeModule*>(
      kernel.add_lsm(std::make_unique<TeModule>()));

  kernel.vfs().mkdir_p("/var/media");
  Process admin(kernel, kernel.init_task());
  ASSERT_TRUE(admin.write_file("/usr/bin/media_app", "ELF").ok());
  ASSERT_TRUE(
      kernel.sys_chmod(kernel.init_task(), "/usr/bin/media_app", 0755).ok());
  ASSERT_TRUE(admin.write_file("/var/media/track.pcm", "DATA").ok());
  ASSERT_TRUE(kernel.register_chardev("/dev/audio", &audio_device()).ok());

  ASSERT_TRUE(te->load_policy_text(kPolicy).ok());
  ASSERT_TRUE(sack_module->load_policy_text(R"(
states { normal = 0; driving = 1; }
initial normal;
transitions { normal -> driving on start_driving;
              driving -> normal on stop_driving; }
permissions { MEDIA; }
state_per { normal: MEDIA; }
per_rules { MEDIA { allow * /var/media/** read getattr; } }
)")
                  .ok());

  Task& task = kernel.spawn_task("sh", Cred::root(), "/bin/sh");
  ASSERT_TRUE(kernel.sys_execve(task, "/usr/bin/media_app").ok());
  Process p(kernel, task);

  // normal: both modules allow reads.
  EXPECT_TRUE(p.read_file("/var/media/track.pcm").ok());
  // TE allows audio writes, but SACK guards nothing there -> allowed.
  EXPECT_TRUE(p.open("/dev/audio", OpenFlags::write).ok());

  // driving: SACK retracts MEDIA -> denied even though TE still allows.
  ASSERT_TRUE(sack_module->deliver_event("start_driving").ok());
  EXPECT_EQ(p.open("/var/media/track.pcm", OpenFlags::read).error(),
            Errno::eacces);

  // back to normal: SACK allows again; TE still vetoes what it never
  // allowed (writes to media files), proving deny-wins conjunction.
  ASSERT_TRUE(sack_module->deliver_event("stop_driving").ok());
  EXPECT_TRUE(p.read_file("/var/media/track.pcm").ok());
  EXPECT_EQ(p.open("/var/media/track.pcm", OpenFlags::write).error(),
            Errno::eacces);
}

}  // namespace
}  // namespace sack::te
