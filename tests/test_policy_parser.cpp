// SACK policy language: parsing, canonical dump round-trip, section merge.
#include <gtest/gtest.h>

#include "core/policy_builder.h"
#include "core/policy_parser.h"

namespace sack::core {
namespace {

constexpr std::string_view kFullPolicy = R"(
# SACK example policy
states {
  normal = 0;
  emergency = 4;
}
initial normal;
transitions {
  normal -> emergency on crash_detected;
  emergency -> normal on emergency_cleared;
}
events { crash_detected; emergency_cleared; }
permissions {
  NORMAL;
  CONTROL_CAR_DOORS;
}
state_per {
  normal: NORMAL;
  emergency: NORMAL, CONTROL_CAR_DOORS;
}
per_rules {
  NORMAL {
    allow * /var/media/** read;
  }
  CONTROL_CAR_DOORS {
    allow @rescue_daemon /dev/vehicle/door* write ioctl;
    allow /usr/bin/rescue* /dev/vehicle/window* ioctl;
    deny * /dev/vehicle/door3 write;
  }
}
)";

TEST(PolicyParser, ParsesFullDocument) {
  SectionPresence presence;
  auto result = parse_policy(kFullPolicy, &presence);
  ASSERT_TRUE(result.ok()) << result.errors[0].to_string();
  const SackPolicy& p = result.policy;

  EXPECT_TRUE(presence.states);
  EXPECT_TRUE(presence.permissions);
  EXPECT_TRUE(presence.state_per);
  EXPECT_TRUE(presence.per_rules);

  ASSERT_EQ(p.states.size(), 2u);
  EXPECT_EQ(p.states[1].name, "emergency");
  EXPECT_EQ(p.states[1].encoding, 4);
  EXPECT_EQ(p.initial_state, "normal");
  ASSERT_EQ(p.transitions.size(), 2u);
  EXPECT_EQ(p.transitions[0].event, "crash_detected");
  EXPECT_EQ(p.permissions.size(), 2u);
  EXPECT_EQ(p.permissions_of("emergency").size(), 2u);

  const auto& door_rules = p.per_rules.at("CONTROL_CAR_DOORS");
  ASSERT_EQ(door_rules.size(), 3u);
  EXPECT_EQ(door_rules[0].subject_kind, SubjectKind::profile);
  EXPECT_EQ(door_rules[0].subject_text, "rescue_daemon");
  EXPECT_TRUE(has_all(door_rules[0].ops, MacOp::write | MacOp::ioctl));
  EXPECT_EQ(door_rules[1].subject_kind, SubjectKind::path);
  EXPECT_TRUE(door_rules[1].subject_glob.matches("/usr/bin/rescue_daemon"));
  EXPECT_EQ(door_rules[2].effect, RuleEffect::deny);
  EXPECT_EQ(door_rules[2].subject_kind, SubjectKind::any);
}

TEST(PolicyParser, CanonicalDumpRoundTrips) {
  auto first = parse_policy(kFullPolicy);
  ASSERT_TRUE(first.ok());
  std::string dumped = first.policy.to_text();
  auto second = parse_policy(dumped);
  ASSERT_TRUE(second.ok()) << dumped;
  EXPECT_EQ(second.policy.states.size(), first.policy.states.size());
  EXPECT_EQ(second.policy.initial_state, first.policy.initial_state);
  EXPECT_EQ(second.policy.transitions.size(),
            first.policy.transitions.size());
  EXPECT_EQ(second.policy.permissions, first.policy.permissions);
  EXPECT_EQ(second.policy.state_per, first.policy.state_per);
  ASSERT_EQ(second.policy.per_rules.size(), first.policy.per_rules.size());
  EXPECT_EQ(second.policy.per_rules.at("CONTROL_CAR_DOORS").size(), 3u);
  // And the dump is a fixed point.
  EXPECT_EQ(second.policy.to_text(), dumped);
}

TEST(PolicyParser, PartialDocumentsReportPresence) {
  SectionPresence presence;
  auto result = parse_policy("permissions { A; B; }", &presence);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(presence.states);
  EXPECT_TRUE(presence.permissions);
  EXPECT_FALSE(presence.state_per);
  EXPECT_EQ(result.policy.permissions.size(), 2u);
}

TEST(PolicyParser, MergeReplacesOnlyPresentSections) {
  auto base = parse_policy(kFullPolicy).policy;
  SectionPresence presence;
  auto incoming = parse_policy("permissions { ONLY_ONE; }", &presence);
  ASSERT_TRUE(incoming.ok());
  merge_policy_sections(base, incoming.policy, presence);
  EXPECT_EQ(base.permissions, std::vector<std::string>{"ONLY_ONE"});
  EXPECT_EQ(base.states.size(), 2u);           // untouched
  EXPECT_EQ(base.per_rules.size(), 2u);        // untouched
}

TEST(PolicyParser, ErrorsCarryPositionsAndRecover) {
  auto result = parse_policy(R"(
states {
  ok_state = 0;
  broken @;
  another = 2;
}
initial ok_state;
)");
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.errors.empty());
  EXPECT_EQ(result.errors[0].line, 4);
  // Recovery: the following state still parsed.
  EXPECT_EQ(result.policy.states.size(), 2u);
}

TEST(PolicyParser, UnknownOpRejected) {
  auto result = parse_policy(R"(
per_rules { P { allow * /x fly; } }
)");
  EXPECT_FALSE(result.ok());
}

TEST(PolicyParser, RuleWithoutOpsRejected) {
  auto result = parse_policy("per_rules { P { allow * /x; } }");
  EXPECT_FALSE(result.ok());
}

TEST(PolicyParser, UnknownSectionKeywordRejected) {
  auto result = parse_policy("bogus { }");
  EXPECT_FALSE(result.ok());
}

TEST(PolicyParser, CommaSeparatedOpsAccepted) {
  auto result = parse_policy("per_rules { P { allow * /x read,write,ioctl; } }");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(has_all(result.policy.per_rules.at("P")[0].ops,
                      MacOp::read | MacOp::write | MacOp::ioctl));
}

TEST(PolicyParser, MacRuleToTextRoundTrips) {
  auto rule = make_rule(RuleEffect::deny, "@media", "/dev/audio",
                        MacOp::ioctl | MacOp::write);
  ASSERT_TRUE(rule.ok());
  std::string text = "per_rules { P { " + rule->to_text() + " } }";
  auto parsed = parse_policy(text);
  ASSERT_TRUE(parsed.ok()) << text;
  const MacRule& r = parsed.policy.per_rules.at("P")[0];
  EXPECT_EQ(r.effect, RuleEffect::deny);
  EXPECT_EQ(r.subject_text, "media");
  EXPECT_EQ(r.ops, MacOp::ioctl | MacOp::write);
}

}  // namespace
}  // namespace sack::core
