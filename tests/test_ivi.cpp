// IVI case studies (paper §IV-C) and compatibility (§IV-D).
#include <gtest/gtest.h>

#include "core/policy_builder.h"
#include "ivi/ivi_system.h"
#include "simbench/policy_gen.h"

namespace sack::ivi {
namespace {

using kernel::OpenFlags;

// --- the paper's headline case study: unlock car doors only in emergencies.

class CaseStudyTest : public ::testing::TestWithParam<MacConfig> {};

TEST_P(CaseStudyTest, DoorUnlockOnlyInEmergency) {
  IviSystem ivi({.mac = GetParam()});
  ASSERT_TRUE(ivi.hardware().state().all_doors_locked());

  // Normal situation: the rescue daemon must NOT be able to unlock doors.
  auto normal_attempt = ivi.rescue().respond_to_emergency();
  EXPECT_TRUE(normal_attempt.all_denied());
  EXPECT_TRUE(ivi.hardware().state().all_doors_locked());
  EXPECT_FALSE(ivi.hardware().state().any_window_open());

  // A crash happens (react app triggers the vehicle crash event).
  ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
  EXPECT_EQ(ivi.situation(), "emergency");

  // Break the glass: now the rescue daemon can open everything.
  auto emergency_attempt = ivi.rescue().respond_to_emergency();
  EXPECT_TRUE(emergency_attempt.all_ok())
      << "first failure: "
      << (emergency_attempt.attempts.empty()
              ? "?"
              : emergency_attempt.attempts[0].action);
  EXPECT_FALSE(ivi.hardware().state().all_doors_locked());
  EXPECT_TRUE(ivi.hardware().state().any_window_open());

  // Rescue crews secure the car, the emergency clears, privileges vanish.
  ASSERT_TRUE(ivi.rescue().secure_vehicle().all_ok());
  ASSERT_TRUE(ivi.sds().send_event("emergency_cleared").ok());
  EXPECT_EQ(ivi.situation(), "parked_with_driver");
  EXPECT_TRUE(ivi.rescue().respond_to_emergency().all_denied());
  EXPECT_TRUE(ivi.hardware().state().all_doors_locked());
}

INSTANTIATE_TEST_SUITE_P(BothSackModes, CaseStudyTest,
                         ::testing::Values(MacConfig::independent_sack,
                                           MacConfig::sack_enhanced_apparmor),
                         [](const auto& info) {
                           return info.param == MacConfig::independent_sack
                                      ? "IndependentSack"
                                      : "SackEnhancedAppArmor";
                         });

// --- KOFFEE (CVE-2020-8539): command injection past user-space checks.

TEST(KoffeeAttack, BaselineAppArmorBlocksConfinedAttacker) {
  // The attacker rides the confined-but-over-networked ota_helper; its
  // profile has no vehicle-device rules, so AppArmor blocks the injection.
  IviSystem ivi({.mac = MacConfig::apparmor_only});
  auto log = ivi.attacker().inject_vehicle_control();
  EXPECT_TRUE(log.all_denied());
  EXPECT_TRUE(ivi.hardware().state().all_doors_locked());
}

TEST(KoffeeAttack, BaselineAppArmorMissesUnconfinedAttacker) {
  // But an injected binary AppArmor never heard of runs unconfined: with a
  // static profile set the attack goes through. This is the gap SACK closes.
  IviSystem ivi({.mac = MacConfig::apparmor_only});
  auto& kernel = ivi.kernel();
  auto& task = kernel.spawn_task("dropped", kernel::Cred::root(),
                                 "/usr/bin/dropped_payload");
  KoffeeInjector dropped{kernel::Process(kernel, task)};
  auto log = dropped.inject_vehicle_control();
  EXPECT_TRUE(log.all_ok());  // the attack succeeds
  EXPECT_FALSE(ivi.hardware().state().all_doors_locked());
}

TEST(KoffeeAttack, IndependentSackBlocksEvenUnconfinedAttacker) {
  // Independent SACK guards the device objects themselves: subject identity
  // doesn't help an attacker the policy never allowed.
  IviSystem ivi({.mac = MacConfig::independent_sack});
  auto& kernel = ivi.kernel();
  auto& task = kernel.spawn_task("dropped", kernel::Cred::root(),
                                 "/usr/bin/dropped_payload");
  KoffeeInjector dropped{kernel::Process(kernel, task)};
  EXPECT_TRUE(dropped.inject_vehicle_control().all_denied());
  EXPECT_TRUE(ivi.hardware().state().all_doors_locked());

  // Even in an emergency only the rescue daemon's paths gain access.
  ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
  EXPECT_TRUE(dropped.inject_vehicle_control().all_denied());
}

TEST(KoffeeAttack, AttackerCannotForgeSituationEvents) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  // SACKfs events file is 0200 root-owned; the attacker process runs as
  // root here (worst case) so drop its caps to model a sandboxed service.
  auto& kernel = ivi.kernel();
  auto& task = kernel.spawn_task("evil", kernel::Cred::user(1000, 1000),
                                 "/usr/bin/evil");
  kernel::Process evil(kernel, task);
  EXPECT_EQ(evil.open("/sys/kernel/security/SACK/events", OpenFlags::write)
                .error(),
            Errno::eacces);
  EXPECT_EQ(ivi.situation(), "parked_with_driver");
}

// --- CVE-2023-6073: volume to max while driving.

TEST(Cve20236073, MediaAppVolumeAllowedWhenPermitted) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  // parked_with_driver grants AUDIO_CONTROL to the media app.
  ASSERT_TRUE(ivi.media().set_volume(15).ok());
  EXPECT_EQ(ivi.hardware().state().audio_volume, 15);
}

TEST(Cve20236073, AttackerVolumeInjectionBlocked) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  EXPECT_FALSE(ivi.attacker().max_volume().ok());
  EXPECT_NE(ivi.hardware().state().audio_volume, kMaxVolume);
}

TEST(Cve20236073, NoAudioControlWithoutDriver) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  ASSERT_TRUE(ivi.sds().send_event("parked_without_driver").ok());
  EXPECT_EQ(ivi.situation(), "parked_without_driver");
  // Even the legitimate media app loses AUDIO_CONTROL (POLP).
  EXPECT_FALSE(ivi.media().set_volume(20).ok());
  ASSERT_TRUE(ivi.sds().send_event("parked_with_driver").ok());
  EXPECT_TRUE(ivi.media().set_volume(20).ok());
}

// --- media reading across situations ---

TEST(MediaAccess, ReadableInAllDefaultStates) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  EXPECT_TRUE(ivi.media().play_track(IviSystem::kMediaTrack).ok());
  ASSERT_TRUE(ivi.sds().send_event("start_driving").ok());
  EXPECT_TRUE(ivi.media().play_track(IviSystem::kMediaTrack).ok());
  ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
  EXPECT_TRUE(ivi.media().play_track(IviSystem::kMediaTrack).ok());
}

TEST(MediaAccess, SensitiveFileUnguardedButDacProtected) {
  IviSystem ivi({.mac = MacConfig::independent_sack});
  // /etc/vehicle/vin is not in any SACK rule -> SACK doesn't mediate it;
  // root attacker reads it via DAC. (Defense in depth would add a rule.)
  EXPECT_TRUE(ivi.attacker().read_sensitive(IviSystem::kSensitiveFile).ok());
}

// --- §IV-D compatibility: SACK stacked before AppArmor (E7) ---

TEST(Compatibility, TenPoliciesCoexistWithDefaultAppArmor) {
  auto policies = simbench::compatibility_policies();
  ASSERT_EQ(policies.size(), 10u);
  for (std::size_t i = 0; i < policies.size(); ++i) {
    IviSystem ivi({.mac = MacConfig::stacked_independent});
    auto rc = ivi.sack()->load_policy(policies[i]);
    ASSERT_TRUE(rc.ok()) << "policy " << i;

    // AppArmor's own profiles still enforce underneath SACK.
    ASSERT_NE(ivi.apparmor(), nullptr);
    EXPECT_NE(ivi.apparmor()->find_profile("media_app"), nullptr);
    // Media app still plays media (allowed by both modules or unguarded).
    EXPECT_TRUE(ivi.media().play_track(IviSystem::kMediaTrack).ok())
        << "policy " << i;
    // The attacker still cannot touch vehicle devices (AppArmor profile).
    EXPECT_TRUE(ivi.attacker().inject_vehicle_control().all_denied())
        << "policy " << i;
  }
}

TEST(Compatibility, SackDeniesBeforeAppArmorSees) {
  // Whitelist stacking: SACK first; when SACK denies, AppArmor's verdict is
  // irrelevant. Construct a SACK policy denying media reads in 'special'.
  IviSystem ivi({.mac = MacConfig::stacked_independent});
  core::PolicyBuilder b;
  b.state("normal", 0)
      .state("special", 1)
      .initial("normal")
      .transition("normal", "enter_special", "special")
      .transition("special", "leave_special", "normal")
      .permission("MEDIA")
      .grant("normal", "MEDIA")
      .allow("MEDIA", "*", "/var/media/**", core::MacOp::read |
                                                core::MacOp::getattr);
  ASSERT_TRUE(ivi.sack()->load_policy(b.build()).ok());

  EXPECT_TRUE(ivi.media().play_track(IviSystem::kMediaTrack).ok());
  ASSERT_TRUE(ivi.sds().send_event("enter_special").ok());
  // Media files are guarded and MEDIA is inactive: SACK denies although the
  // AppArmor profile still allows /var/media/** r.
  EXPECT_FALSE(ivi.media().play_track(IviSystem::kMediaTrack).ok());
  ASSERT_TRUE(ivi.sds().send_event("leave_special").ok());
  EXPECT_TRUE(ivi.media().play_track(IviSystem::kMediaTrack).ok());
}

TEST(Compatibility, ModuleOrderReportedAsConfigured) {
  IviSystem ivi({.mac = MacConfig::stacked_independent});
  auto names = ivi.kernel().lsm().module_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "capability");
  EXPECT_EQ(names[1], "sack");      // CONFIG_LSM="sack,apparmor"
  EXPECT_EQ(names[2], "apparmor");
}

// --- hardware model sanity ---

TEST(VehicleHardwareModel, IoctlContract) {
  IviSystem ivi({.mac = MacConfig::none});
  auto admin = ivi.admin_process();
  auto fd = admin.open(VehicleHardware::kDoorPath, OpenFlags::write);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(admin.ioctl(*fd, VEH_DOOR_UNLOCK, 2).ok());
  EXPECT_FALSE(ivi.hardware().state().door_locked[2]);
  EXPECT_TRUE(ivi.hardware().state().door_locked[0]);
  auto status = admin.ioctl(*fd, VEH_DOOR_STATUS, 0);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status, 0b1011);
  EXPECT_EQ(admin.ioctl(*fd, VEH_DOOR_UNLOCK, 99).error(), Errno::einval);

  auto wfd = admin.open(VehicleHardware::kWindowPath, OpenFlags::write);
  ASSERT_TRUE(wfd.ok());
  EXPECT_TRUE(admin.ioctl(*wfd, VEH_WINDOW_SET, (2L << 8) | 40).ok());
  EXPECT_EQ(ivi.hardware().state().window_open_pct[2], 40);
  EXPECT_EQ(*admin.ioctl(*wfd, VEH_WINDOW_GET, 2), 40);

  EXPECT_EQ(ivi.hardware().actuations().size(), 2u);
}

}  // namespace
}  // namespace sack::ivi
