// Glob subsumption decision procedure (util/glob_subsume.h): containment
// verdicts and witness paths. Every `diverges` case cross-checks the witness
// against the real matcher, so the procedure can never drift from the glob
// semantics it claims to decide.
#include <gtest/gtest.h>

#include "util/glob.h"
#include "util/glob_subsume.h"

namespace sack {
namespace {

Glob g(std::string_view pattern) {
  auto r = Glob::compile(pattern);
  EXPECT_TRUE(r.ok()) << pattern;
  return std::move(r).value();
}

SubsumeVerdict check(std::string_view general, std::string_view specific) {
  Glob gen = g(general), spec = g(specific);
  SubsumeVerdict v = glob_subsumes(gen, spec);
  if (v.kind == SubsumeVerdict::Kind::diverges) {
    // The witness must actually separate the languages.
    EXPECT_TRUE(spec.matches(v.witness))
        << "witness '" << v.witness << "' not matched by specific '"
        << specific << "'";
    EXPECT_FALSE(gen.matches(v.witness))
        << "witness '" << v.witness << "' matched by general '" << general
        << "'";
  }
  return v;
}

bool subsumes(std::string_view general, std::string_view specific) {
  return check(general, specific).subsumes();
}

TEST(GlobSubsume, IdenticalPatterns) {
  EXPECT_TRUE(subsumes("/a/b", "/a/b"));
  EXPECT_TRUE(subsumes("/dev/vehicle/door*", "/dev/vehicle/door*"));
  EXPECT_TRUE(subsumes("/var/**", "/var/**"));
}

TEST(GlobSubsume, LiteralUnderGlob) {
  EXPECT_TRUE(subsumes("/data/**", "/data/logs/app.log"));
  EXPECT_TRUE(subsumes("/data/*", "/data/app.log"));
  EXPECT_FALSE(subsumes("/data/*", "/data/logs/app.log"));  // '*' stops at '/'
  EXPECT_FALSE(subsumes("/data/logs/app.log", "/data/**"));
}

TEST(GlobSubsume, StarVsDeepStar) {
  EXPECT_TRUE(subsumes("/a/**", "/a/*"));
  EXPECT_FALSE(subsumes("/a/*", "/a/**"));
  EXPECT_TRUE(subsumes("/**", "/a/b/c"));
  EXPECT_FALSE(subsumes("/a/**", "/b/**"));
}

TEST(GlobSubsume, QuestionMark) {
  EXPECT_TRUE(subsumes("/dev/tty?", "/dev/tty1"));
  EXPECT_TRUE(subsumes("/dev/tty*", "/dev/tty?"));
  EXPECT_FALSE(subsumes("/dev/tty?", "/dev/tty12"));
  EXPECT_FALSE(subsumes("/dev/tty?", "/dev/tty*"));  // '*' can be empty
}

TEST(GlobSubsume, CharClasses) {
  EXPECT_TRUE(subsumes("/dev/tty[0-9]", "/dev/tty[0-3]"));
  EXPECT_FALSE(subsumes("/dev/tty[0-3]", "/dev/tty[0-9]"));
  EXPECT_TRUE(subsumes("/dev/tty?", "/dev/tty[0-9]"));
  EXPECT_FALSE(subsumes("/dev/tty[0-9]", "/dev/tty?"));
  // Negated classes: [^a] still never matches '/'.
  EXPECT_TRUE(subsumes("/x/?", "/x/[^a]"));
  EXPECT_FALSE(subsumes("/x/[^a]", "/x/?"));  // '?' admits 'a'
}

TEST(GlobSubsume, BraceAlternation) {
  EXPECT_TRUE(subsumes("/dev/{door,window}*", "/dev/door1"));
  EXPECT_TRUE(subsumes("/dev/{door,window}*", "/dev/door*"));
  EXPECT_FALSE(subsumes("/dev/door*", "/dev/{door,window}*"));
  EXPECT_TRUE(subsumes("/a/{b,c}/**", "/a/{c,b}/**"));  // order-insensitive
}

TEST(GlobSubsume, EmptyStarSuffix) {
  // `door*` matches "door" itself; the general side must cover that.
  EXPECT_TRUE(subsumes("/dev/door*", "/dev/door"));
  EXPECT_FALSE(subsumes("/dev/door?", "/dev/door*"));
}

TEST(GlobSubsume, DivergenceWitnessIsShortest) {
  auto v = check("/data/logs/**", "/data/**");
  ASSERT_EQ(v.kind, SubsumeVerdict::Kind::diverges);
  // The shortest separator is /data/<one unmentioned char> or similar —
  // certainly shorter than any path under /data/logs/.
  EXPECT_LT(v.witness.size(), std::string("/data/logs/x").size());
}

TEST(GlobSubsume, IssueExample) {
  // The motivating checker case: an allow on a literal under a broad deny.
  EXPECT_TRUE(subsumes("/data/**", "/data/logs/app.log"));
}

TEST(GlobSubsume, EscapedMetacharacters) {
  EXPECT_TRUE(subsumes("/a/\\*", "/a/\\*"));
  EXPECT_FALSE(subsumes("/a/\\*", "/a/b"));
  EXPECT_TRUE(subsumes("/a/*", "/a/\\*"));  // literal '*' is one non-'/' char
}

TEST(GlobSubsume, UndecidedOnBudget) {
  // A pathological pattern pair that blows the subset budget when it is
  // artificially tiny; the caller must get "no claim", not a wrong answer.
  Glob gen = g("/*a*a*a*a*a*a*a*a*");
  Glob spec = g("/*a*a*a*a*a*a*a*a*a*");
  SubsumeVerdict v = glob_subsumes(gen, spec, /*state_limit=*/4);
  EXPECT_EQ(v.kind, SubsumeVerdict::Kind::undecided);
}

TEST(GlobSubsume, SlashBoundaries) {
  EXPECT_TRUE(subsumes("/a/**", "/a/b/c/d"));
  EXPECT_FALSE(subsumes("/a/*/c", "/a/b/b/c"));
  EXPECT_TRUE(subsumes("/a/*/c", "/a/b/c"));
  EXPECT_FALSE(subsumes("/a/*", "/a/*/"));
  // '**' crosses separators both ways.
  EXPECT_TRUE(subsumes("/**", "/a/**"));
}

}  // namespace
}  // namespace sack
