// Cross-cutting property tests: parser robustness under fuzzed input,
// stacking-as-conjunction, and the enforcement model equivalence between the
// SackModule (full kernel path) and the bare rule set.
#include <gtest/gtest.h>

#include "apparmor/parser.h"
#include "core/policy_builder.h"
#include "core/policy_parser.h"
#include "core/sack_module.h"
#include "kernel/process.h"
#include "te/te_policy.h"
#include "util/rng.h"

namespace sack {
namespace {

using kernel::Cred;
using kernel::Kernel;
using kernel::OpenFlags;
using kernel::Process;
using kernel::Task;

// --- fuzz: the parsers must never crash or hang, only report errors ---

std::string random_garbage(Rng& rng, std::size_t length) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789_-/*{};:,.@#\"\\\n\t ()[]<>=!";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

// Token soup: syntactically plausible fragments in random order — much more
// likely to reach deep parser states than raw bytes.
std::string random_token_soup(Rng& rng, std::size_t tokens) {
  static constexpr const char* kTokens[] = {
      "states",    "initial",   "transitions", "events",  "permissions",
      "state_per", "per_rules", "allow",       "deny",    "on",
      "{",         "}",         ";",           ",",       ":",
      "->",        "=",         "*",           "@",       "read",
      "write",     "ioctl",     "exec",        "normal",  "emergency",
      "P1",        "0",         "42",          "/dev/x*", "/var/**",
      "profile",   "capability", "network",    "deny",    "r",
      "rw",        "type",      "filecon",     "domain_transition",
  };
  std::string out;
  for (std::size_t i = 0; i < tokens; ++i) {
    out += kTokens[rng.below(std::size(kTokens))];
    out += rng.chance(0.8) ? " " : "\n";
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, SackPolicyParserNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    auto garbage = random_garbage(rng, 40 + rng.below(400));
    (void)core::parse_policy(garbage);
    auto soup = random_token_soup(rng, 10 + rng.below(120));
    (void)core::parse_policy(soup);
  }
}

TEST_P(ParserFuzz, AppArmorProfileParserNeverCrashes) {
  Rng rng(GetParam() ^ 0xaaaau);
  for (int i = 0; i < 50; ++i) {
    (void)apparmor::parse_profiles(random_garbage(rng, 40 + rng.below(400)));
    (void)apparmor::parse_profiles(
        random_token_soup(rng, 10 + rng.below(120)));
  }
}

TEST_P(ParserFuzz, TePolicyParserNeverCrashes) {
  Rng rng(GetParam() ^ 0x5555u);
  for (int i = 0; i < 50; ++i) {
    (void)te::parse_te_policy(random_garbage(rng, 40 + rng.below(400)));
    (void)te::parse_te_policy(random_token_soup(rng, 10 + rng.below(120)));
  }
}

TEST_P(ParserFuzz, ValidPoliciesSurviveMutationOrFailCleanly) {
  // Mutate a valid policy at one random position; the parser must either
  // accept it or produce diagnostics — never crash.
  Rng rng(GetParam() ^ 0x1234u);
  const std::string base = R"(
states { normal = 0; emergency = 1; }
initial normal;
transitions { normal -> emergency on crash; }
permissions { P; }
state_per { emergency: P; }
per_rules { P { allow * /dev/door* write ioctl; } }
)";
  for (int i = 0; i < 200; ++i) {
    std::string mutated = base;
    std::size_t pos = rng.below(mutated.size());
    char c = static_cast<char>(32 + rng.below(95));
    if (rng.chance(0.3)) {
      mutated.erase(pos, 1);
    } else if (rng.chance(0.5)) {
      mutated[pos] = c;
    } else {
      mutated.insert(pos, 1, c);
    }
    auto parsed = core::parse_policy(mutated);
    if (parsed.ok()) {
      // If it still parses, the checker must be able to run on it too.
      (void)core::check_policy(parsed.policy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// --- property: LSM stacking decisions are the conjunction of modules ---

TEST(StackingProperty, StackedDecisionEqualsConjunction) {
  // Build the same world twice: once with SACK only, once with SACK followed
  // by a second denying module; the stacked verdict must equal AND.
  class DenyListModule : public kernel::SecurityModule {
   public:
    std::string_view name() const override { return "denylist"; }
    Errno file_open(Task&, const std::string& path, const kernel::Inode&,
                    kernel::AccessMask) override {
      return path.find("forbidden") == std::string::npos ? Errno::ok
                                                         : Errno::eacces;
    }
  };

  auto build = [](bool with_denylist) {
    auto kernel = std::make_unique<Kernel>();
    auto* sack_module = static_cast<core::SackModule*>(kernel->add_lsm(
        std::make_unique<core::SackModule>(core::SackMode::independent)));
    if (with_denylist)
      kernel->add_lsm(std::make_unique<DenyListModule>());
    Process admin(*kernel, kernel->init_task());
    (void)admin.write_file("/data_forbidden", "x");
    (void)admin.write_file("/data_plain", "x");
    (void)admin.write_file("/data_guarded", "x");
    core::PolicyBuilder b;
    b.state("s", 0).initial("s").permission("P").grant("s", "P");
    b.allow("P", "*", "/data_guarded", core::MacOp::read);
    EXPECT_TRUE(sack_module->load_policy(b.build()).ok());
    return kernel;
  };

  auto solo = build(false);
  auto stacked = build(true);
  Task& solo_task = solo->spawn_task("t", Cred::root(), "/bin/t");
  Task& stacked_task = stacked->spawn_task("t", Cred::root(), "/bin/t");

  for (const char* path :
       {"/data_forbidden", "/data_plain", "/data_guarded"}) {
    bool sack_allows =
        solo->sys_open(solo_task, path, OpenFlags::read).ok();
    bool denylist_allows = std::string_view(path).find("forbidden") ==
                           std::string_view::npos;
    bool stacked_allows =
        stacked->sys_open(stacked_task, path, OpenFlags::read).ok();
    EXPECT_EQ(stacked_allows, sack_allows && denylist_allows) << path;
  }
}

// --- property: the kernel-path decision equals the bare rule-set model ---

class ModuleModelEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ModuleModelEquivalence, FileOpenMatchesRuleSetModel) {
  Rng rng(GetParam());

  // Random policy over a fixed object universe.
  const char* objects[] = {"/obj/a", "/obj/b", "/obj/sub/c", "/obj/*",
                           "/obj/sub/**"};
  const char* subjects[] = {"*", "/bin/app1", "/bin/app2"};
  core::PolicyBuilder b;
  b.state("s0", 0).state("s1", 1).initial("s0");
  b.transition("s0", "go", "s1").transition("s1", "back", "s0");
  for (int p = 0; p < 3; ++p) {
    std::string perm = "P" + std::to_string(p);
    b.permission(perm);
    if (rng.chance(0.6)) b.grant("s0", perm);
    if (rng.chance(0.6)) b.grant("s1", perm);
    int n = 1 + static_cast<int>(rng.below(3));
    for (int r = 0; r < n; ++r) {
      core::MacOp op = rng.chance(0.5) ? core::MacOp::read : core::MacOp::write;
      if (rng.chance(0.2)) {
        b.deny(perm, subjects[rng.below(3)], objects[rng.below(5)], op);
      } else {
        b.allow(perm, subjects[rng.below(3)], objects[rng.below(5)], op);
      }
    }
  }
  auto policy = b.build();

  // Kernel with the module.
  Kernel kernel;
  auto* sack_module = static_cast<core::SackModule*>(kernel.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  kernel.vfs().mkdir_p("/obj/sub");
  Process admin(kernel, kernel.init_task());
  const char* concrete[] = {"/obj/a", "/obj/b", "/obj/sub/c", "/obj/zz",
                            "/obj/sub/deep"};
  for (const char* path : concrete) (void)admin.write_file(path, "x");
  ASSERT_TRUE(sack_module->load_policy(policy).ok());

  // Bare model.
  core::CompiledRuleSet model;
  (void)model.load(policy);

  Task& app1 = kernel.spawn_task("app1", Cred::root(), "/bin/app1");
  Task& app2 = kernel.spawn_task("app2", Cred::root(), "/bin/app2");

  const char* state = "s0";
  for (int round = 0; round < 30; ++round) {
    model.activate(policy.permissions_of(state));
    for (Task* task : {&app1, &app2}) {
      for (const char* path : concrete) {
        for (auto [flags, op] :
             {std::pair{OpenFlags::read, core::MacOp::read},
              std::pair{OpenFlags::write, core::MacOp::write}}) {
          core::AccessQuery q;
          q.subject_exe = task->exe_path();
          q.object_path = path;
          q.op = op;
          bool model_allows = model.check(q) == Errno::ok;
          auto fd = kernel.sys_open(*task, path, flags);
          EXPECT_EQ(fd.ok(), model_allows)
              << "state=" << state << " exe=" << task->exe_path()
              << " path=" << path << " op=" << core::mac_op_name(op);
          if (fd.ok()) (void)kernel.sys_close(*task, *fd);
        }
      }
    }
    // Random walk of the two-state machine.
    if (rng.chance(0.5)) {
      bool at_s0 = std::string_view(state) == "s0";
      ASSERT_TRUE(sack_module->deliver_event(at_s0 ? "go" : "back").ok());
      state = at_s0 ? "s1" : "s0";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModuleModelEquivalence,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u));

// --- property: randomly built policies round-trip through the language ---

class PolicyRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyRoundTrip, BuilderToTextToParserIsIdentity) {
  Rng rng(GetParam());
  core::PolicyBuilder b;
  int n_states = 2 + static_cast<int>(rng.below(6));
  for (int i = 0; i < n_states; ++i)
    b.state("state_" + std::to_string(i), i);
  b.initial("state_0");
  int n_events = 1 + static_cast<int>(rng.below(4));
  for (int e = 0; e < n_events; ++e) {
    b.transition("state_" + std::to_string(rng.below(n_states)),
                 "event_" + std::to_string(e),
                 "state_" + std::to_string(rng.below(n_states)));
  }
  const char* subjects[] = {"*", "@some_profile", "/usr/bin/app*"};
  const char* objects[] = {"/dev/x", "/var/data/**", "/etc/conf?",
                           "/opt/{a,b}/lib"};
  const core::MacOp op_choices[] = {
      core::MacOp::read, core::MacOp::write | core::MacOp::ioctl,
      core::MacOp::exec | core::MacOp::getattr,
      core::MacOp::create | core::MacOp::unlink | core::MacOp::rename};
  int n_perms = 1 + static_cast<int>(rng.below(4));
  for (int p = 0; p < n_perms; ++p) {
    std::string perm = "PERM_" + std::to_string(p);
    b.permission(perm);
    b.grant("state_" + std::to_string(rng.below(n_states)), perm);
    int n_rules = 1 + static_cast<int>(rng.below(3));
    for (int r = 0; r < n_rules; ++r) {
      if (rng.chance(0.2)) {
        b.deny(perm, subjects[rng.below(3)], objects[rng.below(4)],
               op_choices[rng.below(4)]);
      } else {
        b.allow(perm, subjects[rng.below(3)], objects[rng.below(4)],
                op_choices[rng.below(4)]);
      }
    }
  }
  core::SackPolicy original = b.build();

  std::string text = original.to_text();
  auto reparsed = core::parse_policy(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  const core::SackPolicy& round = reparsed.policy;

  EXPECT_EQ(round.initial_state, original.initial_state);
  ASSERT_EQ(round.states.size(), original.states.size());
  for (std::size_t i = 0; i < original.states.size(); ++i) {
    EXPECT_EQ(round.states[i].name, original.states[i].name);
    EXPECT_EQ(round.states[i].encoding, original.states[i].encoding);
  }
  ASSERT_EQ(round.transitions.size(), original.transitions.size());
  EXPECT_EQ(round.permissions, original.permissions);
  EXPECT_EQ(round.state_per, original.state_per);
  ASSERT_EQ(round.per_rules.size(), original.per_rules.size());
  for (const auto& [perm, rules] : original.per_rules) {
    const auto& round_rules = round.per_rules.at(perm);
    ASSERT_EQ(round_rules.size(), rules.size()) << perm;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      EXPECT_EQ(round_rules[i].effect, rules[i].effect);
      EXPECT_EQ(round_rules[i].subject_kind, rules[i].subject_kind);
      EXPECT_EQ(round_rules[i].subject_text, rules[i].subject_text);
      EXPECT_EQ(round_rules[i].object.pattern(), rules[i].object.pattern());
      EXPECT_EQ(round_rules[i].ops, rules[i].ops);
    }
  }
  // And the dump is a fixed point of dump-parse-dump.
  EXPECT_EQ(round.to_text(), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyRoundTrip,
                         ::testing::Values(1u, 7u, 19u, 29u, 43u, 61u, 83u,
                                           97u));

// --- glob containment property: '**' dominates '*' ---

TEST(GlobProperty, DoubleStarDominatesSingleStar) {
  Rng rng(99);
  const char* prefixes[] = {"/a", "/a/b", "/x/y/z"};
  for (int i = 0; i < 300; ++i) {
    std::string prefix = prefixes[rng.below(3)];
    auto single = Glob::compile(prefix + "/*");
    auto dbl = Glob::compile(prefix + "/**");
    ASSERT_TRUE(single.ok() && dbl.ok());
    // Random path under a random prefix.
    std::string path = prefixes[rng.below(3)];
    int depth = 1 + static_cast<int>(rng.below(3));
    for (int d = 0; d < depth; ++d) {
      path += "/";
      path += static_cast<char>('a' + rng.below(26));
    }
    if (single->matches(path)) {
      EXPECT_TRUE(dbl->matches(path)) << path << " vs " << prefix;
    }
  }
}

}  // namespace
}  // namespace sack
