// Syscall surface: files, fds, pipes, sockets, mmap, process lifecycle.
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "kernel/process.h"

namespace sack::kernel {
namespace {

class SyscallTest : public ::testing::Test {
 protected:
  Kernel kernel_;
  Task& root() { return kernel_.init_task(); }
  Process proc() { return {kernel_, root()}; }
};

TEST_F(SyscallTest, OpenCreateWriteReadClose) {
  auto p = proc();
  Fd fd = *p.open("/tmp/f.txt", OpenFlags::write | OpenFlags::create);
  EXPECT_EQ(*p.write(fd, "hello world"), 11u);
  ASSERT_TRUE(p.close(fd).ok());

  auto content = p.read_file("/tmp/f.txt");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello world");
}

TEST_F(SyscallTest, OpenMissingWithoutCreateFails) {
  EXPECT_EQ(proc().open("/tmp/missing", OpenFlags::read).error(),
            Errno::enoent);
}

TEST_F(SyscallTest, OpenExclFailsIfExists) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  EXPECT_EQ(p.open("/tmp/f",
                   OpenFlags::write | OpenFlags::create | OpenFlags::excl)
                .error(),
            Errno::eexist);
}

TEST_F(SyscallTest, TruncateOnOpen) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "0123456789").ok());
  Fd fd = *p.open("/tmp/f", OpenFlags::write | OpenFlags::trunc);
  ASSERT_TRUE(p.close(fd).ok());
  EXPECT_EQ(*p.read_file("/tmp/f"), "");
}

TEST_F(SyscallTest, AppendAlwaysWritesAtEnd) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/log", "one\n").ok());
  Fd fd = *p.open("/tmp/log", OpenFlags::write | OpenFlags::append);
  EXPECT_EQ(*p.write(fd, "two\n"), 4u);
  ASSERT_TRUE(p.close(fd).ok());
  EXPECT_EQ(*p.read_file("/tmp/log"), "one\ntwo\n");
}

TEST_F(SyscallTest, LseekAndPartialReads) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "abcdefgh").ok());
  Fd fd = *p.open("/tmp/f", OpenFlags::read);
  ASSERT_TRUE(kernel_.sys_lseek(root(), fd, 4, Whence::set).ok());
  std::string out;
  EXPECT_EQ(*p.read(fd, out, 2), 2u);
  EXPECT_EQ(out, "ef");
  EXPECT_EQ(*kernel_.sys_lseek(root(), fd, 0, Whence::cur), 6u);
  EXPECT_EQ(*kernel_.sys_lseek(root(), fd, -1, Whence::end), 7u);
  EXPECT_EQ(kernel_.sys_lseek(root(), fd, -100, Whence::set).error(),
            Errno::einval);
  ASSERT_TRUE(p.close(fd).ok());
}

TEST_F(SyscallTest, ReadOnWriteOnlyFdFails) {
  auto p = proc();
  Fd fd = *p.open("/tmp/f", OpenFlags::write | OpenFlags::create);
  std::string out;
  EXPECT_EQ(p.read(fd, out, 4).error(), Errno::ebadf);
  ASSERT_TRUE(p.close(fd).ok());
}

TEST_F(SyscallTest, BadFdEverywhere) {
  std::string out;
  EXPECT_EQ(proc().close(Fd(99)).error(), Errno::ebadf);
  EXPECT_EQ(proc().read(Fd(99), out, 1).error(), Errno::ebadf);
  EXPECT_EQ(proc().write(Fd(99), "x").error(), Errno::ebadf);
  EXPECT_EQ(kernel_.sys_dup(root(), Fd(99)).error(), Errno::ebadf);
}

TEST_F(SyscallTest, DupSharesOffset) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "abcdef").ok());
  Fd a = *p.open("/tmp/f", OpenFlags::read);
  Fd b = *kernel_.sys_dup(root(), a);
  std::string out;
  EXPECT_EQ(*p.read(a, out, 2), 2u);
  EXPECT_EQ(*p.read(b, out, 2), 2u);
  EXPECT_EQ(out, "cd");  // shared description, shared offset
  ASSERT_TRUE(p.close(a).ok());
  EXPECT_EQ(*p.read(b, out, 2), 2u);  // still open through b
  ASSERT_TRUE(p.close(b).ok());
}

TEST_F(SyscallTest, StatReportsMetadata) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "12345").ok());
  auto st = p.stat("/tmp/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 5u);
  EXPECT_EQ(st->type, InodeType::regular);
  EXPECT_EQ(st->uid, 0);
  auto dir = p.stat("/tmp");
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir->type, InodeType::directory);
}

TEST_F(SyscallTest, MkdirRmdirSemantics) {
  auto p = proc();
  ASSERT_TRUE(p.mkdir("/tmp/d").ok());
  EXPECT_EQ(p.mkdir("/tmp/d").error(), Errno::eexist);
  ASSERT_TRUE(p.write_file("/tmp/d/f", "x").ok());
  EXPECT_EQ(kernel_.sys_rmdir(root(), "/tmp/d").error(), Errno::enotempty);
  ASSERT_TRUE(p.unlink("/tmp/d/f").ok());
  ASSERT_TRUE(kernel_.sys_rmdir(root(), "/tmp/d").ok());
  EXPECT_EQ(p.stat("/tmp/d").error(), Errno::enoent);
}

TEST_F(SyscallTest, UnlinkDirectoryIsEisdir) {
  ASSERT_TRUE(proc().mkdir("/tmp/d").ok());
  EXPECT_EQ(proc().unlink("/tmp/d").error(), Errno::eisdir);
}

TEST_F(SyscallTest, RenameMovesAndReplaces) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/a", "A").ok());
  ASSERT_TRUE(p.write_file("/tmp/b", "B").ok());
  ASSERT_TRUE(kernel_.sys_rename(root(), "/tmp/a", "/tmp/b").ok());
  EXPECT_EQ(p.stat("/tmp/a").error(), Errno::enoent);
  EXPECT_EQ(*p.read_file("/tmp/b"), "A");
}

TEST_F(SyscallTest, RenameOntoItselfIsNoOp) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/same", "data").ok());
  ASSERT_TRUE(kernel_.sys_rename(root(), "/tmp/same", "/tmp/same").ok());
  auto st = p.stat("/tmp/same");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 1u);  // regression: used to drop to 0
  EXPECT_EQ(*p.read_file("/tmp/same"), "data");
  // Also via a different spelling of the same path.
  ASSERT_TRUE(kernel_.sys_rename(root(), "/tmp/../tmp/same", "/tmp/same").ok());
  EXPECT_EQ(p.stat("/tmp/same")->nlink, 1u);
}

TEST_F(SyscallTest, RenameDirIntoOwnSubtreeRejected) {
  auto p = proc();
  ASSERT_TRUE(p.mkdir("/tmp/a").ok());
  ASSERT_TRUE(p.mkdir("/tmp/a/b").ok());
  EXPECT_EQ(kernel_.sys_rename(root(), "/tmp/a", "/tmp/a/b/c").error(),
            Errno::einval);
  EXPECT_EQ(kernel_.sys_rename(root(), "/tmp/a", "/tmp/a/self").error(),
            Errno::einval);
  // Renaming a directory sideways still works.
  ASSERT_TRUE(kernel_.sys_rename(root(), "/tmp/a/b", "/tmp/b2").ok());
  EXPECT_TRUE(p.stat("/tmp/b2").ok());
}

TEST_F(SyscallTest, ChmodChownTruncate) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "0123456789").ok());
  ASSERT_TRUE(kernel_.sys_chmod(root(), "/tmp/f", 0400).ok());
  EXPECT_EQ(p.stat("/tmp/f")->mode, 0400);
  ASSERT_TRUE(kernel_.sys_chown(root(), "/tmp/f", 1000, 1000).ok());
  EXPECT_EQ(p.stat("/tmp/f")->uid, 1000);
  ASSERT_TRUE(kernel_.sys_truncate(root(), "/tmp/f", 4).ok());
  EXPECT_EQ(p.stat("/tmp/f")->size, 4u);
}

TEST_F(SyscallTest, ReaddirListsChildren) {
  auto p = proc();
  ASSERT_TRUE(p.mkdir("/tmp/dir").ok());
  ASSERT_TRUE(p.write_file("/tmp/dir/one", "").ok());
  ASSERT_TRUE(p.write_file("/tmp/dir/two", "").ok());
  auto names = kernel_.sys_readdir(root(), "/tmp/dir");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
}

TEST_F(SyscallTest, HardLinkSharesInode) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/orig", "shared").ok());
  ASSERT_TRUE(kernel_.sys_link(root(), "/tmp/orig", "/tmp/alias").ok());
  EXPECT_EQ(p.stat("/tmp/orig")->nlink, 2u);
  EXPECT_EQ(p.stat("/tmp/alias")->ino, p.stat("/tmp/orig")->ino);
  // Writing through one name is visible through the other.
  Fd fd = *p.open("/tmp/alias", OpenFlags::write | OpenFlags::append);
  ASSERT_TRUE(p.write(fd, "!").ok());
  ASSERT_TRUE(p.close(fd).ok());
  EXPECT_EQ(*p.read_file("/tmp/orig"), "shared!");
  // Unlinking one name keeps the other.
  ASSERT_TRUE(p.unlink("/tmp/orig").ok());
  EXPECT_EQ(*p.read_file("/tmp/alias"), "shared!");
  EXPECT_EQ(p.stat("/tmp/alias")->nlink, 1u);
}

TEST_F(SyscallTest, HardLinkRestrictions) {
  EXPECT_EQ(kernel_.sys_link(root(), "/tmp", "/tmp/dirlink").error(),
            Errno::eperm);
  ASSERT_TRUE(proc().write_file("/tmp/f", "x").ok());
  EXPECT_EQ(kernel_.sys_link(root(), "/tmp/f", "/tmp/f").error(),
            Errno::eexist);
  EXPECT_EQ(kernel_.sys_link(root(), "/tmp/missing", "/tmp/l").error(),
            Errno::enoent);
}

TEST_F(SyscallTest, SymlinkReadlink) {
  ASSERT_TRUE(kernel_.sys_symlink(root(), "/etc", "/tmp/etclink").ok());
  auto target = kernel_.sys_readlink(root(), "/tmp/etclink");
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "/etc");
}

// --- pipes ---

TEST_F(SyscallTest, PipeRoundTrip) {
  auto [rfd, wfd] = *kernel_.sys_pipe(root());
  EXPECT_EQ(*proc().write(wfd, "ping"), 4u);
  std::string out;
  EXPECT_EQ(*proc().read(rfd, out, 16), 4u);
  EXPECT_EQ(out, "ping");
}

TEST_F(SyscallTest, PipeEmptyReadIsEagainThenEofAfterWriterCloses) {
  auto [rfd, wfd] = *kernel_.sys_pipe(root());
  std::string out;
  EXPECT_EQ(proc().read(rfd, out, 4).error(), Errno::eagain);
  ASSERT_TRUE(proc().close(wfd).ok());
  EXPECT_EQ(*proc().read(rfd, out, 4), 0u);  // EOF
}

TEST_F(SyscallTest, PipeWriteAfterReaderClosesIsEpipe) {
  auto [rfd, wfd] = *kernel_.sys_pipe(root());
  ASSERT_TRUE(proc().close(rfd).ok());
  EXPECT_EQ(proc().write(wfd, "x").error(), Errno::epipe);
}

TEST_F(SyscallTest, PipeCapacityBackpressure) {
  auto [rfd, wfd] = *kernel_.sys_pipe(root());
  std::string big(PipeBuffer::kCapacity + 100, 'x');
  EXPECT_EQ(*proc().write(wfd, big), PipeBuffer::kCapacity);  // partial
  EXPECT_EQ(proc().write(wfd, "y").error(), Errno::eagain);   // full
  std::string out;
  EXPECT_EQ(*proc().read(rfd, out, 4096), 4096u);
  EXPECT_EQ(*proc().write(wfd, "y"), 1u);  // space again
  (void)proc().close(rfd);
  (void)proc().close(wfd);
}

TEST_F(SyscallTest, PipeRingWrapsCorrectly) {
  // Drive the ring buffer through many partial wrap-arounds with an odd
  // chunk size and verify byte-exact FIFO order.
  auto [rfd, wfd] = *kernel_.sys_pipe(root());
  std::string pattern;
  for (int i = 0; i < 977; ++i) pattern += static_cast<char>('A' + i % 26);
  std::string received;
  std::string chunk;
  std::size_t sent = 0;
  for (int round = 0; round < 500; ++round) {
    sent += *proc().write(wfd, pattern);
    // Drain in odd-sized bites.
    for (;;) {
      auto n = proc().read(rfd, chunk, 613);
      if (!n.ok() || *n == 0) break;
      received += chunk;
      if (*n < 613) break;
    }
  }
  ASSERT_EQ(received.size(), sent);
  for (std::size_t i = 0; i < received.size(); ++i) {
    ASSERT_EQ(received[i], pattern[i % pattern.size()]) << "at byte " << i;
  }
}

TEST_F(SyscallTest, ListenBacklogLimitRefusesConnections) {
  Fd listener = *kernel_.sys_socket(root(), SockFamily::inet,
                                    SockType::stream);
  ASSERT_TRUE(kernel_.sys_bind(root(), listener, SockAddr::in(9000)).ok());
  ASSERT_TRUE(kernel_.sys_listen(root(), listener, 2).ok());
  Fd c1 = *kernel_.sys_socket(root(), SockFamily::inet, SockType::stream);
  Fd c2 = *kernel_.sys_socket(root(), SockFamily::inet, SockType::stream);
  Fd c3 = *kernel_.sys_socket(root(), SockFamily::inet, SockType::stream);
  ASSERT_TRUE(kernel_.sys_connect(root(), c1, SockAddr::in(9000)).ok());
  ASSERT_TRUE(kernel_.sys_connect(root(), c2, SockAddr::in(9000)).ok());
  EXPECT_EQ(kernel_.sys_connect(root(), c3, SockAddr::in(9000)).error(),
            Errno::econnrefused);
  // Accepting frees a slot.
  ASSERT_TRUE(kernel_.sys_accept(root(), listener).ok());
  EXPECT_TRUE(kernel_.sys_connect(root(), c3, SockAddr::in(9000)).ok());
}

// --- sockets ---

TEST_F(SyscallTest, UnixSocketpairRoundTrip) {
  auto [a, b] = *kernel_.sys_socketpair(root(), SockFamily::unix_);
  EXPECT_EQ(*kernel_.sys_send(root(), a, "hello"), 5u);
  std::string out;
  EXPECT_EQ(*kernel_.sys_recv(root(), b, out, 16), 5u);
  EXPECT_EQ(out, "hello");
  // And the reverse direction.
  EXPECT_EQ(*kernel_.sys_send(root(), b, "yo"), 2u);
  EXPECT_EQ(*kernel_.sys_recv(root(), a, out, 16), 2u);
}

TEST_F(SyscallTest, TcpListenConnectAccept) {
  Fd listener = *kernel_.sys_socket(root(), SockFamily::inet, SockType::stream);
  ASSERT_TRUE(kernel_.sys_bind(root(), listener, SockAddr::in(8080)).ok());
  ASSERT_TRUE(kernel_.sys_listen(root(), listener, 4).ok());

  Fd client = *kernel_.sys_socket(root(), SockFamily::inet, SockType::stream);
  ASSERT_TRUE(kernel_.sys_connect(root(), client, SockAddr::in(8080)).ok());
  Fd server = *kernel_.sys_accept(root(), listener);

  EXPECT_EQ(*kernel_.sys_send(root(), client, "GET /"), 5u);
  std::string out;
  EXPECT_EQ(*kernel_.sys_recv(root(), server, out, 64), 5u);
}

TEST_F(SyscallTest, ConnectToNothingRefused) {
  Fd client = *kernel_.sys_socket(root(), SockFamily::inet, SockType::stream);
  EXPECT_EQ(kernel_.sys_connect(root(), client, SockAddr::in(9999)).error(),
            Errno::econnrefused);
}

TEST_F(SyscallTest, DoubleBindIsAddrInUse) {
  Fd a = *kernel_.sys_socket(root(), SockFamily::inet, SockType::stream);
  Fd b = *kernel_.sys_socket(root(), SockFamily::inet, SockType::stream);
  ASSERT_TRUE(kernel_.sys_bind(root(), a, SockAddr::in(7000)).ok());
  EXPECT_EQ(kernel_.sys_bind(root(), b, SockAddr::in(7000)).error(),
            Errno::eaddrinuse);
  // Closing the holder releases the address.
  ASSERT_TRUE(proc().close(a).ok());
  EXPECT_TRUE(kernel_.sys_bind(root(), b, SockAddr::in(7000)).ok());
}

TEST_F(SyscallTest, PrivilegedPortNeedsCapability) {
  Task& user = kernel_.spawn_task("web", Cred::user(1000, 1000));
  Fd s = *kernel_.sys_socket(user, SockFamily::inet, SockType::stream);
  EXPECT_EQ(kernel_.sys_bind(user, s, SockAddr::in(80)).error(),
            Errno::eacces);
}

// --- mmap ---

TEST_F(SyscallTest, MmapReadsFileContents) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "mapped contents").ok());
  Fd fd = *p.open("/tmp/f", OpenFlags::read);
  int id = *kernel_.sys_mmap(root(), fd, 1 << 16, AccessMask::read);
  std::string out;
  EXPECT_EQ(*kernel_.mmap_read(root(), id, out, 7, 8), 8u);
  EXPECT_EQ(out, "contents");
  ASSERT_TRUE(kernel_.sys_munmap(root(), id).ok());
  EXPECT_EQ(kernel_.mmap_read(root(), id, out, 0, 1).error(), Errno::einval);
}

TEST_F(SyscallTest, MmapProtMustMatchOpenMode) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  Fd fd = *p.open("/tmp/f", OpenFlags::read);
  EXPECT_EQ(kernel_.sys_mmap(root(), fd, 4096, AccessMask::write).error(),
            Errno::eacces);
}

TEST_F(SyscallTest, AnonymousMmap) {
  int id = *kernel_.sys_mmap_anon(root(), 4096, AccessMask::read);
  std::string out;
  EXPECT_EQ(*kernel_.mmap_read(root(), id, out, 0, 16), 16u);
  EXPECT_EQ(out, std::string(16, '\0'));
}

// --- processes ---

TEST_F(SyscallTest, ForkExitWait) {
  Pid child_pid = *kernel_.sys_fork(root());
  Task& child = kernel_.task(child_pid).value();
  EXPECT_EQ(child.ppid(), root().pid());
  EXPECT_EQ(child.comm(), root().comm());
  kernel_.sys_exit(child, 7);
  EXPECT_EQ(*kernel_.sys_waitpid(root(), child_pid), 7);
  EXPECT_EQ(kernel_.task(child_pid).error(), Errno::esrch);  // reaped
}

TEST_F(SyscallTest, WaitForRunningChildIsEagain) {
  Pid child_pid = *kernel_.sys_fork(root());
  EXPECT_EQ(kernel_.sys_waitpid(root(), child_pid).error(), Errno::eagain);
}

TEST_F(SyscallTest, WaitForNonChildIsEchild) {
  Task& stranger = kernel_.spawn_task("other", Cred::root());
  Pid grandchild = *kernel_.sys_fork(stranger);
  EXPECT_EQ(kernel_.sys_waitpid(root(), grandchild).error(), Errno::echild);
}

TEST_F(SyscallTest, ForkInheritsOpenFiles) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "shared").ok());
  Fd fd = *p.open("/tmp/f", OpenFlags::read);
  Pid child_pid = *kernel_.sys_fork(root());
  Task& child = kernel_.task(child_pid).value();
  std::string out;
  EXPECT_EQ(*kernel_.sys_read(child, fd, out, 3), 3u);
  EXPECT_EQ(out, "sha");
  // Offset is shared with the parent (same open file description).
  EXPECT_EQ(*kernel_.sys_read(root(), fd, out, 3), 3u);
  EXPECT_EQ(out, "red");
}

TEST_F(SyscallTest, ExecReplacesImageAndDropsCloexec) {
  Process p(kernel_, root());
  ASSERT_TRUE(p.write_file("/usr/bin/newprog", "ELF").ok());
  ASSERT_TRUE(kernel_.sys_chmod(root(), "/usr/bin/newprog", 0755).ok());

  Fd keep = *p.open("/tmp/keep", OpenFlags::write | OpenFlags::create);
  Fd gone = *p.open("/tmp/gone", OpenFlags::write | OpenFlags::create |
                                     OpenFlags::cloexec);
  ASSERT_TRUE(kernel_.sys_execve(root(), "/usr/bin/newprog").ok());
  EXPECT_EQ(root().exe_path(), "/usr/bin/newprog");
  EXPECT_EQ(root().comm(), "newprog");
  EXPECT_TRUE(root().fds().get(keep).ok());
  EXPECT_EQ(root().fds().get(gone).error(), Errno::ebadf);
}

TEST_F(SyscallTest, ExecNonExecutableFails) {
  Process p(kernel_, root());
  ASSERT_TRUE(p.write_file("/tmp/script", "#!").ok());
  ASSERT_TRUE(kernel_.sys_chmod(root(), "/tmp/script", 0644).ok());
  EXPECT_EQ(kernel_.sys_execve(root(), "/tmp/script").error(), Errno::eacces);
  EXPECT_EQ(kernel_.sys_execve(root(), "/tmp").error(), Errno::eisdir);
}

TEST_F(SyscallTest, SyscallCounterAdvances) {
  auto before = kernel_.syscall_count();
  kernel_.sys_nop(root());
  kernel_.sys_nop(root());
  EXPECT_EQ(kernel_.syscall_count(), before + 2);
}

TEST_F(SyscallTest, ChdirChangesRelativeBase) {
  ASSERT_TRUE(proc().mkdir("/tmp/wd").ok());
  ASSERT_TRUE(proc().write_file("/tmp/wd/f", "x").ok());
  ASSERT_TRUE(kernel_.sys_chdir(root(), "/tmp/wd").ok());
  EXPECT_EQ(root().cwd(), "/tmp/wd");
  EXPECT_TRUE(proc().stat("f").ok());
  EXPECT_EQ(kernel_.sys_chdir(root(), "/tmp/wd/f").error(), Errno::enotdir);
}

// --- char devices ---

class EchoDevice : public DeviceOps {
 public:
  std::string_view device_name() const override { return "echo"; }
  Result<std::size_t> write(Task&, File&, std::string_view data) override {
    last = std::string(data);
    return data.size();
  }
  Result<std::size_t> read(Task&, File&, std::string& out,
                           std::size_t) override {
    out = last;
    return out.size();
  }
  Result<long> ioctl(Task&, File&, std::uint32_t cmd, long arg) override {
    return cmd == 1 ? Result<long>(arg * 2) : Result<long>(Errno::einval);
  }
  std::string last;
};

TEST_F(SyscallTest, CharDeviceDispatch) {
  EchoDevice dev;
  ASSERT_TRUE(kernel_.register_chardev("/dev/echo", &dev).ok());
  auto p = proc();
  Fd fd = *p.open("/dev/echo", OpenFlags::rdwr);
  EXPECT_EQ(*p.write(fd, "abc"), 3u);
  std::string out;
  EXPECT_EQ(*p.read(fd, out, 16), 3u);
  EXPECT_EQ(out, "abc");
  EXPECT_EQ(*p.ioctl(fd, 1, 21), 42);
  EXPECT_EQ(p.ioctl(fd, 9, 0).error(), Errno::einval);
}

TEST_F(SyscallTest, IoctlOnRegularFileIsEnotty) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  Fd fd = *p.open("/tmp/f", OpenFlags::read);
  EXPECT_EQ(p.ioctl(fd, 1, 0).error(), Errno::enotty);
}

// --- regressions for fuzzer-confirmed findings ---

// vfs-nlink: renaming one name of a multiply-linked file used to lose a link
// count (unlink_child decremented, link_child didn't restore).
TEST_F(SyscallTest, RenamePreservesLinkCountOfHardlinkedFile) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  ASSERT_TRUE(kernel_.sys_link(root(), "/tmp/f", "/tmp/g").ok());
  EXPECT_EQ(p.stat("/tmp/f")->nlink, 2u);

  ASSERT_TRUE(kernel_.sys_rename(root(), "/tmp/g", "/tmp/h").ok());
  EXPECT_EQ(p.stat("/tmp/f")->nlink, 2u);
  EXPECT_EQ(p.stat("/tmp/h")->nlink, 2u);

  // Both names must really die independently.
  ASSERT_TRUE(p.unlink("/tmp/h").ok());
  EXPECT_EQ(p.stat("/tmp/f")->nlink, 1u);
  EXPECT_EQ(*p.read_file("/tmp/f"), "x");
}

// Renaming a name onto another name of the *same* inode is a POSIX no-op;
// the general replace path would decrement the shared inode's link count.
TEST_F(SyscallTest, RenameOntoHardlinkAliasIsNoOp) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  ASSERT_TRUE(kernel_.sys_link(root(), "/tmp/f", "/tmp/g").ok());

  ASSERT_TRUE(kernel_.sys_rename(root(), "/tmp/f", "/tmp/g").ok());
  EXPECT_EQ(p.stat("/tmp/f")->nlink, 2u);
  EXPECT_EQ(p.stat("/tmp/g")->nlink, 2u);
}

// Unbounded file growth: a far lseek plus a one-byte write used to ask
// std::string for a multi-gigabyte resize (std::length_error from inside a
// "kernel" path). Now bounded by kMaxFileSize -> EFBIG.
TEST_F(SyscallTest, WriteBeyondMaxFileSizeIsEfbig) {
  auto p = proc();
  Fd fd = *p.open("/tmp/big", OpenFlags::write | OpenFlags::create);
  ASSERT_TRUE(
      kernel_.sys_lseek(root(), fd, static_cast<std::int64_t>(kMaxFileSize),
                        Whence::set)
          .ok());
  EXPECT_EQ(p.write(fd, "x").error(), Errno::efbig);

  // The descriptor is still usable at sane offsets afterwards. (Writing at
  // kMaxFileSize - 1 would also succeed, but materializing a 1 GiB string
  // is too heavy for the sanitizer jobs.)
  ASSERT_TRUE(kernel_.sys_lseek(root(), fd, 4096, Whence::set).ok());
  EXPECT_EQ(*p.write(fd, "x"), 1u);
}

TEST_F(SyscallTest, TruncateBeyondMaxFileSizeIsEfbig) {
  auto p = proc();
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  EXPECT_EQ(kernel_.sys_truncate(root(), "/tmp/f", kMaxFileSize + 1).error(),
            Errno::efbig);
  ASSERT_TRUE(kernel_.sys_truncate(root(), "/tmp/f", 4096).ok());
  EXPECT_EQ(p.stat("/tmp/f")->size, 4096u);
}

// ipc-half-open: Socket::shutdown flipped the wrong buffer ends, so the
// surviving peer of a closed socketpair spun on EAGAIN instead of seeing
// EOF / EPIPE.
TEST_F(SyscallTest, SocketpairCloseGivesPeerEofAfterDrain) {
  auto p = proc();
  auto pair = *kernel_.sys_socketpair(root(), SockFamily::unix_);
  ASSERT_TRUE(kernel_.sys_send(root(), pair.first, "bye").ok());
  ASSERT_TRUE(p.close(pair.first).ok());

  std::string out;
  EXPECT_EQ(*kernel_.sys_recv(root(), pair.second, out, 16), 3u);
  EXPECT_EQ(out, "bye");
  // Drained and the writer is gone: EOF, not EAGAIN.
  EXPECT_EQ(*kernel_.sys_recv(root(), pair.second, out, 16), 0u);
}

TEST_F(SyscallTest, SocketpairCloseMakesPeerSendEpipe) {
  auto p = proc();
  auto pair = *kernel_.sys_socketpair(root(), SockFamily::unix_);
  ASSERT_TRUE(p.close(pair.first).ok());
  EXPECT_EQ(kernel_.sys_send(root(), pair.second, "x").error(), Errno::epipe);
}

// sys_socketpair used to leak a connected, half-installed pair when the
// second fd allocation failed.
TEST_F(SyscallTest, SocketpairUnwindsCleanlyWhenFdTableAlmostFull) {
  auto p = proc();
  // Fill the table until exactly one slot is free.
  std::vector<Fd> held;
  for (;;) {
    auto fd = p.open("/tmp/fill", OpenFlags::write | OpenFlags::create);
    if (!fd.ok()) break;
    held.push_back(*fd);
    if (held.size() > FdTable::kMaxFds) FAIL() << "fd table never filled";
  }
  ASSERT_TRUE(p.close(held.back()).ok());
  held.pop_back();

  EXPECT_EQ(kernel_.sys_socketpair(root(), SockFamily::unix_).error(),
            Errno::emfile);

  // The single free slot must have been returned on unwind.
  auto fd = p.open("/tmp/fill", OpenFlags::read);
  ASSERT_TRUE(fd.ok());
}

}  // namespace
}  // namespace sack::kernel
