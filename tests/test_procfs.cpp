// /proc/<pid>/attr/current: task-confinement introspection.
#include <gtest/gtest.h>

#include "apparmor/apparmor.h"
#include "core/sack_module.h"
#include "kernel/process.h"
#include "te/te_module.h"

namespace sack::kernel {
namespace {

TEST(ProcAttr, InitTaskHasNode) {
  Kernel kernel;
  Process p(kernel, kernel.init_task());
  auto content = p.read_file("/proc/1/attr/current");
  ASSERT_TRUE(content.ok());
  EXPECT_NE(content->find("exe: /sbin/init"), std::string::npos);
}

TEST(ProcAttr, NodesFollowTaskLifecycle) {
  Kernel kernel;
  Process p(kernel, kernel.init_task());
  Pid child = *kernel.sys_fork(kernel.init_task());
  std::string path = "/proc/" + std::to_string(child.get()) + "/attr/current";
  EXPECT_TRUE(p.read_file(path).ok());
  kernel.sys_exit(kernel.task(child).value(), 0);
  // Zombie: still listed until reaped.
  EXPECT_TRUE(p.stat(path).ok());
  (void)kernel.sys_waitpid(kernel.init_task(), child);
  EXPECT_EQ(p.stat(path).error(), Errno::enoent);
}

TEST(ProcAttr, ReportsAllModuleContexts) {
  Kernel kernel;
  auto* sack_module = static_cast<core::SackModule*>(kernel.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  auto* aa = static_cast<apparmor::AppArmorModule*>(
      kernel.add_lsm(std::make_unique<apparmor::AppArmorModule>()));
  auto* te = static_cast<te::TeModule*>(
      kernel.add_lsm(std::make_unique<te::TeModule>()));

  Process admin(kernel, kernel.init_task());
  ASSERT_TRUE(admin.write_file("/usr/bin/media_app", "ELF").ok());
  ASSERT_TRUE(aa->load_policy_text(
                    "profile media_app /usr/bin/media_app { /var/** r, }")
                  .ok());
  ASSERT_TRUE(te->load_policy_text(R"(
type media_t; type media_exec_t;
domain_transition unconfined_t media_exec_t media_t;
filecon /usr/bin/media_app media_exec_t;
)")
                  .ok());
  ASSERT_TRUE(sack_module->load_policy_text(R"(
states { normal = 0; driving = 7; }
initial normal;
transitions { normal -> driving on start_driving; }
permissions { MEDIA; }
state_per { normal: MEDIA; driving: MEDIA; }
per_rules { MEDIA { allow * /var/media/** read; } }
)")
                  .ok());

  Task& media = kernel.spawn_task("media_app", Cred::root(),
                                  "/usr/bin/media_app");
  std::string path =
      "/proc/" + std::to_string(media.pid().get()) + "/attr/current";
  auto content = admin.read_file(path);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(content->find("apparmor: media_app (enforce)"),
            std::string::npos);
  EXPECT_NE(content->find("setype: media_t"), std::string::npos);
  EXPECT_NE(content->find("sack: state=normal encoding=0"),
            std::string::npos);
  EXPECT_NE(content->find("permissions=MEDIA"), std::string::npos);

  // The situation context updates live.
  ASSERT_TRUE(sack_module->deliver_event("start_driving").ok());
  content = admin.read_file(path);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(content->find("sack: state=driving encoding=7"),
            std::string::npos);

  // Unconfined tasks read as such.
  auto init_attr = admin.read_file("/proc/1/attr/current");
  ASSERT_TRUE(init_attr.ok());
  EXPECT_NE(init_attr->find("apparmor: unconfined"), std::string::npos);
  EXPECT_NE(init_attr->find("setype: unconfined_t"), std::string::npos);
}

TEST(ProcAttr, SnapshotPerOpenButFreshPerRead) {
  Kernel kernel;
  auto* sack_module = static_cast<core::SackModule*>(kernel.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  ASSERT_TRUE(sack_module->load_policy_text(R"(
states { a = 0; b = 1; }
initial a;
transitions { a -> b on go; }
)")
                  .ok());
  Process p(kernel, kernel.init_task());
  auto before = *p.read_file("/proc/1/attr/current");
  EXPECT_NE(before.find("state=a"), std::string::npos);
  ASSERT_TRUE(sack_module->deliver_event("go").ok());
  auto after = *p.read_file("/proc/1/attr/current");
  EXPECT_NE(after.find("state=b"), std::string::npos);
}

}  // namespace
}  // namespace sack::kernel
