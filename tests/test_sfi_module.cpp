// SfiModule: enforcement semantics, per-task blob lifecycle (fork / exec /
// exit), generation-swap re-attachment, situation overlays, securityfs
// surface, and the concurrent swap-vs-transition stress (TSan target).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kernel/kernel.h"
#include "kernel/process.h"
#include "sfi/module.h"

namespace sack::sfi {
namespace {

using kernel::Cred;
using kernel::Kernel;
using kernel::Pid;
using kernel::Task;

constexpr std::string_view kAppExe = "/usr/bin/app";

// start --open--> at_open --read--> at_read --close--> start, with fork and
// the bookkeeping syscalls a kernel-driven test inevitably issues allowed
// everywhere.
constexpr std::string_view kAppProfile = R"(profile /usr/bin/app {
  states { start, at_open, at_read }
  initial start;
  flows {
    start -> at_open on sys_open;
    at_open -> at_read on sys_read;
    at_read -> at_read on sys_read;
    * -> start on sys_close;
    * -> * on sys_fork;
    * -> * on sys_exit;
    * -> * on sys_waitpid;
  }
  situation driving {
    deny sys_read;
  }
})";

class SfiModuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    module_ = static_cast<SfiModule*>(
        kernel_.add_lsm(std::make_unique<SfiModule>()));
    ASSERT_TRUE(module_->load_policy_text(kAppProfile).ok());
    app_ = &kernel_.spawn_task("app", Cred::root(), std::string(kAppExe));
  }

  Errno step(std::string_view syscall) {
    return module_->task_syscall(*app_, syscall);
  }

  Kernel kernel_;
  SfiModule* module_ = nullptr;
  Task* app_ = nullptr;
};

// --- enforcement ---

TEST_F(SfiModuleTest, UnconfinedTaskIsNeverDenied) {
  Task& other = kernel_.spawn_task("other", Cred::root(), "/usr/bin/other");
  EXPECT_EQ(module_->task_syscall(other, "sys_ioctl"), Errno::ok);
  EXPECT_EQ(module_->task_syscall(other, "sys_unlink"), Errno::ok);
  EXPECT_EQ(module_->denial_count(), 0u);
  EXPECT_EQ(module_->getprocattr(other), "");
}

TEST_F(SfiModuleTest, AdmissibleFlowAdvancesTheAutomaton) {
  EXPECT_EQ(step("sys_open"), Errno::ok);
  EXPECT_EQ(module_->getprocattr(*app_),
            "sfi=/usr/bin/app state=at_open (enforce)");
  EXPECT_EQ(step("sys_read"), Errno::ok);
  EXPECT_EQ(step("sys_read"), Errno::ok);
  EXPECT_EQ(step("sys_close"), Errno::ok);
  EXPECT_EQ(module_->getprocattr(*app_),
            "sfi=/usr/bin/app state=start (enforce)");
  EXPECT_EQ(module_->denial_count(), 0u);
  EXPECT_GE(module_->check_count(), 4u);
}

TEST_F(SfiModuleTest, InadmissibleSyscallIsDeniedAndAudited) {
  EXPECT_EQ(step("sys_open"), Errno::ok);
  // read-before-open order violation: at_open admits read, but a second
  // open does not exist from at_open.
  EXPECT_EQ(step("sys_open"), Errno::eacces);
  EXPECT_EQ(module_->denial_count(), 1u);

  // Denial does not advance (nor corrupt) the automaton: the admissible
  // continuation still works.
  EXPECT_EQ(step("sys_read"), Errno::ok);

  ASSERT_FALSE(kernel_.audit().records().empty());
  const auto& rec = kernel_.audit().records().back();
  EXPECT_EQ(rec.module, "sfi");
  EXPECT_EQ(rec.operation, "flow_violation");
  EXPECT_EQ(rec.verdict, kernel::AuditVerdict::denied);
  EXPECT_EQ(rec.subject, kAppExe);
  EXPECT_EQ(rec.object, "sys_open");
  EXPECT_NE(rec.context.find("profile=/usr/bin/app"), std::string::npos);
  EXPECT_NE(rec.context.find("state=at_open"), std::string::npos);

  auto ring = module_->recent_violations();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_NE(ring[0].find("sys_open"), std::string::npos);
}

TEST_F(SfiModuleTest, UnmodeledSyscallNamesPassThrough) {
  // A hook name outside kSyscallNames is not modeled — never denied.
  EXPECT_EQ(step("sys_future_thing"), Errno::ok);
  EXPECT_EQ(module_->denial_count(), 0u);
}

TEST_F(SfiModuleTest, AuditModeRecordsAllowsAndHoldsState) {
  module_->set_mode(SfiMode::audit);
  EXPECT_EQ(step("sys_open"), Errno::ok);
  EXPECT_EQ(step("sys_open"), Errno::ok);  // violation, but allowed
  EXPECT_EQ(module_->denial_count(), 1u);
  EXPECT_EQ(module_->audit_allow_count(), 1u);

  const auto& rec = kernel_.audit().records().back();
  EXPECT_EQ(rec.verdict, kernel::AuditVerdict::allowed);
  EXPECT_NE(rec.context.find("audit=1"), std::string::npos);

  // The automaton held at at_open (there was no state to advance to), so
  // the legitimate continuation is unaffected.
  EXPECT_EQ(step("sys_read"), Errno::ok);
  EXPECT_EQ(module_->getprocattr(*app_),
            "sfi=/usr/bin/app state=at_read (audit)");
}

TEST_F(SfiModuleTest, PerProfileAuditModeComesFromTheProfile) {
  ASSERT_TRUE(module_->load_policy_text(R"(profile /usr/bin/app {
    mode audit;
    states { s }
    initial s;
    flows { s -> s on sys_close; }
  })").ok());
  EXPECT_EQ(step("sys_ioctl"), Errno::ok);  // violation, audit-only profile
  EXPECT_GE(module_->audit_allow_count(), 1u);
}

// --- situation overlays ---

TEST_F(SfiModuleTest, SituationOverlayTightensAndReleases) {
  EXPECT_EQ(step("sys_open"), Errno::ok);

  module_->set_situation("driving");
  EXPECT_EQ(module_->current_situation(), "driving");
  EXPECT_EQ(step("sys_read"), Errno::eacces);
  const auto& rec = kernel_.audit().records().back();
  EXPECT_NE(rec.context.find("overlay=1"), std::string::npos);
  EXPECT_NE(rec.context.find("situation=driving"), std::string::npos);

  // Overlays are deny-only: the base transition is intact once released.
  module_->set_situation("parked_with_driver");
  EXPECT_EQ(step("sys_read"), Errno::ok);
}

TEST_F(SfiModuleTest, UnmentionedSituationDeniesNothing) {
  module_->set_situation("emergency");  // no profile overlays it
  EXPECT_EQ(step("sys_open"), Errno::ok);
  EXPECT_EQ(step("sys_read"), Errno::ok);
}

// --- per-task blob lifecycle ---

TEST_F(SfiModuleTest, ForkInheritsTheAutomatonPosition) {
  EXPECT_EQ(step("sys_open"), Errno::ok);
  EXPECT_EQ(step("sys_read"), Errno::ok);

  // Real fork: the gate dispatches sys_fork (a self-loop in the profile)
  // and task_alloc clones the blob.
  Pid child_pid = *kernel_.sys_fork(*app_);
  Task& child = kernel_.task(child_pid).value();
  EXPECT_EQ(module_->getprocattr(child),
            "sfi=/usr/bin/app state=at_read (enforce)");

  // The clone continues the parent's flow; both advance independently.
  EXPECT_EQ(module_->task_syscall(child, "sys_close"), Errno::ok);
  EXPECT_EQ(module_->getprocattr(child),
            "sfi=/usr/bin/app state=start (enforce)");
  EXPECT_EQ(module_->getprocattr(*app_),
            "sfi=/usr/bin/app state=at_read (enforce)");
}

TEST_F(SfiModuleTest, ExecResetsToTheNewImageInitialState) {
  EXPECT_EQ(step("sys_open"), Errno::ok);
  const std::uint64_t resets_before = module_->reset_count();

  module_->bprm_committed_creds(*app_, std::string(kAppExe));
  EXPECT_EQ(module_->reset_count(), resets_before + 1);

  // The next syscall re-attaches lazily at the initial state: a fresh
  // sys_open is admissible again (it was not from at_open).
  EXPECT_EQ(step("sys_open"), Errno::ok);
  EXPECT_EQ(module_->getprocattr(*app_),
            "sfi=/usr/bin/app state=at_open (enforce)");
}

TEST_F(SfiModuleTest, ExitTearsTheBlobDown) {
  EXPECT_EQ(step("sys_open"), Errno::ok);
  ASSERT_NE(module_->getprocattr(*app_), "");
  module_->task_free(*app_);
  EXPECT_EQ(module_->getprocattr(*app_), "");
}

TEST_F(SfiModuleTest, RealForkExitLifecycleStaysConfined) {
  // End-to-end through the kernel: fork, violate in the child, exit, reap.
  EXPECT_EQ(step("sys_open"), Errno::ok);
  Pid child_pid = *kernel_.sys_fork(*app_);
  Task& child = kernel_.task(child_pid).value();

  EXPECT_EQ(module_->task_syscall(child, "sys_open"), Errno::eacces);
  kernel_.sys_exit(child, 0);
  EXPECT_EQ(*kernel_.sys_waitpid(*app_, child_pid), 0);
  // Parent unaffected by the child's violation and teardown.
  EXPECT_EQ(step("sys_read"), Errno::ok);
}

// --- generation swaps ---

TEST_F(SfiModuleTest, PolicySwapReattachesAtInitial) {
  EXPECT_EQ(step("sys_open"), Errno::ok);
  const std::uint64_t gen = module_->generation();
  const std::uint64_t attaches = module_->attach_count();

  ASSERT_TRUE(module_->load_policy_text(kAppProfile).ok());
  EXPECT_EQ(module_->generation(), gen + 1);

  // The blob's generation lost the race: next syscall re-attaches at the
  // initial state, so sys_open (illegal from at_open) is admissible again.
  EXPECT_EQ(step("sys_open"), Errno::ok);
  EXPECT_GT(module_->attach_count(), attaches);
  EXPECT_EQ(module_->getprocattr(*app_),
            "sfi=/usr/bin/app state=at_open (enforce)");
}

TEST_F(SfiModuleTest, SwapToPolicyWithoutProfileUnconfines) {
  EXPECT_EQ(step("sys_open"), Errno::ok);
  ASSERT_TRUE(module_->load_policy_text(R"(profile /usr/bin/elsewhere {
    states { s }
    initial s;
    flows { s -> s on *; }
  })").ok());
  EXPECT_EQ(step("sys_ioctl"), Errno::ok);  // no profile for the exe anymore
  EXPECT_EQ(module_->getprocattr(*app_), "");
}

TEST_F(SfiModuleTest, BadPolicyTextReportsErrorsAndKeepsOld) {
  const std::uint64_t gen = module_->generation();
  std::vector<ParseError> errors;
  auto rc = module_->load_policy_text("profile /bin/x { garbage }", &errors);
  EXPECT_FALSE(rc.ok());
  EXPECT_FALSE(errors.empty());
  EXPECT_EQ(module_->generation(), gen);
  // Old policy still enforcing.
  EXPECT_EQ(step("sys_ioctl"), Errno::eacces);
}

// --- securityfs surface ---

TEST_F(SfiModuleTest, SecurityfsStatusAndProfilesExposeState) {
  kernel::Process admin(kernel_, kernel_.init_task());
  (void)step("sys_open");
  (void)step("sys_open");  // one denial

  auto status = admin.read_file("/sys/kernel/security/sfi/status");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("sfi_mode enforce"), std::string::npos);
  EXPECT_NE(status->find("sfi_generation 1"), std::string::npos);
  EXPECT_NE(status->find("sfi_profiles 1"), std::string::npos);
  EXPECT_NE(status->find("sfi_denials 1"), std::string::npos);

  auto profiles = admin.read_file("/sys/kernel/security/sfi/profiles");
  ASSERT_TRUE(profiles.ok());
  EXPECT_NE(profiles->find("profile /usr/bin/app {"), std::string::npos);

  auto violations = admin.read_file("/sys/kernel/security/sfi/violations");
  ASSERT_TRUE(violations.ok());
  EXPECT_NE(violations->find("sys_open"), std::string::npos);
}

TEST_F(SfiModuleTest, SecurityfsLoadRequiresMacAdmin) {
  kernel::Process admin(kernel_, kernel_.init_task());
  const std::string policy = R"(profile /usr/bin/app {
    states { s }
    initial s;
    flows { s -> s on *; }
  })";
  ASSERT_TRUE(admin.write_existing("/sys/kernel/security/sfi/.load", policy)
                  .ok());
  EXPECT_EQ(module_->generation(), 2u);

  Task& user = kernel_.spawn_task("user", Cred::user(1000, 1000));
  kernel::Process unpriv(kernel_, user);
  EXPECT_FALSE(
      unpriv.write_existing("/sys/kernel/security/sfi/.load", policy).ok());
  EXPECT_EQ(module_->generation(), 2u);
}

TEST_F(SfiModuleTest, SecurityfsModeFlipsEnforcement) {
  kernel::Process admin(kernel_, kernel_.init_task());
  ASSERT_TRUE(
      admin.write_existing("/sys/kernel/security/sfi/mode", "audit").ok());
  EXPECT_EQ(module_->mode(), SfiMode::audit);
  auto mode = admin.read_file("/sys/kernel/security/sfi/mode");
  ASSERT_TRUE(mode.ok());
  EXPECT_NE(mode->find("audit"), std::string::npos);
  ASSERT_TRUE(
      admin.write_existing("/sys/kernel/security/sfi/mode", "enforce").ok());
  EXPECT_EQ(module_->mode(), SfiMode::enforce);
}

// --- stacking ---

TEST_F(SfiModuleTest, GateDeniesTheRealSyscallFirstDenyWins) {
  // Through the real dispatch gate: chdir has no transition anywhere in the
  // profile, so the flow check denies the syscall before it touches the VFS.
  EXPECT_EQ(kernel_.sys_chdir(*app_, "/").error(), Errno::eacces);
  EXPECT_GE(module_->denial_count(), 1u);
}

// --- concurrency (TSan target: name matches the CI 'Sfi' regex) ---

TEST(SfiConcurrency, SwapAndSituationRaceTransitions) {
  // Readers drive per-thread tasks through a deny-free profile while a
  // writer hammers policy swaps and situation flips. TSan-clean by
  // construction: ProgramSets are immutable and RcuPtr-published, blobs are
  // thread-private, situation is one atomic token.
  SfiModule module;
  const std::string policy = R"(profile /usr/bin/worker {
    states { s }
    initial s;
    flows { * -> * on *; }
    situation driving { deny sys_capset_drop; }
  })";
  ASSERT_TRUE(module.load_policy_text(policy).ok());

  constexpr int kReaders = 4;
  constexpr int kIters = 3000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> denials{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Task task(Pid(1000 + t), Pid(1), "worker", Cred::root());
      task.set_exe_path("/usr/bin/worker");
      const std::string_view calls[] = {"sys_open", "sys_read", "sys_write",
                                        "sys_close", "sys_stat"};
      for (int i = 0; i < kIters; ++i) {
        Errno rc = module.task_syscall(task, calls[i % 5]);
        // The base profile admits everything; only the overlay can deny,
        // and it only covers sys_capset_drop, which we never issue.
        if (rc != Errno::ok) denials.fetch_add(1);
      }
      module.task_free(task);
    });
  }

  std::thread writer([&] {
    int flips = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(module.load_policy_text(policy).ok());
      module.set_situation(++flips % 2 ? "driving" : "parked_with_driver");
    }
  });

  for (auto& r : readers) r.join();
  stop.store(true);
  writer.join();

  EXPECT_EQ(denials.load(), 0u);
  EXPECT_EQ(module.check_count(),
            static_cast<std::uint64_t>(kReaders) * kIters);
  EXPECT_GE(module.generation(), 1u);
}


TEST(SfiConcurrency, OverlayTokenRepairedAcrossPolicyReload) {
  // Regression for the generation/token pairing fix: reloading the policy
  // mints a new ProgramSet (and new token numbering) — the overlay must
  // keep denying under the active situation, re-paired with the new
  // generation, not go dead (or worse, consult a stale row).
  SfiModule module;
  const std::string policy = R"(profile /usr/bin/worker {
    states { s }
    initial s;
    flows { * -> * on *; }
    situation a_sit { deny sys_write; }
    situation driving { deny sys_read; }
  })";
  ASSERT_TRUE(module.load_policy_text(policy).ok());
  module.set_situation("driving");

  Task task(Pid(2000), Pid(1), "worker", Cred::root());
  task.set_exe_path("/usr/bin/worker");
  EXPECT_EQ(module.task_syscall(task, "sys_read"), Errno::eacces);

  // Generation bump: the task's blob reattaches, and the freshly minted
  // token must pair with the new set.
  ASSERT_TRUE(module.load_policy_text(policy).ok());
  EXPECT_EQ(module.task_syscall(task, "sys_read"), Errno::eacces);
  EXPECT_EQ(module.task_syscall(task, "sys_open"), Errno::ok);
  module.task_free(task);
}

TEST(SfiConcurrency, SituationTokenNeverPairsAcrossGenerations) {
  // TSan target + functional race regression. Two policies give the
  // "driving" situation DIFFERENT token indexes, and the row at the other
  // policy's index denies sys_read — so if a reader ever pairs a token
  // from generation N with a ProgramSet from generation M != N, an issued
  // syscall is spuriously denied. The packed generation+token word makes
  // that pairing impossible: on a mismatch the overlay is skipped.
  const std::string policy_a = R"(profile /usr/bin/worker {
    states { s }
    initial s;
    flows { * -> * on *; }
    situation a_sit { deny sys_read; }
    situation driving { deny sys_capset_drop; }
  })";
  const std::string policy_b = R"(profile /usr/bin/worker {
    states { s }
    initial s;
    flows { * -> * on *; }
    situation driving { deny sys_capset_drop; }
    situation z_sit { deny sys_read; }
  })";
  SfiModule module;
  ASSERT_TRUE(module.load_policy_text(policy_a).ok());
  module.set_situation("driving");

  constexpr int kReaders = 4;
  constexpr int kSwaps = 3000;
  std::atomic<std::uint64_t> spurious{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Task task(Pid(3000 + t), Pid(1), "worker", Cred::root());
      task.set_exe_path("/usr/bin/worker");
      while (!done.load(std::memory_order_acquire)) {
        // Only sys_capset_drop is overlay-denied in BOTH generations'
        // "driving" rows; sys_read is denied only at the mismatched index.
        if (module.task_syscall(task, "sys_read") != Errno::ok)
          spurious.fetch_add(1);
      }
      module.task_free(task);
    });
  }
  for (int i = 0; i < kSwaps; ++i)
    ASSERT_TRUE(module.load_policy_text(i % 2 ? policy_b : policy_a).ok());
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(spurious.load(), 0u);
}

}  // namespace
}  // namespace sack::sfi
