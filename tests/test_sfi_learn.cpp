// SFI learning mode and the KOFFEE flow-variant case study.
//
// Learning: an SfiRecorder stacked as an LSM rides the real syscall stream,
// distills digram profiles, and verifies them replay-clean before the flip
// to enforcement. Case study: a compromised media app that stays entirely
// inside SACK + AppArmor file/capability policy but replays ioctls in an
// order the real program never issues — allowed by both MAC modules, denied
// by the flow automaton.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "ivi/ivi_system.h"
#include "kernel/kernel.h"
#include "kernel/process.h"
#include "sfi/module.h"
#include "sfi/recorder.h"

namespace sack::sfi {
namespace {

using kernel::Cred;
using kernel::Kernel;
using kernel::OpenFlags;
using kernel::Task;

constexpr std::string_view kDemoExe = "/usr/bin/demo";
constexpr std::string_view kDataFile = "/data/blob";

// The demo app's one real workload, replayed identically during learning
// and under enforcement: stat + full read of a file.
void run_demo_workload(kernel::Process& p) {
  ASSERT_TRUE(p.stat(kDataFile).ok());
  auto content = p.read_file(kDataFile);
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content->size(), 100u);
}

void populate(Kernel& k) {
  kernel::Process admin(k, k.init_task());
  k.vfs().mkdir_p("/data");
  ASSERT_TRUE(admin.write_file(kDataFile, std::string(100, 'x')).ok());
}

TEST(SfiLearn, RecordDistillVerifyThenEnforce) {
  // --- learn: observe the workload through the live gate ---
  Kernel rec_kernel;
  auto* recorder = static_cast<SfiRecorder*>(
      rec_kernel.add_lsm(std::make_unique<SfiRecorder>()));
  populate(rec_kernel);
  Task& demo =
      rec_kernel.spawn_task("demo", Cred::root(), std::string(kDemoExe));
  kernel::Process p(rec_kernel, demo);
  recorder->clear();  // drop boot/populate noise; learn the app only
  // Two iterations so the wrap-around digram (close -> stat) is observed —
  // a single run would deny the app the moment it started over.
  run_demo_workload(p);
  run_demo_workload(p);
  EXPECT_GT(recorder->observed_calls(), 0u);

  auto sequences = recorder->sequences();
  ASSERT_TRUE(std::any_of(sequences.begin(), sequences.end(),
                          [](const SfiRecorder::Sequence& s) {
                            return s.exe == kDemoExe && !s.calls.empty();
                          }));

  // --- distill + verify: only a replay-clean policy ships ---
  SfiPolicy learned = recorder->distill();
  ASSERT_TRUE(std::any_of(learned.profiles.begin(), learned.profiles.end(),
                          [](const SfiProfile& pr) {
                            return pr.exe == kDemoExe;
                          }));
  auto report = recorder->verify(learned);
  EXPECT_TRUE(report.clean) << report.detail;

  // The learned policy survives the canonical text round-trip.
  std::string text = dump_sfi_policy(learned);
  auto reparsed = parse_sfi_policy(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.errors.front().to_string();

  // --- enforce: fresh kernel, same workload, zero friction ---
  Kernel enf_kernel;
  auto* module = static_cast<SfiModule*>(
      enf_kernel.add_lsm(std::make_unique<SfiModule>()));
  ASSERT_TRUE(module->load_policy_text(text).ok());
  populate(enf_kernel);
  Task& demo2 =
      enf_kernel.spawn_task("demo", Cred::root(), std::string(kDemoExe));
  kernel::Process p2(enf_kernel, demo2);
  run_demo_workload(p2);
  run_demo_workload(p2);
  EXPECT_EQ(module->denial_count(), 0u);

  // --- and the off-profile flow is denied ---
  // The attack follows a learned prefix (stat, open) and then deviates: the
  // demo app never issued an ioctl anywhere in the recording, so the digram
  // automaton has no transition for it from any state.
  ASSERT_TRUE(p2.stat(kDataFile).ok());
  auto fd = p2.open(kDataFile, OpenFlags::read);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(p2.ioctl(*fd, 0x1234).error(), Errno::eacces);
  EXPECT_GE(module->denial_count(), 1u);
}

TEST(SfiLearn, VerifyCatchesAHandEditedHole) {
  Kernel k;
  auto* recorder =
      static_cast<SfiRecorder*>(k.add_lsm(std::make_unique<SfiRecorder>()));
  populate(k);
  Task& demo = k.spawn_task("demo", Cred::root(), std::string(kDemoExe));
  kernel::Process p(k, demo);
  recorder->clear();
  run_demo_workload(p);

  SfiPolicy learned = recorder->distill();
  ASSERT_TRUE(recorder->verify(learned).clean);

  // An operator who trims "redundant" rules breaks the replay: verify()
  // must catch it before the flip to enforce.
  for (auto& profile : learned.profiles) {
    if (profile.exe != kDemoExe) continue;
    std::erase_if(profile.flows, [](const FlowRule& r) {
      return std::find(r.syscalls.begin(), r.syscalls.end(), "sys_read") !=
             r.syscalls.end();
    });
  }
  auto report = recorder->verify(learned);
  EXPECT_FALSE(report.clean);
  EXPECT_NE(report.detail.find("sys_read"), std::string::npos);
}

TEST(SfiPolicyFiles, ShippedDefaultMatchesBuiltin) {
  // policies/ivi_default.sfi is the on-disk twin of
  // default_sfi_profiles_text(); the canonical dump is the fingerprint.
  std::ifstream in(SACK_POLICY_DIR "/ivi_default.sfi");
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();

  auto shipped = parse_sfi_policy(ss.str());
  ASSERT_TRUE(shipped.ok()) << shipped.errors.front().to_string();
  auto builtin = parse_sfi_policy(ivi::default_sfi_profiles_text());
  ASSERT_TRUE(builtin.ok());
  EXPECT_EQ(dump_sfi_policy(shipped.policy), dump_sfi_policy(builtin.policy));
}

// --- KOFFEE flow variant, end to end on the full IVI stack ---

class SfiKoffeeTest : public ::testing::Test {
 protected:
  SfiKoffeeTest()
      : sys_(ivi::IviSystem::Options{
            .mac = ivi::MacConfig::stacked_independent,
            .enable_sfi = true,
        }) {}

  std::size_t sfi_flow_denials() {
    std::size_t n = 0;
    for (const auto& rec : sys_.kernel().audit().records())
      if (rec.module == "sfi" && rec.operation == "flow_violation" &&
          rec.verdict == kernel::AuditVerdict::denied)
        ++n;
    return n;
  }

  ivi::IviSystem sys_;
};

TEST_F(SfiKoffeeTest, LegitimateMediaWorkloadsRunClean) {
  ASSERT_TRUE(sys_.media().set_volume(11).ok());
  auto track = sys_.media().play_track(ivi::IviSystem::kMediaTrack);
  ASSERT_TRUE(track.ok());
  EXPECT_EQ(track->size(), 4096u);
  ASSERT_TRUE(sys_.media().set_volume(7).ok());
  EXPECT_EQ(sys_.sfi()->denial_count(), 0u);
}

TEST_F(SfiKoffeeTest, IoctlReplayPassesMacButIsDeniedBySfi) {
  // The compromised media app replays a second ioctl on one open fd. SACK
  // grants AUDIO_CONTROL in parked_with_driver and AppArmor's media profile
  // grants the device node — both MAC modules allow every one of these
  // calls. Only the flow automaton knows set_volume is one-ioctl-per-open.
  ASSERT_EQ(sys_.situation(), "parked_with_driver");
  auto media = sys_.media_process();
  auto fd = media.open(ivi::VehicleHardware::kAudioPath, OpenFlags::write);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(media.ioctl(*fd, ivi::VEH_AUDIO_SET_VOLUME, 40).ok());

  auto replay = media.ioctl(*fd, ivi::VEH_AUDIO_SET_VOLUME, 40);
  EXPECT_EQ(replay.error(), Errno::eacces);
  EXPECT_GE(sys_.sfi()->denial_count(), 1u);
  EXPECT_GE(sfi_flow_denials(), 1u);

  const auto& records = sys_.kernel().audit().records();
  auto it = std::find_if(records.rbegin(), records.rend(),
                         [](const kernel::AuditRecord& r) {
                           return r.module == "sfi";
                         });
  ASSERT_NE(it, records.rend());
  EXPECT_EQ(it->operation, "flow_violation");
  EXPECT_EQ(it->subject, ivi::MediaApp::kExePath);
  EXPECT_EQ(it->object, "sys_ioctl");
  EXPECT_NE(it->context.find("state=at_ioctl"), std::string::npos);

  // close resets the flow; the app recovers cleanly.
  ASSERT_TRUE(media.close(*fd).ok());
  ASSERT_TRUE(sys_.media().set_volume(12).ok());
}

TEST_F(SfiKoffeeTest, AuditModeObservesTheAttackWithoutBreakingIt) {
  sys_.sfi()->set_mode(SfiMode::audit);
  auto media = sys_.media_process();
  auto fd = media.open(ivi::VehicleHardware::kAudioPath, OpenFlags::write);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(media.ioctl(*fd, ivi::VEH_AUDIO_SET_VOLUME, 40).ok());
  EXPECT_TRUE(media.ioctl(*fd, ivi::VEH_AUDIO_SET_VOLUME, 40).ok());
  ASSERT_TRUE(media.close(*fd).ok());

  EXPECT_GE(sys_.sfi()->audit_allow_count(), 1u);
  const auto& records = sys_.kernel().audit().records();
  EXPECT_TRUE(std::any_of(records.begin(), records.end(),
                          [](const kernel::AuditRecord& r) {
                            return r.module == "sfi" &&
                                   r.operation == "flow_violation" &&
                                   r.verdict == kernel::AuditVerdict::allowed;
                          }));
}

TEST_F(SfiKoffeeTest, DrivingOverlayLocksOutVolumeChanges) {
  // SACK still grants AUDIO_CONTROL while driving (state_per driving), so
  // the lockout below is purely the SFI situation overlay.
  ASSERT_TRUE(sys_.media().set_volume(9).ok());

  ASSERT_TRUE(sys_.sack()->deliver_event("start_driving").ok());
  EXPECT_EQ(sys_.situation(), "driving");
  // SSM -> SFI fan-out happened through the transition listener.
  EXPECT_EQ(sys_.sfi()->current_situation(), "driving");

  EXPECT_EQ(sys_.media().set_volume(40).error(), Errno::eacces);
  EXPECT_GE(sfi_flow_denials(), 1u);

  // Playback (reads) is untouched by the deny-only overlay.
  EXPECT_TRUE(sys_.media().play_track(ivi::IviSystem::kMediaTrack).ok());

  ASSERT_TRUE(sys_.sack()->deliver_event("stop_driving").ok());
  EXPECT_EQ(sys_.sfi()->current_situation(), "parked_with_driver");
  EXPECT_TRUE(sys_.media().set_volume(10).ok());
}

TEST_F(SfiKoffeeTest, SfiIsAbsentUnlessOptedIn) {
  ivi::IviSystem plain(ivi::IviSystem::Options{
      .mac = ivi::MacConfig::stacked_independent,
  });
  EXPECT_EQ(plain.sfi(), nullptr);
  // Without the flow module the ioctl replay sails through both MAC
  // modules — the gap this PR closes.
  auto media = plain.media_process();
  auto fd = media.open(ivi::VehicleHardware::kAudioPath, OpenFlags::write);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(media.ioctl(*fd, ivi::VEH_AUDIO_SET_VOLUME, 40).ok());
  EXPECT_TRUE(media.ioctl(*fd, ivi::VEH_AUDIO_SET_VOLUME, 40).ok());
}

}  // namespace
}  // namespace sack::sfi
