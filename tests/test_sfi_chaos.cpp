// SFI fault-injection coverage: the two production sites registered for the
// flow module. `sfi.profile.load` fails a compile before publication — the
// previous ProgramSet must stay live and enforcing. `sfi.transition.fail`
// fails a single transition probe closed — the automaton state must come
// through uncorrupted.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "kernel/kernel.h"
#include "sfi/module.h"
#include "util/fault.h"

namespace sack::sfi {
namespace {

using kernel::Cred;
using kernel::Kernel;
using kernel::Task;
using util::FaultInjector;
using util::FaultSpec;

constexpr std::string_view kExe = "/usr/bin/app";

constexpr std::string_view kProfileV1 = R"(profile /usr/bin/app {
  states { start, at_open }
  initial start;
  flows {
    start -> at_open on sys_open;
    at_open -> start on sys_close;
  }
})";

// v2 additionally admits sys_read from at_open — a decision that flips
// observably if (and only if) v2 actually activates.
constexpr std::string_view kProfileV2 = R"(profile /usr/bin/app {
  states { start, at_open }
  initial start;
  flows {
    start -> at_open on sys_open;
    at_open -> at_open on sys_read;
    at_open -> start on sys_close;
  }
})";

class SfiFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().reset();
    module_ = static_cast<SfiModule*>(
        kernel_.add_lsm(std::make_unique<SfiModule>()));
    ASSERT_TRUE(module_->load_policy_text(kProfileV1).ok());
    app_ = &kernel_.spawn_task("app", Cred::root(), std::string(kExe));
  }
  void TearDown() override { FaultInjector::instance().reset(); }

  Errno step(std::string_view syscall) {
    return module_->task_syscall(*app_, syscall);
  }

  Kernel kernel_;
  SfiModule* module_ = nullptr;
  Task* app_ = nullptr;
};

TEST_F(SfiFaultTest, SitesAreInTheCentralRegistry) {
  auto& fi = FaultInjector::instance();
  EXPECT_TRUE(fi.is_registered("sfi.profile.load"));
  EXPECT_TRUE(fi.is_registered("sfi.transition.fail"));
}

TEST_F(SfiFaultTest, ProfileLoadFaultKeepsTheOldSetLive) {
  auto& fi = FaultInjector::instance();
  FaultSpec spec;
  spec.error = Errno::enomem;
  ASSERT_TRUE(fi.arm("sfi.profile.load", spec));

  auto rc = module_->load_policy_text(kProfileV2);
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error(), Errno::enomem);
  EXPECT_EQ(fi.stats("sfi.profile.load").fires, 1u);

  // Nothing was published: generation unchanged, v1 still the set that
  // decides — sys_read from at_open is still a violation.
  EXPECT_EQ(module_->generation(), 1u);
  EXPECT_EQ(module_->programs()->generation(), 1u);
  EXPECT_EQ(step("sys_open"), Errno::ok);
  EXPECT_EQ(step("sys_read"), Errno::eacces);

  // Recovery after disarm: the same load goes through and flips the
  // decision.
  fi.disarm("sfi.profile.load");
  ASSERT_TRUE(module_->load_policy_text(kProfileV2).ok());
  EXPECT_EQ(module_->generation(), 2u);
  EXPECT_EQ(step("sys_open"), Errno::ok);
  EXPECT_EQ(step("sys_read"), Errno::ok);
}

TEST_F(SfiFaultTest, TransitionFaultFailsClosedAndPreservesState) {
  EXPECT_EQ(step("sys_open"), Errno::ok);  // start -> at_open

  auto& fi = FaultInjector::instance();
  FaultSpec spec;
  spec.error = Errno::eio;
  ASSERT_TRUE(fi.arm("sfi.transition.fail", spec));

  // The probe fails closed with the injected errno, not EACCES — the
  // caller can tell infrastructure failure from a policy denial.
  EXPECT_EQ(step("sys_close"), Errno::eio);
  EXPECT_EQ(fi.stats("sfi.transition.fail").fires, 1u);
  // Fail-closed is not an audited flow violation.
  EXPECT_EQ(module_->denial_count(), 0u);

  // The automaton did not move: after disarm the flow resumes exactly
  // where it was (close is admissible from at_open, open is not).
  fi.disarm("sfi.transition.fail");
  EXPECT_EQ(step("sys_close"), Errno::ok);
  EXPECT_EQ(step("sys_open"), Errno::ok);
}

TEST_F(SfiFaultTest, TransitionFaultCanTargetOneSyscall) {
  // detail = syscall name, so a campaign can fail e.g. only sys_close.
  auto& fi = FaultInjector::instance();
  FaultSpec spec;
  spec.error = Errno::eio;
  spec.match = "sys_close";
  ASSERT_TRUE(fi.arm("sfi.transition.fail", spec));

  EXPECT_EQ(step("sys_open"), Errno::ok);   // unmatched: passes
  EXPECT_EQ(step("sys_close"), Errno::eio);  // matched: fails closed
  fi.disarm("sfi.transition.fail");
  EXPECT_EQ(step("sys_close"), Errno::ok);
}

TEST_F(SfiFaultTest, UnconfinedTasksAreNotProbed) {
  // The fault probe sits behind the confinement check: unconfined tasks
  // must not feel an armed transition fault.
  auto& fi = FaultInjector::instance();
  FaultSpec spec;
  spec.error = Errno::eio;
  ASSERT_TRUE(fi.arm("sfi.transition.fail", spec));

  Task& other = kernel_.spawn_task("other", Cred::root(), "/usr/bin/other");
  EXPECT_EQ(module_->task_syscall(other, "sys_open"), Errno::ok);
  EXPECT_EQ(fi.stats("sfi.transition.fail").fires, 0u);
}

}  // namespace
}  // namespace sack::sfi
