// SFI profile layer: parser round-trips, checker diagnostics, compiler
// precedence tiers, and the sequence simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sfi/automaton.h"
#include "sfi/profile.h"

namespace sack::sfi {
namespace {

constexpr std::string_view kMediaProfile = R"(# media player flow profile
profile /usr/bin/media_app {
  mode enforce;
  states { start, at_open, at_read }
  initial start;
  flows {
    start -> at_open on sys_open;
    at_open -> at_read on sys_read, sys_fstat;
    * -> start on sys_close;
    at_read -> * on sys_lseek;
    deny start on sys_ioctl;
  }
  situation driving {
    deny sys_ioctl, sys_unlink;
  }
}
)";

std::uint16_t sid(std::string_view name) {
  int idx = syscall_index(name);
  EXPECT_GE(idx, 0) << name;
  return static_cast<std::uint16_t>(idx);
}

// Finds the named state's index in a compiled program by probing state
// names; compiled state order is an implementation detail.
std::uint16_t state_of(const Program& p, std::string_view name) {
  for (std::uint16_t s = 0; s < p.state_count(); ++s)
    if (p.state_name(s) == name) return s;
  ADD_FAILURE() << "state not found: " << name;
  return Program::kDeny;
}

// --- syscall table ---

TEST(SfiSyscallTable, EveryNameRoundTrips) {
  for (std::size_t i = 0; i < kSyscallNames.size(); ++i)
    EXPECT_EQ(syscall_index(kSyscallNames[i]), static_cast<int>(i))
        << kSyscallNames[i];
}

TEST(SfiSyscallTable, UnknownNamesAreNegative) {
  EXPECT_EQ(syscall_index("sys_openat"), -1);
  EXPECT_EQ(syscall_index(""), -1);
  EXPECT_EQ(syscall_index("open"), -1);
}

// --- parser ---

TEST(SfiParser, ParsesMediaProfileStructure) {
  auto r = parse_sfi_policy(kMediaProfile);
  ASSERT_TRUE(r.ok()) << r.errors.front().to_string();
  ASSERT_EQ(r.policy.profiles.size(), 1u);

  const SfiProfile& p = r.policy.profiles[0];
  EXPECT_EQ(p.exe, "/usr/bin/media_app");
  EXPECT_FALSE(p.audit_only);
  EXPECT_EQ(p.states, (std::vector<std::string>{"start", "at_open", "at_read"}));
  EXPECT_EQ(p.initial, "start");
  ASSERT_EQ(p.flows.size(), 5u);

  // `deny start on sys_ioctl` parses as a deny rule, not a transition.
  const auto& deny = p.flows[4];
  EXPECT_TRUE(deny.deny);
  EXPECT_EQ(deny.from, "start");
  EXPECT_EQ(deny.syscalls, std::vector<std::string>{"sys_ioctl"});

  ASSERT_EQ(p.overlays.size(), 1u);
  EXPECT_EQ(p.overlays[0].situation, "driving");
  EXPECT_EQ(p.overlays[0].deny,
            (std::vector<std::string>{"sys_ioctl", "sys_unlink"}));
}

TEST(SfiParser, AuditModeAndCatchAllsParse) {
  auto r = parse_sfi_policy(R"(profile /bin/x {
    mode audit;
    states { a }
    initial a;
    flows { a -> a on *; }
  })");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.policy.profiles[0].audit_only);
  EXPECT_TRUE(r.policy.profiles[0].flows[0].any_syscall);
}

TEST(SfiParser, CanonicalDumpRoundTrips) {
  auto first = parse_sfi_policy(kMediaProfile);
  ASSERT_TRUE(first.ok());
  std::string dumped = dump_sfi_policy(first.policy);

  auto second = parse_sfi_policy(dumped);
  ASSERT_TRUE(second.ok()) << second.errors.front().to_string();
  // dump is a fixed point: rendering the reparsed policy is bit-identical.
  EXPECT_EQ(dump_sfi_policy(second.policy), dumped);
}

TEST(SfiParser, DumpIsOrderIndependent) {
  // The same rules in a different source order fingerprint identically.
  auto a = parse_sfi_policy(R"(profile /bin/x {
    states { s, t }
    initial s;
    flows { s -> t on sys_open; t -> s on sys_close; }
  })");
  auto b = parse_sfi_policy(R"(profile /bin/x {
    states { s, t }
    initial s;
    flows { t -> s on sys_close; s -> t on sys_open; }
  })");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(dump_sfi_policy(a.policy), dump_sfi_policy(b.policy));
}

// --- checker ---

bool has_error_containing(const SfiParseResult& r, std::string_view needle) {
  return std::any_of(r.errors.begin(), r.errors.end(), [&](const ParseError& e) {
    return e.message.find(needle) != std::string::npos;
  });
}

TEST(SfiChecker, UnknownStateInFlowIsAnError) {
  auto r = parse_sfi_policy(R"(profile /bin/x {
    states { a }
    initial a;
    flows { a -> ghost on sys_open; }
  })");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error_containing(r, "unknown state 'ghost'"));
}

TEST(SfiChecker, UnknownSyscallIsAnError) {
  // A typo in a whitelist silently denies, so it must fail the load.
  auto r = parse_sfi_policy(R"(profile /bin/x {
    states { a }
    initial a;
    flows { a -> a on sys_opne; }
  })");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error_containing(r, "unknown syscall 'sys_opne'"));
}

TEST(SfiChecker, MissingInitialIsAnError) {
  auto r = parse_sfi_policy(R"(profile /bin/x {
    states { a }
    flows { a -> a on *; }
  })");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error_containing(r, "missing 'initial'"));
}

TEST(SfiChecker, UndeclaredInitialIsAnError) {
  auto r = parse_sfi_policy(R"(profile /bin/x {
    states { a }
    initial b;
    flows { a -> a on *; }
  })");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error_containing(r, "initial state 'b' not declared"));
}

TEST(SfiChecker, DuplicateStateIsAnError) {
  auto r = parse_sfi_policy(R"(profile /bin/x {
    states { a, a }
    initial a;
    flows { a -> a on *; }
  })");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error_containing(r, "duplicate state 'a'"));
}

TEST(SfiChecker, NondeterministicTransitionIsAnError) {
  // Two different targets for the same (state, syscall) pair: the dense
  // table could only keep one, so the checker must reject it.
  auto r = parse_sfi_policy(R"(profile /bin/x {
    states { a, b, c }
    initial a;
    flows {
      a -> b on sys_open;
      a -> c on sys_open;
    }
  })");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error_containing(r, "nondeterministic transition"));
}

TEST(SfiChecker, DuplicateProfileExeIsAnError) {
  auto r = parse_sfi_policy(R"(
profile /bin/x { states { a } initial a; flows { a -> a on *; } }
profile /bin/x { states { a } initial a; flows { a -> a on *; } }
)");
  EXPECT_FALSE(r.ok());
}

TEST(SfiChecker, OverlayUnknownSyscallIsAnError) {
  auto r = parse_sfi_policy(R"(profile /bin/x {
    states { a }
    initial a;
    flows { a -> a on *; }
    situation driving { deny sys_nope; }
  })");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error_containing(r, "unknown syscall 'sys_nope'"));
}

// --- compiler: precedence tiers ---

// One profile exercising every resolution tier:
//   explicit deny > explicit transition > `* ->` named > per-state `on *`
//   > default deny.
constexpr std::string_view kTieredProfile = R"(profile /bin/tiers {
  states { a, b }
  initial a;
  flows {
    a -> b on sys_open;       # explicit transition
    * -> b on sys_close;      # star-from named transition
    a -> a on *;              # per-state catch-all
    b -> * on sys_read;       # '*' target = stay put
    deny a on sys_ioctl;      # beats the catch-all below it
  }
})";

class SfiCompileTiers : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parsed = parse_sfi_policy(kTieredProfile);
    ASSERT_TRUE(parsed.ok()) << parsed.errors.front().to_string();
    auto compiled = compile_sfi_policy(parsed.policy, 1);
    ASSERT_TRUE(compiled.ok());
    set_ = *compiled;
    prog_ = set_->find("/bin/tiers");
    ASSERT_NE(prog_, nullptr);
    a_ = state_of(*prog_, "a");
    b_ = state_of(*prog_, "b");
  }

  std::shared_ptr<const ProgramSet> set_;
  const Program* prog_ = nullptr;
  std::uint16_t a_ = 0, b_ = 0;
};

TEST_F(SfiCompileTiers, ExplicitTransitionBeatsCatchAll) {
  EXPECT_EQ(prog_->next(a_, sid("sys_open")), b_);
}

TEST_F(SfiCompileTiers, StarFromBeatsPerStateCatchAll) {
  // `* -> b on sys_close` wins over `a -> a on *`.
  EXPECT_EQ(prog_->next(a_, sid("sys_close")), b_);
  EXPECT_EQ(prog_->next(b_, sid("sys_close")), b_);
}

TEST_F(SfiCompileTiers, DenyBeatsEverything) {
  EXPECT_EQ(prog_->next(a_, sid("sys_ioctl")), Program::kDeny);
}

TEST_F(SfiCompileTiers, CatchAllFillsTheRest) {
  EXPECT_EQ(prog_->next(a_, sid("sys_write")), a_);
  EXPECT_EQ(prog_->next(a_, sid("sys_fork")), a_);
}

TEST_F(SfiCompileTiers, StarTargetIsSelfLoop) {
  EXPECT_EQ(prog_->next(b_, sid("sys_read")), b_);
}

TEST_F(SfiCompileTiers, UnnamedPairsDefaultDeny) {
  // b has no catch-all, so anything not named from b is inadmissible.
  EXPECT_EQ(prog_->next(b_, sid("sys_write")), Program::kDeny);
  EXPECT_EQ(prog_->next(b_, sid("sys_ioctl")), Program::kDeny);
}

TEST(SfiCompile, GlobalCatchAllAdmitsEverything) {
  auto parsed = parse_sfi_policy(R"(profile /bin/any {
    states { s }
    initial s;
    flows { * -> * on *; }
  })");
  ASSERT_TRUE(parsed.ok());
  auto compiled = compile_sfi_policy(parsed.policy, 1);
  ASSERT_TRUE(compiled.ok());
  const Program* p = (*compiled)->find("/bin/any");
  ASSERT_NE(p, nullptr);
  for (std::size_t i = 0; i < kSyscallNames.size(); ++i)
    EXPECT_EQ(p->next(0, static_cast<std::uint16_t>(i)), 0);
}

TEST(SfiCompile, SituationOverlaysAreInternedPerSet) {
  auto parsed = parse_sfi_policy(kMediaProfile);
  ASSERT_TRUE(parsed.ok());
  auto compiled = compile_sfi_policy(parsed.policy, 7);
  ASSERT_TRUE(compiled.ok());
  auto set = *compiled;
  EXPECT_EQ(set->generation(), 7u);

  std::uint32_t driving = set->situation_token("driving");
  ASSERT_NE(driving, kNoSituation);
  EXPECT_EQ(set->situation_token("parked_with_driver"), kNoSituation);

  const Program* p = set->find("/usr/bin/media_app");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->situation_denies(driving, sid("sys_ioctl")));
  EXPECT_TRUE(p->situation_denies(driving, sid("sys_unlink")));
  EXPECT_FALSE(p->situation_denies(driving, sid("sys_open")));
  // The no-overlay token denies nothing, ever.
  EXPECT_FALSE(p->situation_denies(kNoSituation, sid("sys_ioctl")));
}

// --- simulator ---

TEST(SfiSimulate, CleanSequenceWalksAndRecordsSteps) {
  auto parsed = parse_sfi_policy(kMediaProfile);
  ASSERT_TRUE(parsed.ok());
  auto set = *compile_sfi_policy(parsed.policy, 1);
  const Program* p = set->find("/usr/bin/media_app");

  std::vector<SimStep> steps;
  int denied = simulate_program(
      *p, kNoSituation, {"sys_open", "sys_read", "sys_lseek", "sys_close"},
      &steps);
  EXPECT_EQ(denied, -1);
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[0].from_state, "start");
  EXPECT_EQ(steps[0].to_state, "at_open");
  EXPECT_EQ(steps[2].to_state, "at_read");  // lseek self-loops
  EXPECT_EQ(steps[3].to_state, "start");
}

TEST(SfiSimulate, FirstInadmissibleStepIsReported) {
  auto parsed = parse_sfi_policy(kMediaProfile);
  ASSERT_TRUE(parsed.ok());
  auto set = *compile_sfi_policy(parsed.policy, 1);
  const Program* p = set->find("/usr/bin/media_app");

  std::vector<SimStep> steps;
  // open twice in a row: at_open has no sys_open transition.
  int denied = simulate_program(*p, kNoSituation,
                                {"sys_open", "sys_open", "sys_read"}, &steps);
  EXPECT_EQ(denied, 1);
  ASSERT_GE(steps.size(), 2u);
  EXPECT_TRUE(steps[1].denied);
  EXPECT_FALSE(steps[1].overlay_deny);
  EXPECT_EQ(steps[1].from_state, "at_open");
}

TEST(SfiSimulate, OverlayDenyIsFlaggedAsSuch) {
  auto parsed = parse_sfi_policy(R"(profile /bin/x {
    states { s }
    initial s;
    flows { s -> s on *; }
    situation driving { deny sys_unlink; }
  })");
  ASSERT_TRUE(parsed.ok());
  auto set = *compile_sfi_policy(parsed.policy, 1);
  const Program* p = set->find("/bin/x");
  std::uint32_t driving = set->situation_token("driving");

  std::vector<SimStep> steps;
  int denied =
      simulate_program(*p, driving, {"sys_open", "sys_unlink"}, &steps);
  EXPECT_EQ(denied, 1);
  EXPECT_TRUE(steps[1].denied);
  EXPECT_TRUE(steps[1].overlay_deny);

  // Same sequence without the situation held is clean.
  EXPECT_EQ(simulate_program(*p, kNoSituation, {"sys_open", "sys_unlink"}),
            -1);
}

}  // namespace
}  // namespace sack::sfi
