// SDS: detectors, traces, and transmission into SACKfs.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/sack_module.h"
#include "ivi/ivi_system.h"
#include "kernel/process.h"
#include "sds/detectors.h"
#include "sds/sds.h"
#include "sds/traces.h"

namespace sack::sds {
namespace {

SensorFrame frame(std::int64_t t_ms, double speed, Gear gear,
                  bool driver = true, double accel = 0.0,
                  bool crash = false) {
  SensorFrame f;
  f.time_ms = t_ms;
  f.speed_kmh = speed;
  f.gear = gear;
  f.driver_present = driver;
  f.accel_g = accel;
  f.crash_signal = crash;
  return f;
}

TEST(CrashDetector, FiresOnCrashSignalOnce) {
  CrashDetector d;
  auto e1 = d.on_frame(frame(0, 80, Gear::drive, true, 0.2, true));
  ASSERT_EQ(e1.size(), 1u);
  EXPECT_EQ(e1[0], "crash_detected");
  // Latched: no repeat while still crashed.
  EXPECT_TRUE(d.on_frame(frame(100, 40, Gear::drive, true, 0.2, true)).empty());
  EXPECT_TRUE(d.in_emergency());
}

TEST(CrashDetector, FiresOnAccelSpike) {
  CrashDetector d(4.0);
  EXPECT_TRUE(d.on_frame(frame(0, 80, Gear::drive, true, 3.9)).empty());
  auto e = d.on_frame(frame(100, 80, Gear::drive, true, 6.5));
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0], "crash_detected");
}

TEST(CrashDetector, ClearsAfterQuietPeriod) {
  CrashDetector d(4.0, /*clear_ms=*/1000);
  (void)d.on_frame(frame(0, 80, Gear::drive, true, 8.0));
  // Quiet but not long enough.
  EXPECT_TRUE(d.on_frame(frame(500, 0.0, Gear::park)).empty());
  EXPECT_TRUE(d.on_frame(frame(1400, 0.0, Gear::park)).empty());
  auto e = d.on_frame(frame(1600, 0.0, Gear::park));
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0], "emergency_cleared");
  EXPECT_FALSE(d.in_emergency());
}

TEST(CrashDetector, MovementResetsQuietWindow) {
  CrashDetector d(4.0, 1000);
  (void)d.on_frame(frame(0, 80, Gear::drive, true, 8.0));
  EXPECT_TRUE(d.on_frame(frame(600, 0.0, Gear::park)).empty());
  // Vehicle moves again (towing?) -> the quiet window restarts.
  EXPECT_TRUE(d.on_frame(frame(900, 3.0, Gear::park)).empty());
  EXPECT_TRUE(d.on_frame(frame(1000, 0.0, Gear::park)).empty());
  // 1000 ms after the *restart*, not the crash: still latched at 1900...
  EXPECT_TRUE(d.on_frame(frame(1900, 0.0, Gear::park)).empty());
  // ...cleared once the restarted window elapses.
  auto e = d.on_frame(frame(2100, 0.0, Gear::park));
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0], "emergency_cleared");
}

TEST(DrivingDetector, HysteresisPreventsChatter) {
  DrivingDetector d(5.0, 1.0);
  EXPECT_TRUE(d.on_frame(frame(0, 3, Gear::drive)).empty());
  auto start = d.on_frame(frame(1, 6, Gear::drive));
  ASSERT_EQ(start.size(), 1u);
  EXPECT_EQ(start[0], "start_driving");
  // Slow to 3 km/h in drive: still driving (stop needs park + <=1).
  EXPECT_TRUE(d.on_frame(frame(2, 3, Gear::drive)).empty());
  auto stop = d.on_frame(frame(3, 0.5, Gear::park));
  ASSERT_EQ(stop.size(), 1u);
  EXPECT_EQ(stop[0], "stop_driving");
}

TEST(SpeedBandDetector, CrossesWithHysteresis) {
  SpeedBandDetector d(60, 5);
  EXPECT_TRUE(d.on_frame(frame(0, 60, Gear::drive)).empty());  // inside band
  auto high = d.on_frame(frame(1, 66, Gear::drive));
  ASSERT_EQ(high.size(), 1u);
  EXPECT_EQ(high[0], "high_speed_entered");
  EXPECT_TRUE(d.on_frame(frame(2, 58, Gear::drive)).empty());  // within band
  auto low = d.on_frame(frame(3, 54, Gear::drive));
  ASSERT_EQ(low.size(), 1u);
  EXPECT_EQ(low[0], "low_speed_entered");
}

TEST(ParkingDetector, DistinguishesOccupancy) {
  ParkingDetector d;
  auto with_driver = d.on_frame(frame(0, 0, Gear::park, true));
  ASSERT_EQ(with_driver.size(), 1u);
  EXPECT_EQ(with_driver[0], "parked_with_driver");
  auto left = d.on_frame(frame(1, 0, Gear::park, false));
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0], "parked_without_driver");
  EXPECT_TRUE(d.on_frame(frame(2, 0, Gear::park, false)).empty());
  EXPECT_TRUE(d.on_frame(frame(3, 30, Gear::drive, true)).empty());
  auto back = d.on_frame(frame(4, 0, Gear::park, true));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], "parked_with_driver");
}

TEST(GeofenceDetector, EntersAndLeavesZone) {
  GeofenceDetector d("depot", 48.0, 9.0, 0.01);
  SensorFrame far = frame(0, 30, Gear::drive);
  far.latitude = 48.5;
  far.longitude = 9.5;
  EXPECT_TRUE(d.on_frame(far).empty());
  EXPECT_FALSE(d.inside());

  SensorFrame near = far;
  near.time_ms = 100;
  near.latitude = 48.004;
  near.longitude = 9.003;
  auto entered = d.on_frame(near);
  ASSERT_EQ(entered.size(), 1u);
  EXPECT_EQ(entered[0], "entered_depot");
  EXPECT_TRUE(d.inside());
  // Staying inside: no repeat.
  EXPECT_TRUE(d.on_frame(near).empty());

  auto left = d.on_frame(far);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0], "left_depot");
}

// --- traces ---

TEST(Traces, HighwayCrashProducesCrashAndClear) {
  auto trace = highway_crash_trace(10);
  CrashDetector d;
  std::vector<std::string> events;
  for (const auto& f : trace) {
    for (auto& e : d.on_frame(f)) events.push_back(e);
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "crash_detected");
  EXPECT_EQ(events[1], "emergency_cleared");
}

TEST(Traces, CityDriveStartsAndStops) {
  auto trace = city_drive_trace(60);
  DrivingDetector d;
  std::vector<std::string> events;
  for (const auto& f : trace)
    for (auto& e : d.on_frame(f)) events.push_back(e);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front(), "start_driving");
  EXPECT_EQ(events.back(), "stop_driving");
}

TEST(Traces, Deterministic) {
  auto a = city_drive_trace(30, {.seed = 7});
  auto b = city_drive_trace(30, {.seed = 7});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].speed_kmh, b[i].speed_kmh);
    EXPECT_EQ(a[i].accel_g, b[i].accel_g);
  }
}

TEST(Traces, SpeedOscillationCrossesBandEveryPeriod) {
  auto trace = speed_oscillation_trace(500, 4);
  SpeedBandDetector d(60, 5);
  int events = 0;
  for (const auto& f : trace) events += static_cast<int>(d.on_frame(f).size());
  EXPECT_EQ(events, 8);  // 4 cycles x 2 crossings
}

TEST(Traces, ParkingHandoffSequence) {
  auto trace = parking_handoff_trace();
  ParkingDetector d;
  std::vector<std::string> events;
  for (const auto& f : trace)
    for (auto& e : d.on_frame(f)) events.push_back(e);
  std::vector<std::string> expected{"parked_with_driver",
                                    "parked_without_driver",
                                    "parked_with_driver",
                                    "parked_with_driver"};
  EXPECT_EQ(events, expected);
}

// --- end-to-end: SDS drives the kernel SSM ---

TEST(SdsEndToEnd, TraceMovesKernelSituationState) {
  ivi::IviSystem ivi({.mac = ivi::MacConfig::independent_sack});
  auto& sds = ivi.sds();

  auto trace = highway_crash_trace(5);
  std::size_t crash_frame = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    (void)sds.feed(trace[i]);
    if (trace[i].crash_signal && crash_frame == 0) {
      crash_frame = i;
      EXPECT_EQ(ivi.situation(), "emergency");
    }
  }
  EXPECT_GT(crash_frame, 0u);
  // After the quiet period the SDS cleared the emergency.
  EXPECT_EQ(ivi.situation(), "parked_with_driver");
  EXPECT_GT(sds.events_sent(), 0u);
  EXPECT_EQ(sds.send_failures(), 0u);
}

TEST(SdsEndToEnd, DirectEventEmulation) {
  // The paper emulates events by writing the pseudo-file; send_event is that.
  ivi::IviSystem ivi({.mac = ivi::MacConfig::independent_sack});
  ASSERT_TRUE(ivi.sds().send_event("crash_detected").ok());
  EXPECT_EQ(ivi.situation(), "emergency");
}

TEST(SdsEndToEnd, FloodThrottlingSuppressesRepeats) {
  ivi::IviSystem ivi({.mac = ivi::MacConfig::independent_sack, .start_sds = false});
  auto& sds = ivi.sds();
  // A flapping detector: emits on every frame.
  class Flapper : public Detector {
   public:
    std::string_view detector_name() const override { return "flapper"; }
    std::vector<std::string> on_frame(const SensorFrame&) override {
      return {"start_driving"};
    }
  };
  sds.add_detector(std::make_unique<Flapper>());
  sds.set_min_event_interval_ms(1000);

  for (int i = 0; i < 50; ++i) {
    (void)sds.feed(frame(i * 100, 30, Gear::drive));  // 10 Hz flapping
  }
  // 5 s of scenario time at a 1 s throttle: at most ~5-6 sends.
  EXPECT_LE(sds.events_sent(), 6u);
  EXPECT_GE(sds.events_suppressed(), 44u);

  // Distinct events are not throttled against each other.
  sds.set_min_event_interval_ms(1'000'000);
  ASSERT_TRUE(sds.send_event("stop_driving").ok());
}

TEST(SdsEndToEnd, RateLimiterRetriesAfterFailedTransmit) {
  // Regression: the rate limiter used to stamp last_sent_ms_ on every
  // attempt, so a *failed* transmit silenced that event for the whole
  // min_interval window — an event could be lost for seconds even though
  // the kernel never saw it. A failed send must leave the window open.
  ivi::IviSystem ivi({.mac = ivi::MacConfig::independent_sack});
  auto& kernel = ivi.kernel();
  auto& user = kernel.spawn_task("evil", kernel::Cred::user(1000, 1000));
  SituationDetectionService sds(kernel::Process(kernel, user));
  class Flapper : public Detector {
   public:
    std::string_view detector_name() const override { return "flapper"; }
    std::vector<std::string> on_frame(const SensorFrame&) override {
      return {"crash_detected"};
    }
  };
  sds.add_detector(std::make_unique<Flapper>());
  sds.set_min_event_interval_ms(1'000'000);  // would suppress all repeats

  for (int i = 0; i < 10; ++i)
    (void)sds.feed(frame(i * 100, 30, Gear::drive));

  // Every frame retried the transmit; none were rate-limited away.
  EXPECT_EQ(sds.events_sent(), 0u);
  EXPECT_EQ(sds.send_failures(), 10u);
  EXPECT_EQ(sds.events_suppressed(), 0u);
  // The transmit latency histogram saw every attempt.
  EXPECT_EQ(sds.send_latency().count(), 10u);
  const std::string json = sds.metrics_json();
  EXPECT_NE(json.find("\"send_failures\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"send_ns\": {"), std::string::npos);
}

TEST(SdsEndToEnd, ResetDetectorsClearsRateLimiterState) {
  // Regression: reset_detectors() reset the detectors but kept the rate
  // limiter's last_sent_ms_ stamps, so the re-derived events after a restart
  // were silently swallowed for up to min_interval_ms of scenario time.
  ivi::IviSystem ivi({.mac = ivi::MacConfig::independent_sack});
  SituationDetectionService sds(
      kernel::Process(ivi.kernel(), ivi.kernel().init_task()));
  class Flapper : public Detector {
   public:
    std::string_view detector_name() const override { return "flapper"; }
    std::vector<std::string> on_frame(const SensorFrame&) override {
      return {"crash_detected"};
    }
  };
  sds.add_detector(std::make_unique<Flapper>());
  sds.set_min_event_interval_ms(1'000'000);

  auto first = sds.feed(frame(0, 30, Gear::drive));
  ASSERT_EQ(first.delivered.size(), 1u);
  EXPECT_TRUE(sds.feed(frame(100, 30, Gear::drive)).emitted.empty());
  EXPECT_EQ(sds.events_suppressed(), 1u);

  sds.reset_detectors();
  auto after_reset = sds.feed(frame(200, 30, Gear::drive));
  ASSERT_EQ(after_reset.delivered.size(), 1u);
  EXPECT_EQ(after_reset.delivered[0], "crash_detected");
  EXPECT_EQ(sds.events_suppressed(), 1u);
}

TEST(SdsEndToEnd, FeedReportsDeliveryStatusSeparately) {
  // Regression: feed() used to report every emitted event as sent even when
  // the SACKfs write failed. The caller now sees emitted vs delivered.
  ivi::IviSystem ivi({.mac = ivi::MacConfig::independent_sack});
  auto& kernel = ivi.kernel();
  auto& user = kernel.spawn_task("evil", kernel::Cred::user(1000, 1000));
  SituationDetectionService sds(kernel::Process(kernel, user));
  class Flapper : public Detector {
   public:
    std::string_view detector_name() const override { return "flapper"; }
    std::vector<std::string> on_frame(const SensorFrame&) override {
      return {"crash_detected"};
    }
  };
  sds.add_detector(std::make_unique<Flapper>());

  auto fed = sds.feed(frame(0, 30, Gear::drive));
  ASSERT_EQ(fed.emitted.size(), 1u);
  EXPECT_TRUE(fed.delivered.empty());
  EXPECT_EQ(fed.queued_for_retry, 0u);  // EACCES is permanent, not retried
  EXPECT_EQ(ivi.situation(), "parked_with_driver");
}

TEST(SdsEndToEnd, TransmitWarnFloodIsSuppressed) {
  // Log hygiene: a dead SACKfs at frame rate logs once per failure streak;
  // the rest are counted and reported when (if) a transmit succeeds again.
  ivi::IviSystem ivi({.mac = ivi::MacConfig::independent_sack});
  auto& kernel = ivi.kernel();
  auto& user = kernel.spawn_task("evil", kernel::Cred::user(1000, 1000));
  SituationDetectionService sds(kernel::Process(kernel, user));
  class Flapper : public Detector {
   public:
    std::string_view detector_name() const override { return "flapper"; }
    std::vector<std::string> on_frame(const SensorFrame&) override {
      return {"crash_detected"};
    }
  };
  sds.add_detector(std::make_unique<Flapper>());

  for (int i = 0; i < 10; ++i) (void)sds.feed(frame(i * 100, 30, Gear::drive));
  EXPECT_EQ(sds.send_failures(), 10u);
  EXPECT_EQ(sds.warns_suppressed(), 9u);  // only the first hit the log
  EXPECT_NE(sds.metrics_json().find("\"warns_suppressed\": 9"),
            std::string::npos);
}

TEST(SdsEndToEnd, UnprivilegedWriterCannotInjectEvents) {
  ivi::IviSystem ivi({.mac = ivi::MacConfig::independent_sack});
  auto& kernel = ivi.kernel();
  auto& user = kernel.spawn_task("evil", kernel::Cred::user(1000, 1000));
  SituationDetectionService evil_sds(kernel::Process(kernel, user));
  EXPECT_FALSE(evil_sds.send_event("crash_detected").ok());
  EXPECT_EQ(ivi.situation(), "parked_with_driver");
  EXPECT_EQ(evil_sds.send_failures(), 1u);
}

}  // namespace
}  // namespace sack::sds
