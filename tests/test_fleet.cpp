// Fleet control plane: vehicle lifecycle, verify-gated rollout, health-gated
// staging, crash-safe rollback, rollback equivalence, batched SDS transport,
// and the sharded host's thread-safety (fixture names carry "Fleet" so the
// TSan CI job picks them up).
#include <gtest/gtest.h>

#include <array>
#include <atomic>

#include "fleet/equivalence.h"
#include "fleet/rollout.h"
#include "util/fault.h"

namespace sack::fleet {
namespace {

PolicyVersion version_of(std::uint64_t version, std::string text) {
  auto pv = make_policy_version(version, std::move(text));
  EXPECT_TRUE(pv.ok());
  return std::move(pv).value();
}

// Parses fine, but the checker rejects it: `initial` names no defined state.
// roll_out() must bounce it at the gate without touching a vehicle.
std::string gate_reject_policy() {
  return R"(
states { parked = 0; }
initial missing;
permissions { MEDIA_READ; }
state_per { parked: MEDIA_READ; }
per_rules { MEDIA_READ { allow * /var/media/** read; } }
)";
}

class FleetTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::instance().reset(); }

  static FleetConfig config(std::size_t vehicles, std::size_t shards = 1,
                            bool sds = true) {
    FleetConfig fc;
    fc.vehicles = vehicles;
    fc.shards = shards;
    fc.start_sds = sds;
    return fc;
  }
};

TEST_F(FleetTest, VehicleBootsOnFlashPolicy) {
  Fleet fleet(config(1), version_of(1, fleet_policy_v1()));
  Vehicle& vehicle = fleet.vehicle(0);
  EXPECT_EQ(vehicle.live_version(), 1u);
  EXPECT_EQ(vehicle.committed_version(), 1u);
  EXPECT_EQ(vehicle.module().current_state_name(), "parked");

  // Parked workload: media + OTA flow, VIN probes denied (DIAG_READ needs
  // the emergency state, and OTA is never granted the VIN).
  auto stats = vehicle.run_workload(4);
  EXPECT_EQ(stats.checks, 24u);
  EXPECT_EQ(stats.denials, 8u);
}

TEST_F(FleetTest, CrashLosesUncommittedStagedPolicy) {
  Fleet fleet(config(1), version_of(1, fleet_policy_v1()));
  Vehicle& vehicle = fleet.vehicle(0);
  ASSERT_TRUE(vehicle.apply_policy(version_of(2, fleet_policy_v2())).ok());
  EXPECT_EQ(vehicle.live_version(), 2u);
  EXPECT_EQ(vehicle.committed_version(), 1u);

  vehicle.reboot();  // power cycle: flash (v1) survives, the staged v2 dies
  EXPECT_EQ(vehicle.live_version(), 1u);
  EXPECT_EQ(vehicle.committed_version(), 1u);
  EXPECT_EQ(vehicle.reboots(), 1u);
}

TEST_F(FleetTest, RolloutCommitsBenignVersion) {
  Fleet fleet(config(8), version_of(1, fleet_policy_v1()));
  RolloutController controller(fleet);
  ASSERT_EQ(controller.current()->version, 1u);

  auto report = controller.roll_out(version_of(2, fleet_policy_v2()));
  EXPECT_EQ(report.outcome, RolloutOutcome::committed);
  EXPECT_GE(report.stages_completed, 2u);
  EXPECT_EQ(report.mixed_version_vehicles, 0u);
  EXPECT_TRUE(report.fully_converged);
  EXPECT_TRUE(fleet.converged_on(2));
  EXPECT_EQ(controller.current()->version, 2u);
  ASSERT_NE(controller.previous(), nullptr);
  EXPECT_EQ(controller.previous()->version, 1u);
  EXPECT_GT(report.convergence_ns, 0u);
}

TEST_F(FleetTest, VerifyGateRejectsWithoutTouchingFleet) {
  Fleet fleet(config(4), version_of(1, fleet_policy_v1()));
  RolloutController controller(fleet);
  auto report = controller.roll_out(version_of(2, gate_reject_policy()));
  EXPECT_EQ(report.outcome, RolloutOutcome::rejected);
  EXPECT_EQ(report.pushes, 0u);
  EXPECT_TRUE(fleet.converged_on(1));
  EXPECT_EQ(controller.current()->version, 1u);
  EXPECT_EQ(controller.previous(), nullptr);
}

TEST_F(FleetTest, HealthGateRollsBackDenialRegression) {
  // fleet_policy_bad verifies clean — the gate passes it — but the canary's
  // media denial rate jumps, so staging must stop and roll the fleet back.
  Fleet fleet(config(6), version_of(1, fleet_policy_v1()));
  RolloutController controller(fleet);
  auto report = controller.roll_out(version_of(2, fleet_policy_bad()));
  EXPECT_EQ(report.outcome, RolloutOutcome::rolled_back);
  EXPECT_GT(report.worst_denial_delta, 0.1);
  EXPECT_EQ(report.stages_completed, 0u);  // caught at the canary
  EXPECT_TRUE(report.fully_converged);
  EXPECT_TRUE(fleet.converged_on(1));
  EXPECT_EQ(controller.current()->version, 1u);
  EXPECT_GT(report.rollback_ns, 0u);
  EXPECT_GT(report.equivalence_checked, 0u);
  EXPECT_EQ(report.equivalence_mismatches, 0u);
}

TEST_F(FleetTest, RollbackRestoresBitExactDecisions) {
  // The satellite property, cross-checked outside the controller: the full
  // witness-universe fingerprint (cold pass, AVC-served warm pass, and real
  // open(2) probes) must match before the rollout and after the rollback.
  Fleet fleet(config(2), version_of(1, fleet_policy_v1()));
  auto v1 = version_of(1, fleet_policy_v1());
  const DecisionFingerprint before =
      capture_fingerprint(fleet.vehicle(0), v1.policy);

  RolloutController controller(fleet);
  auto report = controller.roll_out(version_of(2, fleet_policy_bad()));
  ASSERT_EQ(report.outcome, RolloutOutcome::rolled_back);

  const DecisionFingerprint after =
      capture_fingerprint(fleet.vehicle(0), v1.policy);
  EXPECT_EQ(fingerprint_diffs(before, after), 0u);
  EXPECT_EQ(before.hash(), after.hash());
  EXPECT_TRUE(before == after);

  // And the restored cache stays coherent: a second sweep (pure AVC hits
  // after the probe→insert→probe round-trips above) answers identically.
  const DecisionFingerprint warm =
      capture_fingerprint(fleet.vehicle(0), v1.policy);
  EXPECT_EQ(fingerprint_diffs(after, warm), 0u);
}

TEST_F(FleetTest, DroppedPushesRetryUntilConverged) {
  auto& fi = util::FaultInjector::instance();
  util::FaultSpec drop;
  drop.max_fires = 2;  // lose the first two pushes, then the network heals
  ASSERT_TRUE(fi.arm("fleet.push.drop", drop));

  Fleet fleet(config(4), version_of(1, fleet_policy_v1()));
  RolloutController controller(fleet);
  auto report = controller.roll_out(version_of(2, fleet_policy_v2()));
  EXPECT_EQ(report.outcome, RolloutOutcome::committed);
  EXPECT_EQ(report.push_drops, 2u);
  EXPECT_GT(report.pushes, 4u);  // the drops cost extra attempts
  EXPECT_TRUE(fleet.converged_on(2));
}

TEST_F(FleetTest, PermanentActivationFailureRollsBack) {
  auto& fi = util::FaultInjector::instance();
  util::FaultSpec fail;
  fail.error = Errno::eio;
  ASSERT_TRUE(fi.arm("fleet.activate.fail", fail));  // every push, forever

  Fleet fleet(config(4), version_of(1, fleet_policy_v1()));
  RolloutController controller(fleet);
  auto report = controller.roll_out(version_of(2, fleet_policy_v2()));
  EXPECT_EQ(report.outcome, RolloutOutcome::rolled_back);
  EXPECT_GT(report.activation_failures, 0u);
  EXPECT_TRUE(report.fully_converged);
  EXPECT_TRUE(fleet.converged_on(1));
}

TEST_F(FleetTest, CrashStormStillConverges) {
  auto& fi = util::FaultInjector::instance();
  util::FaultSpec crash;
  crash.probability = 0.5;
  crash.seed = 0xc4a5;
  ASSERT_TRUE(fi.arm("fleet.vehicle.crash", crash));

  Fleet fleet(config(6), version_of(1, fleet_policy_v1()));
  RolloutController controller(fleet);
  auto report = controller.roll_out(version_of(2, fleet_policy_v2()));
  // Either outcome is legitimate under a crash storm; a mixed-version fleet
  // or a stale verdict is not.
  EXPECT_NE(report.outcome, RolloutOutcome::rejected);
  EXPECT_TRUE(report.fully_converged);
  EXPECT_EQ(report.mixed_version_vehicles, 0u);
  EXPECT_EQ(report.equivalence_mismatches, 0u);
}

TEST_F(FleetTest, BatchedTransportCoalescesEventWrites) {
  Fleet fleet(config(1), version_of(1, fleet_policy_v1()));
  Vehicle& vehicle = fleet.vehicle(0);
  ASSERT_NE(vehicle.sds(), nullptr);

  // One batch: pulling away (start_driving) then crossing the speed band
  // (high_speed_entered) — two events, exactly one SACKfs events write.
  sds::SensorFrame pull_away;
  pull_away.time_ms = 100;
  pull_away.speed_kmh = 40.0;
  pull_away.gear = sds::Gear::drive;
  pull_away.driver_present = true;
  sds::SensorFrame fast = pull_away;
  fast.time_ms = 200;
  fast.speed_kmh = 120.0;
  std::array<sds::SensorFrame, 2> frames{pull_away, fast};

  auto result = vehicle.feed_frames(frames);
  EXPECT_EQ(result.delivered.size(), 2u);
  EXPECT_EQ(result.queued_for_retry, 0u);
  EXPECT_EQ(vehicle.sds()->batch_writes(), 1u);
  EXPECT_EQ(vehicle.sds()->events_batched(), 2u);
  // The kernel consumed the whole multi-line payload: the SSM moved.
  EXPECT_EQ(vehicle.module().current_state_name(), "driving");
}

TEST_F(FleetTest, BatchedAndUnbatchedDeliverSameEvents) {
  Fleet batched_fleet(config(1), version_of(1, fleet_policy_v1()));
  Fleet serial_fleet(config(1), version_of(1, fleet_policy_v1()));
  Vehicle& batched = batched_fleet.vehicle(0);
  Vehicle& serial = serial_fleet.vehicle(0);

  sds::Trace trace;
  for (int i = 0; i < 8; ++i) {
    sds::SensorFrame frame;
    frame.time_ms = 100 * (i + 1);
    frame.speed_kmh = (i % 2 == 0) ? 40.0 : 0.5;
    frame.gear = (i % 2 == 0) ? sds::Gear::drive : sds::Gear::park;
    frame.driver_present = true;
    trace.push_back(frame);
  }

  auto batch_result = batched.feed_frames(trace);
  std::vector<std::string> serial_delivered;
  for (const auto& frame : trace) {
    auto r = serial.sds()->feed(frame);
    serial_delivered.insert(serial_delivered.end(), r.delivered.begin(),
                            r.delivered.end());
  }
  EXPECT_EQ(batch_result.delivered, serial_delivered);
  EXPECT_EQ(batched.module().current_state_name(),
            serial.module().current_state_name());
  // Same events, far fewer writes: the whole trace coalesced into one
  // SACKfs write, where the serial path paid one per event.
  EXPECT_EQ(batched.sds()->batch_writes(), 1u);
  EXPECT_EQ(batched.sds()->events_batched(), serial_delivered.size());
}

TEST_F(FleetTest, ShardedBootHostsIndependentVehicles) {
  Fleet fleet(config(12, /*shards=*/4), version_of(1, fleet_policy_v1()));
  EXPECT_EQ(fleet.size(), 12u);
  EXPECT_TRUE(fleet.converged_on(1));
  for (std::size_t i = 0; i < fleet.size(); ++i)
    EXPECT_EQ(fleet.vehicle(i).id(), i);
}

// TSan target: parallel boot, then per-vehicle workload + SDS feeds on the
// shard threads while the main thread reads the control plane's RcuPtr
// cells. Vehicles share no mutable state; the RcuPtr reads are the only
// cross-thread edges and must be clean.
TEST_F(FleetTest, FleetConcurrencyShardedWorkload) {
  Fleet fleet(config(8, /*shards=*/4, /*sds=*/false),
              version_of(1, fleet_policy_v1()));
  RolloutController controller(fleet);
  std::atomic<std::uint64_t> denials{0};
  fleet.for_each([&](Vehicle& vehicle) {
    auto stats = vehicle.run_workload(64);
    denials.fetch_add(stats.denials, std::memory_order_relaxed);
    auto current = controller.current();  // RcuPtr read from a shard thread
    ASSERT_NE(current, nullptr);
    EXPECT_EQ(current->version, vehicle.live_version());
  });
  EXPECT_EQ(denials.load(), 8u * 64u * 2u);

  auto report = controller.roll_out(version_of(2, fleet_policy_v2()));
  EXPECT_EQ(report.outcome, RolloutOutcome::committed);
  EXPECT_TRUE(fleet.converged_on(2));
}

}  // namespace
}  // namespace sack::fleet
