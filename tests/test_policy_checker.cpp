// PolicyChecker: error and conflict detection (the paper's policy tools).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/policy_builder.h"
#include "core/policy_checker.h"

namespace sack::core {
namespace {

bool has_code(const std::vector<Diagnostic>& diags, CheckCode code) {
  return std::any_of(diags.begin(), diags.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

SackPolicy valid_policy() {
  PolicyBuilder b;
  b.state("normal", 0)
      .state("emergency", 1)
      .initial("normal")
      .transition("normal", "crash", "emergency")
      .transition("emergency", "clear", "normal")
      .permission("P")
      .grant("normal", "P")
      .allow("P", "*", "/x", MacOp::read);
  return b.build();
}

TEST(PolicyChecker, ValidPolicyIsClean) {
  auto diags = check_policy(valid_policy());
  EXPECT_TRUE(diags.empty());
}

TEST(PolicyChecker, NoStates) {
  SackPolicy p;
  auto diags = check_policy(p);
  EXPECT_TRUE(has_code(diags, CheckCode::no_states));
  EXPECT_TRUE(has_errors(diags));
}

TEST(PolicyChecker, DuplicateStateNameAndEncoding) {
  PolicyBuilder b;
  b.state("a", 0).state("a", 1).state("b", 0).initial("a");
  auto diags = check_policy(b.build());
  EXPECT_TRUE(has_code(diags, CheckCode::duplicate_state_name));
  EXPECT_TRUE(has_code(diags, CheckCode::duplicate_state_encoding));
}

TEST(PolicyChecker, MissingAndUndefinedInitial) {
  PolicyBuilder b;
  b.state("a", 0);
  EXPECT_TRUE(has_code(check_policy(b.build()), CheckCode::missing_initial));
  b.initial("ghost");
  EXPECT_TRUE(
      has_code(check_policy(b.build()), CheckCode::undefined_initial));
}

TEST(PolicyChecker, UndefinedTransitionStates) {
  PolicyBuilder b;
  b.state("a", 0).initial("a").transition("a", "e", "ghost");
  EXPECT_TRUE(has_code(check_policy(b.build()),
                       CheckCode::undefined_transition_state));
}

TEST(PolicyChecker, NondeterministicTransition) {
  PolicyBuilder b;
  b.state("a", 0).state("b", 1).state("c", 2).initial("a");
  b.transition("a", "e", "b").transition("a", "e", "c");
  EXPECT_TRUE(has_code(check_policy(b.build()),
                       CheckCode::nondeterministic_transition));
}

TEST(PolicyChecker, DuplicateTransitionIsNotConflict) {
  PolicyBuilder b;
  b.state("a", 0).state("b", 1).initial("a");
  b.transition("a", "e", "b").transition("a", "e", "b");
  EXPECT_FALSE(has_code(check_policy(b.build()),
                        CheckCode::nondeterministic_transition));
}

TEST(PolicyChecker, UnreachableStateWarned) {
  PolicyBuilder b;
  b.state("a", 0).state("island", 1).initial("a");
  auto diags = check_policy(b.build());
  EXPECT_TRUE(has_code(diags, CheckCode::unreachable_state));
  EXPECT_FALSE(has_errors(diags));  // warning only
}

TEST(PolicyChecker, StatePerReferencesChecked) {
  PolicyBuilder b;
  b.state("a", 0).initial("a").permission("P");
  b.grant("ghost_state", "P").grant("a", "GHOST_PERM");
  auto diags = check_policy(b.build());
  EXPECT_TRUE(has_code(diags, CheckCode::undefined_state_in_state_per));
  EXPECT_TRUE(has_code(diags, CheckCode::undefined_permission_in_state_per));
}

TEST(PolicyChecker, PerRulesForUndeclaredPermission) {
  auto p = valid_policy();
  auto rule = make_rule(RuleEffect::allow, "*", "/y", MacOp::read);
  p.per_rules["GHOST"].push_back(std::move(rule).value());
  EXPECT_TRUE(has_code(check_policy(p),
                       CheckCode::undefined_permission_in_per_rules));
}

TEST(PolicyChecker, NeverGrantedAndRulelessPermissionsWarned) {
  PolicyBuilder b;
  b.state("a", 0).initial("a");
  b.permission("GRANTED_NO_RULES").permission("NEVER_GRANTED");
  b.grant("a", "GRANTED_NO_RULES");
  b.allow("NEVER_GRANTED", "*", "/x", MacOp::read);
  auto diags = check_policy(b.build());
  EXPECT_TRUE(has_code(diags, CheckCode::permission_never_granted));
  EXPECT_TRUE(has_code(diags, CheckCode::permission_without_rules));
}

TEST(PolicyChecker, ShadowedAllowRuleWarned) {
  auto p = valid_policy();
  auto deny = make_rule(RuleEffect::deny, "*", "/x", MacOp::read);
  p.per_rules["P"].push_back(std::move(deny).value());
  auto diags = check_policy(p);
  EXPECT_TRUE(has_code(diags, CheckCode::shadowed_allow_rule));
}

TEST(PolicyChecker, PartialDenyDoesNotShadow) {
  auto p = valid_policy();
  // The allow grants read; the deny only covers write -> no shadow warning.
  auto deny = make_rule(RuleEffect::deny, "*", "/x", MacOp::write);
  p.per_rules["P"].push_back(std::move(deny).value());
  EXPECT_FALSE(has_code(check_policy(p), CheckCode::shadowed_allow_rule));
}

TEST(PolicyChecker, GlobSubsumedAllowIsShadowed) {
  // The exact-match era missed this: a literal allow under a '**' deny.
  PolicyBuilder b;
  b.state("s", 0).initial("s").permission("P").grant("s", "P");
  b.allow("P", "*", "/data/logs/app.log", MacOp::read);
  b.deny("P", "*", "/data/**", MacOp::read);
  auto diags = check_policy(b.build());
  EXPECT_TRUE(has_code(diags, CheckCode::shadowed_allow_rule));
}

TEST(PolicyChecker, NonSubsumingDenyDoesNotShadow) {
  // `/data/*` does not cross '/', so it cannot cover /data/logs/app.log.
  PolicyBuilder b;
  b.state("s", 0).initial("s").permission("P").grant("s", "P");
  b.allow("P", "*", "/data/logs/app.log", MacOp::read);
  b.deny("P", "*", "/data/*", MacOp::read);
  EXPECT_FALSE(
      has_code(check_policy(b.build()), CheckCode::shadowed_allow_rule));
}

TEST(PolicyChecker, GlobAllowUnderBroaderGlobDenyIsShadowed) {
  PolicyBuilder b;
  b.state("s", 0).initial("s").permission("P").grant("s", "P");
  b.allow("P", "*", "/dev/vehicle/door*", MacOp::write);
  b.deny("P", "*", "/dev/vehicle/**", MacOp::write | MacOp::ioctl);
  EXPECT_TRUE(
      has_code(check_policy(b.build()), CheckCode::shadowed_allow_rule));
}

TEST(PolicyChecker, AnySubjectDenyShadowsPathSubjectAllow) {
  PolicyBuilder b;
  b.state("s", 0).initial("s").permission("P").grant("s", "P");
  b.allow("P", "/usr/bin/media_app", "/var/media/**", MacOp::read);
  b.deny("P", "*", "/var/media/**", MacOp::read);
  EXPECT_TRUE(
      has_code(check_policy(b.build()), CheckCode::shadowed_allow_rule));
}

TEST(PolicyChecker, NarrowerSubjectDenyDoesNotShadow) {
  // The deny binds one executable; the allow grants to all of them.
  PolicyBuilder b;
  b.state("s", 0).initial("s").permission("P").grant("s", "P");
  b.allow("P", "*", "/var/media/**", MacOp::read);
  b.deny("P", "/usr/bin/media_app", "/var/media/**", MacOp::read);
  EXPECT_FALSE(
      has_code(check_policy(b.build()), CheckCode::shadowed_allow_rule));
}

TEST(PolicyChecker, SubjectGlobContainmentShadows) {
  PolicyBuilder b;
  b.state("s", 0).initial("s").permission("P").grant("s", "P");
  b.allow("P", "/usr/bin/rescue_1", "/dev/door", MacOp::write);
  b.deny("P", "/usr/bin/rescue_*", "/dev/door", MacOp::write);
  auto diags = check_policy(b.build());
  EXPECT_TRUE(has_code(diags, CheckCode::shadowed_allow_rule));
}

TEST(PolicyChecker, ProfileSubjectShadowRequiresSameProfile) {
  PolicyBuilder b;
  b.state("s", 0).initial("s").permission("P").grant("s", "P");
  b.allow("P", "@media", "/dev/audio", MacOp::write);
  b.deny("P", "@other", "/dev/audio", MacOp::write);
  EXPECT_FALSE(
      has_code(check_policy(b.build()), CheckCode::shadowed_allow_rule));
  b.deny("P", "@media", "/dev/audio", MacOp::write);
  EXPECT_TRUE(
      has_code(check_policy(b.build()), CheckCode::shadowed_allow_rule));
}

TEST(PolicyChecker, DeclaredEventUnused) {
  auto p = valid_policy();
  p.events.push_back("phantom_event");
  EXPECT_TRUE(has_code(check_policy(p), CheckCode::declared_event_unused));
}

TEST(PolicyChecker, ProfileSubjectErrorsInIndependentMode) {
  auto p = valid_policy();
  auto rule = make_rule(RuleEffect::allow, "@prof", "/y", MacOp::read);
  p.per_rules["P"].push_back(std::move(rule).value());
  EXPECT_TRUE(has_code(check_policy(p, CheckMode::independent),
                       CheckCode::profile_subject_in_independent_mode));
  EXPECT_FALSE(has_code(check_policy(p, CheckMode::any),
                        CheckCode::profile_subject_in_independent_mode));
}

TEST(PolicyChecker, PathSubjectWarnsInEnhancedMode) {
  auto p = valid_policy();
  auto rule = make_rule(RuleEffect::allow, "/usr/bin/app", "/y", MacOp::read);
  p.per_rules["P"].push_back(std::move(rule).value());
  auto diags = check_policy(p, CheckMode::apparmor_enhanced);
  EXPECT_TRUE(has_code(diags, CheckCode::path_subject_in_enhanced_mode));
  EXPECT_FALSE(has_errors(diags));
}

}  // namespace
}  // namespace sack::core
