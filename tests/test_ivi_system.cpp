// IviSystem wiring options and small IVI helpers.
#include <gtest/gtest.h>

#include "ivi/ivi_system.h"

namespace sack::ivi {
namespace {

using kernel::OpenFlags;

TEST(IviSystemOptions, NoDefaultPoliciesMeansNoConfinement) {
  IviSystem ivi({.mac = MacConfig::independent_sack,
                 .load_default_policies = false});
  ASSERT_NE(ivi.sack(), nullptr);
  EXPECT_FALSE(ivi.sack()->policy_loaded());
  // Without a policy the attacker roams free (and that is the point of
  // loading one).
  EXPECT_TRUE(ivi.attacker().inject_vehicle_control().all_ok());
}

TEST(IviSystemOptions, MacNoneHasOnlyCapabilityModule) {
  IviSystem ivi({.mac = MacConfig::none});
  EXPECT_EQ(ivi.sack(), nullptr);
  EXPECT_EQ(ivi.apparmor(), nullptr);
  EXPECT_EQ(ivi.kernel().lsm().size(), 1u);
}

TEST(IviSystemOptions, ConfigNames) {
  EXPECT_EQ(mac_config_name(MacConfig::none), "none");
  EXPECT_EQ(mac_config_name(MacConfig::apparmor_only), "apparmor");
  EXPECT_EQ(mac_config_name(MacConfig::independent_sack), "sack");
  EXPECT_EQ(mac_config_name(MacConfig::sack_enhanced_apparmor),
            "sack+apparmor(enhanced)");
  EXPECT_EQ(mac_config_name(MacConfig::stacked_independent),
            "sack,apparmor(stacked)");
}

TEST(IviSystemOptions, ProcessHandlesTargetDistinctTasks) {
  IviSystem ivi({.mac = MacConfig::none});
  EXPECT_NE(ivi.rescue_process().pid(), ivi.media_process().pid());
  EXPECT_NE(ivi.media_process().pid(), ivi.attacker_process().pid());
  EXPECT_EQ(ivi.rescue_process().task().exe_path(),
            RescueDaemon::kExePath);
}

TEST(VehicleStateModel, Invariants) {
  VehicleState state;
  EXPECT_TRUE(state.all_doors_locked());
  EXPECT_FALSE(state.any_window_open());
  state.door_locked[2] = false;
  EXPECT_FALSE(state.all_doors_locked());
  state.window_open_pct[0] = 5;
  EXPECT_TRUE(state.any_window_open());
}

TEST(AttemptLogModel, Aggregations) {
  AttemptLog log;
  EXPECT_FALSE(log.all_denied());  // vacuously false: nothing attempted
  EXPECT_TRUE(log.all_ok());       // vacuously true
  log.attempts.push_back({"a", Errno::ok});
  log.attempts.push_back({"b", Errno::eacces});
  EXPECT_FALSE(log.all_ok());
  EXPECT_FALSE(log.all_denied());
  EXPECT_EQ(log.count(Errno::ok), 1u);
  EXPECT_EQ(log.count(Errno::eacces), 1u);
}

TEST(IviFilesystem, StandardLayoutPresent) {
  IviSystem ivi({.mac = MacConfig::none});
  auto admin = ivi.admin_process();
  for (const char* path :
       {"/var/media", "/etc/vehicle", "/dev/vehicle/door",
        "/dev/vehicle/window", "/dev/vehicle/audio", "/dev/can0",
        "/usr/bin/rescue_daemon", "/usr/bin/media_app"}) {
    EXPECT_TRUE(admin.stat(path).ok()) << path;
  }
  EXPECT_EQ(*admin.read_file(IviSystem::kSensitiveFile),
            "WVWZZZ1JZXW000001\n");
}

TEST(IviAudio, MediaVolumeClampsAtDevice) {
  IviSystem ivi({.mac = MacConfig::none});
  EXPECT_FALSE(ivi.media().set_volume(kMaxVolume + 1).ok());  // EINVAL
  EXPECT_TRUE(ivi.media().set_volume(kMaxVolume).ok());
  EXPECT_EQ(ivi.hardware().state().audio_volume, kMaxVolume);
}

TEST(IviAudio, PcmWritesNeedNoIoctlPermission) {
  // Playback (write) vs control (ioctl): the audio device accepts PCM via
  // write so a profile can grant w without i.
  IviSystem ivi({.mac = MacConfig::none});
  auto media = ivi.media_process();
  auto fd = media.open(VehicleHardware::kAudioPath, OpenFlags::write);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(media.write(*fd, std::string(1024, 'p')).ok());
}

}  // namespace
}  // namespace sack::ivi
