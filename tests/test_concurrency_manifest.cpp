// Unit tests for the concurrency-contract parser behind sack-racecheck.
// The contract is hand-maintained TOML-subset, so the parser's job under
// malformed input is to produce a *complete* list of line-numbered
// diagnostics — never to crash, and never to stop at the first problem.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/concurrency.h"

namespace sack::analysis {
namespace {

bool has_diag(const ConcurrencyParse& p, int line, const std::string& sub) {
  for (const auto& d : p.diags)
    if (d.line == line && d.message.find(sub) != std::string::npos)
      return true;
  return false;
}

TEST(ConcurrencyManifest, ParsesAFullContract) {
  auto p = parse_concurrency_manifest(R"(
[racecheck]
sources = ["src"]
lockfree_types = ["atomic", "RcuPtr"]
exempt_contexts = ["main"]

[guarded.cache]
class = "Cache"
mutexes = ["mu_"]
accessors = ["Cache::"]
helpers = ["lookup_impl"]
exempt = ["name_: set once in the constructor"]

[rcu.rules]
cell = "snap_"
class = "RuleSet"
loaders = ["snapshot"]
immutable = true
exempt_double_load = ["dump: diagnostic output, not a decision"]

[atomics]
relaxed_ok = ["hits_: stat counter"]

[fault_sites]
registry = "src/util/fault.cpp"
external = ["test.only.site: armed only by the chaos suite"]
)");
  ASSERT_TRUE(p.ok()) << (p.diags.empty() ? "" : p.diags[0].message);
  const auto& m = p.manifest;
  EXPECT_EQ(m.sources, std::vector<std::string>{"src"});
  ASSERT_EQ(m.guarded.size(), 1u);
  EXPECT_EQ(m.guarded[0].class_name, "Cache");
  EXPECT_EQ(m.guarded[0].mutexes, std::vector<std::string>{"mu_"});
  ASSERT_EQ(m.guarded[0].exempt.size(), 1u);
  EXPECT_EQ(m.guarded[0].exempt[0].name, "name_");
  EXPECT_EQ(m.guarded[0].exempt[0].reason, "set once in the constructor");
  ASSERT_EQ(m.rcu.size(), 1u);
  EXPECT_EQ(m.rcu[0].cell, "snap_");
  EXPECT_TRUE(m.rcu[0].immutable);
  ASSERT_EQ(m.relaxed_ok.size(), 1u);
  EXPECT_EQ(m.relaxed_ok[0].name, "hits_");
  EXPECT_EQ(m.fault_registry, "src/util/fault.cpp");
  ASSERT_EQ(m.fault_external.size(), 1u);
  EXPECT_EQ(m.fault_external[0].name, "test.only.site");
}

TEST(ConcurrencyManifest, MultiLineArraysAndCommentsParse) {
  auto p = parse_concurrency_manifest(
      "[racecheck]\n"
      "sources = [\n"
      "  \"src\",   # the tree\n"
      "  \"lib\",\n"
      "]\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.manifest.sources, (std::vector<std::string>{"src", "lib"}));
}

TEST(ConcurrencyManifest, DefaultLockTypesWhenUnspecified) {
  auto p = parse_concurrency_manifest("[racecheck]\nsources = [\"src\"]\n");
  ASSERT_TRUE(p.ok());
  const auto& lt = p.manifest.lock_types;
  EXPECT_NE(std::find(lt.begin(), lt.end(), "MutexLock"), lt.end());
  EXPECT_NE(std::find(lt.begin(), lt.end(), "lock_guard"), lt.end());
}

// --- malformed contracts: diagnostics with line numbers, not crashes ------

TEST(ConcurrencyManifest, DuplicateLockInOneClassIsDiagnosed) {
  auto p = parse_concurrency_manifest(
      "[guarded.c]\n"
      "class = \"Cache\"\n"
      "mutexes = [\"mu_\", \"mu_\"]\n");
  ASSERT_FALSE(p.ok());
  EXPECT_TRUE(has_diag(p, 3, "duplicate lock 'mu_'"));
}

TEST(ConcurrencyManifest, DuplicateLockClassAcrossSectionsIsDiagnosed) {
  auto p = parse_concurrency_manifest(
      "[guarded.a]\n"
      "class = \"Cache\"\n"
      "mutexes = [\"mu_\"]\n"
      "[guarded.b]\n"
      "class = \"Cache\"\n"
      "mutexes = [\"other_\"]\n");
  ASSERT_FALSE(p.ok());
  EXPECT_TRUE(has_diag(p, 4, "duplicate lock class 'Cache'"));
}

TEST(ConcurrencyManifest, DuplicateSectionTagIsDiagnosed) {
  auto p = parse_concurrency_manifest(
      "[guarded.c]\nclass = \"A\"\n[guarded.c]\nclass = \"B\"\n");
  ASSERT_FALSE(p.ok());
  EXPECT_TRUE(has_diag(p, 3, "duplicate lock class section [guarded.c]"));
}

TEST(ConcurrencyManifest, ExemptionWithoutReasonIsDiagnosed) {
  auto p = parse_concurrency_manifest(
      "[guarded.c]\n"
      "class = \"Cache\"\n"
      "exempt = [\"entries_\"]\n");
  ASSERT_FALSE(p.ok());
  EXPECT_TRUE(has_diag(p, 3, "missing a ': reason'"));

  auto q = parse_concurrency_manifest(
      "[guarded.c]\n"
      "class = \"Cache\"\n"
      "exempt = [\"entries_:   \"]\n");
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(has_diag(q, 3, "missing a ': reason'"));
}

TEST(ConcurrencyManifest, EmptyExemptRestReasonIsDiagnosed) {
  auto p = parse_concurrency_manifest(
      "[guarded.c]\nclass = \"Cache\"\nexempt_rest = \"\"\n");
  ASSERT_FALSE(p.ok());
  EXPECT_TRUE(has_diag(p, 3, "non-empty reason"));
}

TEST(ConcurrencyManifest, MissingStructuralKeysAreDiagnosed) {
  auto p = parse_concurrency_manifest(
      "[guarded.c]\n"
      "mutexes = [\"mu_\"]\n"
      "[rcu.r]\n"
      "immutable = true\n");
  ASSERT_FALSE(p.ok());
  EXPECT_TRUE(has_diag(p, 1, "missing class"));
  EXPECT_TRUE(has_diag(p, 3, "missing cell"));
  EXPECT_TRUE(has_diag(p, 3, "missing class"));
}

TEST(ConcurrencyManifest, CollectsEveryProblemNotJustTheFirst) {
  auto p = parse_concurrency_manifest(
      "junk_key = \"x\"\n"
      "[guarded.c]\n"
      "class = \"Cache\"\n"
      "bogus = \"y\"\n"
      "[rcu.r]\n"
      "immutable = \"maybe\"\n");
  ASSERT_EQ(p.diags.size(), 5u);  // outside-section, unknown key, bad bool,
                                  // rcu missing cell + class
  EXPECT_TRUE(has_diag(p, 1, "outside any section"));
  EXPECT_TRUE(has_diag(p, 4, "unknown key 'bogus'"));
  EXPECT_TRUE(has_diag(p, 6, "immutable must be true or false"));
}

TEST(ConcurrencyManifest, MalformedSyntaxNeverCrashes) {
  for (const char* bad : {
           "[racecheck",                      // unterminated header
           "[racecheck]\nsources = [\"src\"", // unterminated array
           "[racecheck]\nsources = \"src",    // unterminated string
           "[racecheck]\nsources\n",          // missing =
           "[nonsense]\nkey = \"v\"\n",       // unknown section
           "= = =\n[guarded.]\nclass=\n",     // garbage
       }) {
    auto p = parse_concurrency_manifest(bad);
    EXPECT_FALSE(p.ok()) << bad;
    for (const auto& d : p.diags) EXPECT_GT(d.line, 0) << bad;
  }
}

TEST(ConcurrencyManifest, EmptyInputIsAValidEmptyContract) {
  auto p = parse_concurrency_manifest("");
  EXPECT_TRUE(p.ok());
  EXPECT_TRUE(p.manifest.guarded.empty());
  EXPECT_TRUE(p.manifest.rcu.empty());
}

}  // namespace
}  // namespace sack::analysis
