// LSM framework: stacking order, first-deny-wins, blobs, securityfs.
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "kernel/lsm/module.h"
#include "kernel/process.h"

namespace sack::kernel {
namespace {

// A module that records hook invocations and can be told to deny.
class SpyModule : public SecurityModule {
 public:
  explicit SpyModule(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }

  Errno file_open(Task&, const std::string& path, const Inode&,
                  AccessMask) override {
    opens.push_back(path);
    return deny_opens ? Errno::eacces : Errno::ok;
  }
  Errno capable(const Task&, Capability cap) override {
    capable_calls.push_back(cap);
    return Errno::ok;
  }
  Errno task_alloc(Task&, Task& child) override {
    child.set_security_blob(name_, std::make_shared<std::string>("inherited"));
    return Errno::ok;
  }

  std::vector<std::string> opens;
  std::vector<Capability> capable_calls;
  bool deny_opens = false;

 private:
  std::string name_;
};

TEST(LsmStack, ModulesCalledInRegistrationOrder) {
  Kernel kernel;
  auto* first = static_cast<SpyModule*>(
      kernel.add_lsm(std::make_unique<SpyModule>("first")));
  auto* second = static_cast<SpyModule*>(
      kernel.add_lsm(std::make_unique<SpyModule>("second")));

  Process p(kernel, kernel.init_task());
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  first->opens.clear();
  second->opens.clear();
  ASSERT_TRUE(p.read_file("/tmp/f").ok());
  ASSERT_EQ(first->opens.size(), 1u);
  ASSERT_EQ(second->opens.size(), 1u);
  EXPECT_EQ(first->opens[0], "/tmp/f");
}

TEST(LsmStack, FirstDenyShortCircuits) {
  Kernel kernel;
  auto* first = static_cast<SpyModule*>(
      kernel.add_lsm(std::make_unique<SpyModule>("first")));
  auto* second = static_cast<SpyModule*>(
      kernel.add_lsm(std::make_unique<SpyModule>("second")));

  Process p(kernel, kernel.init_task());
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  first->deny_opens = true;
  first->opens.clear();
  second->opens.clear();
  EXPECT_EQ(p.open("/tmp/f", OpenFlags::read).error(), Errno::eacces);
  EXPECT_EQ(first->opens.size(), 1u);
  EXPECT_EQ(second->opens.size(), 0u);  // never consulted
}

TEST(LsmStack, CapabilityModuleDeniesMissingCaps) {
  Kernel kernel;  // capability module installed by default
  Task& user = kernel.spawn_task("user", Cred::user(1000, 1000));
  EXPECT_EQ(kernel.capable(user, Capability::mac_admin), Errno::eperm);
  EXPECT_EQ(kernel.capable(kernel.init_task(), Capability::mac_admin),
            Errno::ok);
  user.cred().caps.add(Capability::mac_admin);
  EXPECT_EQ(kernel.capable(user, Capability::mac_admin), Errno::ok);
}

TEST(LsmStack, TaskAllocHookRunsOnFork) {
  Kernel kernel;
  kernel.add_lsm(std::make_unique<SpyModule>("spy"));
  Pid child_pid = *kernel.sys_fork(kernel.init_task());
  Task& child = kernel.task(child_pid).value();
  auto blob = child.security_blob<std::string>("spy");
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(*blob, "inherited");
}

TEST(LsmStack, FindByName) {
  Kernel kernel;
  kernel.add_lsm(std::make_unique<SpyModule>("alpha"));
  EXPECT_NE(kernel.lsm().find("alpha"), nullptr);
  EXPECT_NE(kernel.lsm().find("capability"), nullptr);
  EXPECT_EQ(kernel.lsm().find("nope"), nullptr);
  auto names = kernel.lsm().module_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "capability");  // implicitly first
  EXPECT_EQ(names[1], "alpha");
}

// --- securityfs ---

class CounterFile : public VirtualFileOps {
 public:
  Result<std::string> read_content(Task&) override {
    return std::to_string(value) + "\n";
  }
  Result<void> write_content(Task&, std::string_view data) override {
    value = std::atoi(std::string(data).c_str());
    return {};
  }
  int value = 0;
};

TEST(SecurityFs, RegisterReadWrite) {
  Kernel kernel;
  CounterFile counter;
  ASSERT_TRUE(
      kernel.securityfs().register_file("testmod/counter", &counter, 0600)
          .ok());

  Process p(kernel, kernel.init_task());
  auto content = p.read_file("/sys/kernel/security/testmod/counter");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "0\n");

  ASSERT_TRUE(
      p.write_existing("/sys/kernel/security/testmod/counter", "41").ok());
  EXPECT_EQ(counter.value, 41);
  EXPECT_EQ(*p.read_file("/sys/kernel/security/testmod/counter"), "41\n");
}

TEST(SecurityFs, SnapshotIsStablePerOpen) {
  Kernel kernel;
  CounterFile counter;
  ASSERT_TRUE(
      kernel.securityfs().register_file("testmod/counter", &counter).ok());
  Process p(kernel, kernel.init_task());
  Fd fd = *p.open("/sys/kernel/security/testmod/counter", OpenFlags::read);
  std::string first;
  ASSERT_TRUE(p.read(fd, first, 1).ok());  // snapshot taken now
  counter.value = 99;
  std::string rest;
  ASSERT_TRUE(p.read(fd, rest, 64).ok());
  EXPECT_EQ(first + rest, "0\n");  // still the old snapshot
  ASSERT_TRUE(p.close(fd).ok());
}

TEST(SecurityFs, ModeBitsEnforcedByDac) {
  Kernel kernel;
  CounterFile counter;
  ASSERT_TRUE(
      kernel.securityfs().register_file("testmod/counter", &counter, 0600)
          .ok());
  Task& user = kernel.spawn_task("user", Cred::user(1000, 1000));
  Process up(kernel, user);
  EXPECT_EQ(up.open("/sys/kernel/security/testmod/counter", OpenFlags::read)
                .error(),
            Errno::eacces);
}

TEST(SecurityFs, DuplicateRegistrationRejected) {
  Kernel kernel;
  CounterFile a, b;
  ASSERT_TRUE(kernel.securityfs().register_file("m/f", &a).ok());
  EXPECT_EQ(kernel.securityfs().register_file("m/f", &b).error(),
            Errno::eexist);
}

TEST(SecurityFs, UnregisterRemovesNode) {
  Kernel kernel;
  CounterFile a;
  ASSERT_TRUE(kernel.securityfs().register_file("m/f", &a).ok());
  ASSERT_TRUE(kernel.securityfs().unregister("m/f").ok());
  Process p(kernel, kernel.init_task());
  EXPECT_EQ(p.stat("/sys/kernel/security/m/f").error(), Errno::enoent);
  EXPECT_EQ(kernel.securityfs().unregister("m/f").error(), Errno::enoent);
}

TEST(SecurityFs, WriteToReadOnlyHandlerFails) {
  Kernel kernel;
  class ReadOnly : public VirtualFileOps {
   public:
    Result<std::string> read_content(Task&) override { return std::string("ro\n"); }
  } ro;
  ASSERT_TRUE(kernel.securityfs().register_file("m/ro", &ro, 0644).ok());
  Process p(kernel, kernel.init_task());
  EXPECT_EQ(p.write_existing("/sys/kernel/security/m/ro", "x").error(),
            Errno::eacces);
}

// --- mediation-gap regressions (found by sack-hookcheck) ---
//
// listen/accept/readlink/listxattr used to mutate or disclose state with no
// LSM consultation at all. Each test pins (a) the hook fires, (b) a denial
// sticks, and (c) a denial leaves kernel state untouched — the
// hook-before-mutation ordering the static analyzer now enforces.

class GapSpyModule : public SecurityModule {
 public:
  std::string_view name() const override { return "gapspy"; }

  Errno socket_listen(Task&, const Socket&, int backlog) override {
    ++listen_calls;
    last_backlog = backlog;
    return deny_listen ? Errno::eacces : Errno::ok;
  }
  Errno socket_accept(Task&, const Socket&) override {
    ++accept_calls;
    return deny_accept ? Errno::eacces : Errno::ok;
  }
  Errno inode_readlink(Task&, const std::string& path) override {
    readlinks.push_back(path);
    return deny_readlink ? Errno::eacces : Errno::ok;
  }
  Errno inode_listxattr(Task&, const std::string& path) override {
    listxattrs.push_back(path);
    return deny_listxattr ? Errno::eacces : Errno::ok;
  }

  int listen_calls = 0;
  int accept_calls = 0;
  int last_backlog = -1;
  std::vector<std::string> readlinks;
  std::vector<std::string> listxattrs;
  bool deny_listen = false;
  bool deny_accept = false;
  bool deny_readlink = false;
  bool deny_listxattr = false;
};

TEST(MediationGaps, ListenIsMediatedBeforeStateChange) {
  Kernel kernel;
  auto* spy = static_cast<GapSpyModule*>(
      kernel.add_lsm(std::make_unique<GapSpyModule>()));
  Task& root = kernel.init_task();
  auto fd = kernel.sys_socket(root, SockFamily::inet, SockType::stream);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel.sys_bind(root, *fd, SockAddr::in(7000)).ok());

  spy->deny_listen = true;
  EXPECT_EQ(kernel.sys_listen(root, *fd, 4).error(), Errno::eacces);
  EXPECT_EQ(spy->listen_calls, 1);
  EXPECT_EQ(spy->last_backlog, 4);
  // Ordering: the denied listen must not have flipped the socket state —
  // a connect must still fail (nothing is listening on the port).
  auto client = kernel.sys_socket(root, SockFamily::inet, SockType::stream);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(kernel.sys_connect(root, *client, SockAddr::in(7000)).error(),
            Errno::econnrefused);

  spy->deny_listen = false;
  EXPECT_TRUE(kernel.sys_listen(root, *fd, 4).ok());
  EXPECT_EQ(spy->listen_calls, 2);
  EXPECT_TRUE(kernel.sys_connect(root, *client, SockAddr::in(7000)).ok());
}

TEST(MediationGaps, AcceptDenialLeavesBacklogIntact) {
  Kernel kernel;
  auto* spy = static_cast<GapSpyModule*>(
      kernel.add_lsm(std::make_unique<GapSpyModule>()));
  Task& root = kernel.init_task();
  auto listener = kernel.sys_socket(root, SockFamily::inet, SockType::stream);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(kernel.sys_bind(root, *listener, SockAddr::in(7100)).ok());
  ASSERT_TRUE(kernel.sys_listen(root, *listener, 2).ok());
  auto client = kernel.sys_socket(root, SockFamily::inet, SockType::stream);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(kernel.sys_connect(root, *client, SockAddr::in(7100)).ok());

  spy->deny_accept = true;
  EXPECT_EQ(kernel.sys_accept(root, *listener).error(), Errno::eacces);
  EXPECT_EQ(spy->accept_calls, 1);

  // Ordering: the denial must not have consumed the pending connection.
  spy->deny_accept = false;
  EXPECT_TRUE(kernel.sys_accept(root, *listener).ok());
  EXPECT_EQ(spy->accept_calls, 2);
}

TEST(MediationGaps, ReadlinkIsMediated) {
  Kernel kernel;
  auto* spy = static_cast<GapSpyModule*>(
      kernel.add_lsm(std::make_unique<GapSpyModule>()));
  Task& root = kernel.init_task();
  Process p(kernel, root);
  ASSERT_TRUE(p.write_file("/tmp/target", "x").ok());
  ASSERT_TRUE(kernel.sys_symlink(root, "/tmp/target", "/tmp/link").ok());

  spy->deny_readlink = true;
  EXPECT_EQ(kernel.sys_readlink(root, "/tmp/link").error(), Errno::eacces);
  ASSERT_EQ(spy->readlinks.size(), 1u);
  EXPECT_EQ(spy->readlinks[0], "/tmp/link");

  spy->deny_readlink = false;
  auto target = kernel.sys_readlink(root, "/tmp/link");
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "/tmp/target");
}

TEST(MediationGaps, ListxattrIsMediated) {
  Kernel kernel;
  auto* spy = static_cast<GapSpyModule*>(
      kernel.add_lsm(std::make_unique<GapSpyModule>()));
  Task& root = kernel.init_task();
  Process p(kernel, root);
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  ASSERT_TRUE(
      kernel.sys_setxattr(root, "/tmp/f", "user.note", "v").ok());

  spy->deny_listxattr = true;
  EXPECT_EQ(kernel.sys_listxattr(root, "/tmp/f").error(), Errno::eacces);
  ASSERT_EQ(spy->listxattrs.size(), 1u);
  EXPECT_EQ(spy->listxattrs[0], "/tmp/f");

  spy->deny_listxattr = false;
  auto names = kernel.sys_listxattr(root, "/tmp/f");
  ASSERT_TRUE(names.ok());
  EXPECT_FALSE(names->empty());
}

}  // namespace
}  // namespace sack::kernel
