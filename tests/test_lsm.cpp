// LSM framework: stacking order, first-deny-wins, blobs, securityfs.
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "kernel/lsm/module.h"
#include "kernel/process.h"

namespace sack::kernel {
namespace {

// A module that records hook invocations and can be told to deny.
class SpyModule : public SecurityModule {
 public:
  explicit SpyModule(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }

  Errno file_open(Task&, const std::string& path, const Inode&,
                  AccessMask) override {
    opens.push_back(path);
    return deny_opens ? Errno::eacces : Errno::ok;
  }
  Errno capable(const Task&, Capability cap) override {
    capable_calls.push_back(cap);
    return Errno::ok;
  }
  Errno task_alloc(Task&, Task& child) override {
    child.set_security_blob(name_, std::make_shared<std::string>("inherited"));
    return Errno::ok;
  }

  std::vector<std::string> opens;
  std::vector<Capability> capable_calls;
  bool deny_opens = false;

 private:
  std::string name_;
};

TEST(LsmStack, ModulesCalledInRegistrationOrder) {
  Kernel kernel;
  auto* first = static_cast<SpyModule*>(
      kernel.add_lsm(std::make_unique<SpyModule>("first")));
  auto* second = static_cast<SpyModule*>(
      kernel.add_lsm(std::make_unique<SpyModule>("second")));

  Process p(kernel, kernel.init_task());
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  first->opens.clear();
  second->opens.clear();
  ASSERT_TRUE(p.read_file("/tmp/f").ok());
  ASSERT_EQ(first->opens.size(), 1u);
  ASSERT_EQ(second->opens.size(), 1u);
  EXPECT_EQ(first->opens[0], "/tmp/f");
}

TEST(LsmStack, FirstDenyShortCircuits) {
  Kernel kernel;
  auto* first = static_cast<SpyModule*>(
      kernel.add_lsm(std::make_unique<SpyModule>("first")));
  auto* second = static_cast<SpyModule*>(
      kernel.add_lsm(std::make_unique<SpyModule>("second")));

  Process p(kernel, kernel.init_task());
  ASSERT_TRUE(p.write_file("/tmp/f", "x").ok());
  first->deny_opens = true;
  first->opens.clear();
  second->opens.clear();
  EXPECT_EQ(p.open("/tmp/f", OpenFlags::read).error(), Errno::eacces);
  EXPECT_EQ(first->opens.size(), 1u);
  EXPECT_EQ(second->opens.size(), 0u);  // never consulted
}

TEST(LsmStack, CapabilityModuleDeniesMissingCaps) {
  Kernel kernel;  // capability module installed by default
  Task& user = kernel.spawn_task("user", Cred::user(1000, 1000));
  EXPECT_EQ(kernel.capable(user, Capability::mac_admin), Errno::eperm);
  EXPECT_EQ(kernel.capable(kernel.init_task(), Capability::mac_admin),
            Errno::ok);
  user.cred().caps.add(Capability::mac_admin);
  EXPECT_EQ(kernel.capable(user, Capability::mac_admin), Errno::ok);
}

TEST(LsmStack, TaskAllocHookRunsOnFork) {
  Kernel kernel;
  kernel.add_lsm(std::make_unique<SpyModule>("spy"));
  Pid child_pid = *kernel.sys_fork(kernel.init_task());
  Task& child = kernel.task(child_pid).value();
  auto blob = child.security_blob<std::string>("spy");
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(*blob, "inherited");
}

TEST(LsmStack, FindByName) {
  Kernel kernel;
  kernel.add_lsm(std::make_unique<SpyModule>("alpha"));
  EXPECT_NE(kernel.lsm().find("alpha"), nullptr);
  EXPECT_NE(kernel.lsm().find("capability"), nullptr);
  EXPECT_EQ(kernel.lsm().find("nope"), nullptr);
  auto names = kernel.lsm().module_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "capability");  // implicitly first
  EXPECT_EQ(names[1], "alpha");
}

// --- securityfs ---

class CounterFile : public VirtualFileOps {
 public:
  Result<std::string> read_content(Task&) override {
    return std::to_string(value) + "\n";
  }
  Result<void> write_content(Task&, std::string_view data) override {
    value = std::atoi(std::string(data).c_str());
    return {};
  }
  int value = 0;
};

TEST(SecurityFs, RegisterReadWrite) {
  Kernel kernel;
  CounterFile counter;
  ASSERT_TRUE(
      kernel.securityfs().register_file("testmod/counter", &counter, 0600)
          .ok());

  Process p(kernel, kernel.init_task());
  auto content = p.read_file("/sys/kernel/security/testmod/counter");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "0\n");

  ASSERT_TRUE(
      p.write_existing("/sys/kernel/security/testmod/counter", "41").ok());
  EXPECT_EQ(counter.value, 41);
  EXPECT_EQ(*p.read_file("/sys/kernel/security/testmod/counter"), "41\n");
}

TEST(SecurityFs, SnapshotIsStablePerOpen) {
  Kernel kernel;
  CounterFile counter;
  ASSERT_TRUE(
      kernel.securityfs().register_file("testmod/counter", &counter).ok());
  Process p(kernel, kernel.init_task());
  Fd fd = *p.open("/sys/kernel/security/testmod/counter", OpenFlags::read);
  std::string first;
  ASSERT_TRUE(p.read(fd, first, 1).ok());  // snapshot taken now
  counter.value = 99;
  std::string rest;
  ASSERT_TRUE(p.read(fd, rest, 64).ok());
  EXPECT_EQ(first + rest, "0\n");  // still the old snapshot
  ASSERT_TRUE(p.close(fd).ok());
}

TEST(SecurityFs, ModeBitsEnforcedByDac) {
  Kernel kernel;
  CounterFile counter;
  ASSERT_TRUE(
      kernel.securityfs().register_file("testmod/counter", &counter, 0600)
          .ok());
  Task& user = kernel.spawn_task("user", Cred::user(1000, 1000));
  Process up(kernel, user);
  EXPECT_EQ(up.open("/sys/kernel/security/testmod/counter", OpenFlags::read)
                .error(),
            Errno::eacces);
}

TEST(SecurityFs, DuplicateRegistrationRejected) {
  Kernel kernel;
  CounterFile a, b;
  ASSERT_TRUE(kernel.securityfs().register_file("m/f", &a).ok());
  EXPECT_EQ(kernel.securityfs().register_file("m/f", &b).error(),
            Errno::eexist);
}

TEST(SecurityFs, UnregisterRemovesNode) {
  Kernel kernel;
  CounterFile a;
  ASSERT_TRUE(kernel.securityfs().register_file("m/f", &a).ok());
  ASSERT_TRUE(kernel.securityfs().unregister("m/f").ok());
  Process p(kernel, kernel.init_task());
  EXPECT_EQ(p.stat("/sys/kernel/security/m/f").error(), Errno::enoent);
  EXPECT_EQ(kernel.securityfs().unregister("m/f").error(), Errno::enoent);
}

TEST(SecurityFs, WriteToReadOnlyHandlerFails) {
  Kernel kernel;
  class ReadOnly : public VirtualFileOps {
   public:
    Result<std::string> read_content(Task&) override { return std::string("ro\n"); }
  } ro;
  ASSERT_TRUE(kernel.securityfs().register_file("m/ro", &ro, 0644).ok());
  Process p(kernel, kernel.init_task());
  EXPECT_EQ(p.write_existing("/sys/kernel/security/m/ro", "x").error(),
            Errno::eacces);
}

}  // namespace
}  // namespace sack::kernel
