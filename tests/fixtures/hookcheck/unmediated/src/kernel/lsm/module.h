// Miniature SecurityModule mirroring the real hook-interface shape.
// This tree is a hookcheck regression fixture; it is parsed, never compiled.
#pragma once

#include <string>

namespace sack {

enum class Errno { ok, eacces, enoent };

class SecurityModule {
 public:
  virtual ~SecurityModule() = default;

  virtual Errno file_open(int pid, const std::string& path) {
    return Errno::ok;
  }
  virtual Errno file_permission(int pid, int fd) { return Errno::ok; }
};

}  // namespace sack
