// Seeded-bad tree for the hookcheck gate: sys_read hands file contents to
// the caller without ever consulting file_permission, and sys_spy is a new
// syscall declared nowhere in the manifest.
#include "lsm/module.h"

namespace sack {

Errno Kernel::sys_open(int pid, const std::string& path) {
  Errno rc =
      lsm_.check([&](SecurityModule& m) { return m.file_open(pid, path); });
  if (rc != Errno::ok) return rc;
  fds().install(pid, path);
  return Errno::ok;
}

Errno Kernel::sys_read(int pid, int fd, std::string& out) {
  // BUG: no file_permission hook before handing bytes to the caller.
  out.assign(data_of(fd));
  return Errno::ok;
}

Errno Kernel::sys_spy(int pid, int fd) {
  // BUG: new syscall, declared neither as a spec nor as unmediated.
  return Errno::ok;
}

}  // namespace sack
