// Seeded-bad tree for the hookcheck gate: sys_unlink removes the directory
// entry BEFORE dispatching path_unlink (a denial would leave the mutation in
// place), and sys_chmod replaces the stack's verdict with a hardcoded
// Errno::eacces.
#include "lsm/module.h"

namespace sack {

Errno Kernel::sys_unlink(int pid, const std::string& path) {
  vfs_.unlink_child(parent_of(path), leaf_of(path));  // BUG: mutation first
  Errno rc =
      lsm_.check([&](SecurityModule& m) { return m.path_unlink(pid, path); });
  if (rc != Errno::ok) return rc;
  return Errno::ok;
}

Errno Kernel::sys_chmod(int pid, const std::string& path, int mode) {
  Errno rc =
      lsm_.check([&](SecurityModule& m) { return m.path_chmod(pid, path); });
  if (rc != Errno::ok) return Errno::eacces;  // BUG: hardcoded denial
  inode_of(path).set_mode(mode);
  return Errno::ok;
}

}  // namespace sack
