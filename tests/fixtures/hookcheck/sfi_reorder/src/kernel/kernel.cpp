// Seeded-bad tree for the universal-gate checks: sys_rename performs the
// rename BEFORE the flow gate fires (a flow denial would leave the mutation
// in place), and sys_truncate never dispatches the gate at all.
#include "lsm/module.h"

namespace sack {

Errno Kernel::sys_rename(int pid, const std::string& from,
                         const std::string& to) {
  vfs_.rename_entry(from, to);  // BUG: mutation before the flow gate
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(pid, "sys_rename"); });
  if (rc != Errno::ok) return rc;
  rc = lsm_.check(
      [&](SecurityModule& m) { return m.path_rename(pid, from, to); });
  if (rc != Errno::ok) return rc;
  return Errno::ok;
}

Errno Kernel::sys_truncate(int pid, const std::string& path) {
  // BUG: no task_syscall gate — the flow module never sees this syscall.
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.path_truncate(pid, path); });
  if (rc != Errno::ok) return rc;
  inode_of(path).truncate();
  return Errno::ok;
}

}  // namespace sack
