// Miniature SecurityModule mirroring the real hook-interface shape, with
// the per-syscall flow gate (task_syscall) included. This tree is a
// hookcheck regression fixture; it is parsed, never compiled.
#pragma once

#include <string>

namespace sack {

enum class Errno { ok, eacces, enoent };

class SecurityModule {
 public:
  virtual ~SecurityModule() = default;

  virtual Errno task_syscall(int pid, const std::string& syscall) {
    return Errno::ok;
  }
  virtual Errno path_rename(int pid, const std::string& from,
                            const std::string& to) {
    return Errno::ok;
  }
  virtual Errno path_truncate(int pid, const std::string& path) {
    return Errno::ok;
  }
};

}  // namespace sack
