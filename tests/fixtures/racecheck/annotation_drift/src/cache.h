// Seeded defects: `hits_` claims a lock the manifest does not declare for
// this class (annotation drift — the guard was renamed but the annotation
// kept the old name), and `entries_` lost its annotation entirely.
#pragma once

#include <map>
#include <string>

#include "util/thread_annotations.h"

namespace fix {

class Cache {
 public:
  int lookup(const std::string& key) const;
  void insert(const std::string& key, int value);

 private:
  mutable util::Mutex mu_;
  mutable util::Mutex stats_mu_;  // renamed from other_mu_; drift below
  int hits_ SACK_GUARDED_BY(other_mu_) = 0;
  std::map<std::string, int> entries_;
  std::atomic<int> probes_{0};  // lock-free, needs no annotation
};

}  // namespace fix
