#include "cache.h"

namespace fix {

int Cache::lookup(const std::string& key) const {
  util::MutexLock lock(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? -1 : it->second;
}

void Cache::insert(const std::string& key, int value) {
  util::MutexLock lock(mu_);
  entries_[key] = value;
}

}  // namespace fix
