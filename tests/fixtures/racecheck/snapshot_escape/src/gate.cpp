#include "gate.h"

namespace fix {

// Seeded defect: the raw pointer outlives the shared_ptr snapshot that
// keeps the Snap alive — the caller dereferences freed memory after the
// next publish().
const int* Gate::rules_view() const {
  auto s = snap_.load();
  return s->rules.data();
}

// Seeded defect: same lifetime bug, stored into a field instead of
// returned.
void Gate::warm_cache() {
  auto s = snap_.load();
  cached_rules_ = s->rules.data();
}

}  // namespace fix
