#pragma once

#include <memory>
#include <vector>

#include "util/rcu_ptr.h"

namespace fix {

struct Snap {
  std::vector<int> rules;
};

class Gate {
 public:
  const int* rules_view() const;
  void warm_cache();
  void publish(std::shared_ptr<const Snap> next) { snap_.store(next); }

 private:
  util::RcuPtr<const Snap> snap_;
  const int* cached_rules_ = nullptr;
};

}  // namespace fix
