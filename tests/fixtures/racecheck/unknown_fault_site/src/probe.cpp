#include "util/fault.h"

namespace fix {

bool check_gate() {
  // Probes the registered sites...
  if (sack::util::FaultInjector::instance().fire("gate.check.fail"))
    return false;
  if (sack::util::FaultInjector::instance().fire(
          "gate.publish.drop"))
    return false;
  // Seeded defect: this site was renamed in the registry but not here —
  // no test can ever arm it, so the probe is dead coverage.
  if (sack::util::FaultInjector::instance().fire("gate.chek.fail"))
    return false;
  return true;
}

}  // namespace fix
