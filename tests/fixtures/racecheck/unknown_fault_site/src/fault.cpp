// Stand-in central fault-site registry, same shape as util/fault.cpp.
namespace fix {

struct SiteEntry {
  const char* name;
  const char* description;
};

constexpr SiteEntry kBuiltinSites[] = {
    {"gate.check.fail", "the admission check itself faults"},
    {"gate.publish.drop", "a publish is dropped before the swap"},
};

}  // namespace fix
