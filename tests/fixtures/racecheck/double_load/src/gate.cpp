#include "gate.h"

namespace fix {

// Seeded defect: the check loads the cell once to validate and AGAIN to
// decide — a publish between the two loads makes the verdict straddle two
// generations.
bool Gate::admits(int rule) const {
  auto have = snap_.load();
  if (!have || have->rules.empty()) return false;
  auto decide = snap_.load();  // second snapshot in the same decision scope
  return decide->rules[0] <= rule && decide->generation == have->generation;
}

}  // namespace fix
