#pragma once

#include <memory>
#include <vector>

#include "util/rcu_ptr.h"

namespace fix {

struct Snap {
  std::vector<int> rules;
  int generation = 0;
};

class Gate {
 public:
  bool admits(int rule) const;
  void publish(std::shared_ptr<const Snap> next) { snap_.store(next); }

 private:
  util::RcuPtr<const Snap> snap_;
};

}  // namespace fix
