// Unit tests for sack-racecheck: the class/field scanner, the raw-text
// fault-probe scanner, and the three pass families run over in-memory
// source trees (lockset drift, RCU snapshot discipline, atomics and
// fault-registry lint).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/lexer.h"
#include "analysis/racecheck.h"
#include "analysis/typescan.h"

namespace sack::analysis {
namespace {

using Sources = std::vector<std::pair<std::string, std::string>>;

std::vector<ClassDecl> scan(const std::string& src) {
  return scan_types("t.h", lex(src));
}

const ClassDecl* cls(const std::vector<ClassDecl>& v, const std::string& n) {
  for (const auto& c : v)
    if (c.name == n) return &c;
  return nullptr;
}

const FieldDecl* field(const ClassDecl& c, const std::string& n) {
  for (const auto& f : c.fields)
    if (f.name == n) return &f;
  return nullptr;
}

bool has(const RacecheckResult& r, const std::string& cls_name,
         const std::string& file, const std::string& msg_sub = "") {
  for (const auto& f : r.findings)
    if (f.cls == cls_name && f.file == file &&
        (msg_sub.empty() || f.message.find(msg_sub) != std::string::npos))
      return true;
  return false;
}

// --- typescan --------------------------------------------------------------

TEST(Typescan, FieldsTypesAndAnnotations) {
  auto v = scan(R"(
namespace x {
class Cache {
 public:
  int lookup() const { return hits_; }
 private:
  mutable util::Mutex mu_;
  int hits_ SACK_GUARDED_BY(mu_) = 0;
  std::map<std::string, int> entries_ SACK_GUARDED_BY(mu_);
  std::atomic<int> probes_{0};
  static constexpr int kMax = 8;
  const char* tag_ = "cache";
};
}  // namespace x
)");
  const ClassDecl* c = cls(v, "Cache");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(field(*c, "mu_"), nullptr);
  EXPECT_TRUE(field(*c, "mu_")->is_mutex);
  EXPECT_TRUE(field(*c, "mu_")->is_mutable);
  EXPECT_EQ(c->mutexes, std::vector<std::string>{"mu_"});
  ASSERT_NE(field(*c, "hits_"), nullptr);
  EXPECT_EQ(field(*c, "hits_")->guarded_by, "mu_");
  ASSERT_NE(field(*c, "entries_"), nullptr);
  EXPECT_EQ(field(*c, "entries_")->guarded_by, "mu_");
  EXPECT_NE(field(*c, "entries_")->type.find("map"), std::string::npos);
  ASSERT_NE(field(*c, "probes_"), nullptr);
  EXPECT_TRUE(field(*c, "probes_")->guarded_by.empty());
  ASSERT_NE(field(*c, "kMax"), nullptr);
  EXPECT_TRUE(field(*c, "kMax")->is_static);
  ASSERT_NE(field(*c, "tag_"), nullptr);
  EXPECT_TRUE(field(*c, "tag_")->is_const);
  // Member functions don't become fields.
  EXPECT_EQ(field(*c, "lookup"), nullptr);
}

TEST(Typescan, NestedClassesGetQualifiedNames) {
  auto v = scan(R"(
class Outer {
  struct Shard {
    mutable util::SharedMutex mu;
    int map SACK_GUARDED_BY(mu);
  };
  Shard shards_[4];
};
)");
  const ClassDecl* s = cls(v, "Outer::Shard");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->mutexes, std::vector<std::string>{"mu"});
  ASSERT_NE(cls(v, "Outer"), nullptr);
}

TEST(Typescan, OutOfLineNestedDefinitionIsNotTheOuterClass) {
  // `class Outer::Inner : ... { ... }` in a .cpp must register as
  // Outer::Inner — it used to shadow Outer and hide its real fields.
  auto v = scan(R"(
class Outer::Inner final : public Base {
 public:
  int read();
 private:
  int inner_field_ = 0;
};
)");
  EXPECT_EQ(cls(v, "Outer"), nullptr);
  const ClassDecl* in = cls(v, "Outer::Inner");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(field(*in, "inner_field_"), nullptr);
}

TEST(Typescan, MemberFunctionBodiesAndCtorInitListsAreSkipped) {
  auto v = scan(R"(
class Ring {
 public:
  Ring() : head_(0), buf_{1, 2}, mu_() {}
  int pop() {
    util::MutexLock l(mu_);
    int fake_field_;
    return head_;
  }
 private:
  util::Mutex mu_;
  int head_ SACK_GUARDED_BY(mu_);
  std::vector<int> buf_ SACK_GUARDED_BY(mu_);
};
)");
  const ClassDecl* c = cls(v, "Ring");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(field(*c, "fake_field_"), nullptr);
  ASSERT_NE(field(*c, "head_"), nullptr);
  EXPECT_EQ(field(*c, "head_")->guarded_by, "mu_");
  ASSERT_NE(field(*c, "buf_"), nullptr);
}

// --- raw-text fault scanning ----------------------------------------------

TEST(FaultScan, FindsProbesIncludingMultiLineCalls) {
  auto probes = scan_fault_probes(
      "if (util::FaultInjector::instance().fire(\"a.site\")) return;\n"
      "auto e = fi.fail_errno(\n"
      "    \"b.site\", detail);\n"
      "fi.register_site(\"c.site\", \"desc\");\n");
  ASSERT_EQ(probes.size(), 3u);
  EXPECT_EQ(probes[0].site, "a.site");
  EXPECT_EQ(probes[0].line, 1);
  EXPECT_EQ(probes[1].site, "b.site");
  EXPECT_EQ(probes[1].line, 2);  // provenance is the call, not the string
  EXPECT_EQ(probes[2].site, "c.site");
}

TEST(FaultScan, IgnoresCommentsAndUnrelatedStrings) {
  auto probes = scan_fault_probes(
      "// fire(\"commented.site\")\n"
      "/* fail_errno(\"blocked.site\") */\n"
      "log(\"fire\");\n"
      "const char* s = \"fire(\\\"in.string\\\")\";\n"
      "backfire(\"not.a.probe\");\n");
  EXPECT_TRUE(probes.empty());
}

TEST(FaultScan, ParsesTheBuiltinSiteCatalogue) {
  auto sites = scan_fault_registry(
      "struct E { const char* n; const char* d; };\n"
      "constexpr E kBuiltinSites[] = {\n"
      "    {\"x.one\", \"first\"},\n"
      "    // a comment between entries\n"
      "    {\"x.two\", \"second\"},\n"
      "};\n");
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].site, "x.one");
  EXPECT_EQ(sites[0].line, 3);
  EXPECT_EQ(sites[1].site, "x.two");
  EXPECT_EQ(sites[1].line, 5);
}

// --- pass 1: lockset / annotation drift -----------------------------------

const char* kGuardedManifest = R"(
[racecheck]
sources = ["src"]
lockfree_types = ["atomic"]
exempt_contexts = ["main", "single_threaded_init"]

[guarded.cache]
class = "Cache"
mutexes = ["mu_"]
)";

TEST(RacecheckGuarded, CleanClassPasses) {
  RacecheckResult r = run_racecheck_on_sources(
      kGuardedManifest, "m.toml",
      {{"src/cache.h", R"(
class Cache {
 public:
  int lookup() const;
 private:
  mutable util::Mutex mu_;
  int hits_ SACK_GUARDED_BY(mu_) = 0;
  std::atomic<int> probes_{0};
};
)"},
       {"src/cache.cpp", R"(
int Cache::lookup() const {
  util::MutexLock lock(mu_);
  return hits_;
}
)"}});
  EXPECT_EQ(r.errors(), 0u) << render_racecheck_text(r);
  EXPECT_EQ(r.stats.guarded_fields, 1u);
}

TEST(RacecheckGuarded, UnannotatedAndDriftedFieldsAreFound) {
  RacecheckResult r = run_racecheck_on_sources(
      kGuardedManifest, "m.toml",
      {{"src/cache.h", R"(
class Cache {
 private:
  mutable util::Mutex mu_;
  int hits_ SACK_GUARDED_BY(other_mu_) = 0;
  int entries_ = 0;
};
)"}});
  EXPECT_TRUE(has(r, "annotation-drift", "src/cache.h", "other_mu_"));
  EXPECT_TRUE(has(r, "unannotated-field", "src/cache.h", "entries_"));
  EXPECT_EQ(r.errors(), 2u);
}

TEST(RacecheckGuarded, UnlockedAccessReachableFromUnlockedRootIsFound) {
  RacecheckResult r = run_racecheck_on_sources(
      kGuardedManifest, "m.toml",
      {{"src/cache.h", R"(
class Cache {
 public:
  int lookup() const;
  int peek() const;
 private:
  mutable util::Mutex mu_;
  int hits_ SACK_GUARDED_BY(mu_) = 0;
};
)"},
       {"src/cache.cpp", R"(
int Cache::lookup() const {
  util::MutexLock lock(mu_);
  return hits_;
}
int Cache::peek() const { return hits_; }
)"},
       {"src/driver.cpp", R"(
int poll_cache(const Cache& c) { return c.peek(); }
)"}});
  // peek() touches hits_ without mu_, reachable from poll_cache (not exempt).
  EXPECT_TRUE(has(r, "unlocked-access", "src/cache.cpp", "poll_cache"));
}

TEST(RacecheckGuarded, LockHoldersAnnotatedHelpersAndExemptRootsPass) {
  RacecheckResult r = run_racecheck_on_sources(
      kGuardedManifest, "m.toml",
      {{"src/cache.h", R"(
class Cache {
 public:
  int lookup() const;
  int init_only() const;
 private:
  int unlocked_sum() const SACK_REQUIRES(mu_);
  mutable util::Mutex mu_;
  int hits_ SACK_GUARDED_BY(mu_) = 0;
};
)"},
       {"src/cache.cpp", R"(
int Cache::unlocked_sum() const { return hits_; }
int Cache::lookup() const {
  util::MutexLock lock(mu_);
  return unlocked_sum();
}
int Cache::init_only() const { return hits_; }
)"},
       {"src/driver.cpp", R"(
int single_threaded_init(Cache& c) { return c.init_only(); }
)"}});
  // unlocked_sum is SACK_REQUIRES-annotated and only called under the lock;
  // init_only is reachable only from an exempt root.
  EXPECT_EQ(r.errors(), 0u) << render_racecheck_text(r);
}

TEST(RacecheckGuarded, UnknownClassOrLockIsAManifestError) {
  RacecheckResult r = run_racecheck_on_sources(
      kGuardedManifest, "m.toml", {{"src/other.h", "class NotCache {};\n"}});
  EXPECT_TRUE(has(r, "manifest-error", "m.toml", "unknown class 'Cache'"));

  RacecheckResult q = run_racecheck_on_sources(
      kGuardedManifest, "m.toml",
      {{"src/cache.h", "class Cache { int x_ = 0; };\n"}});
  EXPECT_TRUE(has(q, "manifest-error", "m.toml", "no lock field 'mu_'"));
}

// --- pass 2: RCU snapshot discipline --------------------------------------

const char* kRcuManifest = R"(
[racecheck]
sources = ["src"]

[rcu.gate]
cell = "snap_"
class = "Gate"
immutable = true
)";

const char* kGateHeader = R"(
class Gate {
 public:
  bool admits(int rule) const;
 private:
  util::RcuPtr<const Snap> snap_;
  const int* cached_ = nullptr;
};
)";

TEST(RacecheckRcu, SingleLoadDecisionPasses) {
  RacecheckResult r = run_racecheck_on_sources(
      kRcuManifest, "m.toml",
      {{"src/gate.h", kGateHeader},
       {"src/gate.cpp", R"(
bool Gate::admits(int rule) const {
  auto s = snap_.load();
  if (!s) return false;
  return s->rules[0] <= rule;
}
)"}});
  EXPECT_EQ(r.errors(), 0u) << render_racecheck_text(r);
  EXPECT_EQ(r.stats.rcu_cells, 1u);
}

TEST(RacecheckRcu, DoubleLoadInOneScopeIsFound) {
  RacecheckResult r = run_racecheck_on_sources(
      kRcuManifest, "m.toml",
      {{"src/gate.h", kGateHeader},
       {"src/gate.cpp", R"(
bool Gate::admits(int rule) const {
  auto a = snap_.load();
  auto b = snap_.load();
  return a && b;
}
)"}});
  EXPECT_TRUE(has(r, "rcu-double-load", "src/gate.cpp", "2 snapshots"));
}

TEST(RacecheckRcu, ReturnedAndStoredRawDerivationsAreEscapes) {
  RacecheckResult r = run_racecheck_on_sources(
      kRcuManifest, "m.toml",
      {{"src/gate.h", kGateHeader},
       {"src/gate.cpp", R"(
const int* Gate::view() const {
  auto s = snap_.load();
  return s->rules.data();
}
void Gate::warm() {
  auto s = snap_.load();
  cached_ = s->rules.data();
}
)"}});
  EXPECT_TRUE(has(r, "rcu-escape", "src/gate.cpp", "returns a raw pointer"));
  EXPECT_TRUE(has(r, "rcu-escape", "src/gate.cpp", "stores a raw pointer"));
}

TEST(RacecheckRcu, ValueReturnsAndSharedPtrReturnsAreNotEscapes) {
  RacecheckResult r = run_racecheck_on_sources(
      kRcuManifest, "m.toml",
      {{"src/gate.h", kGateHeader},
       {"src/gate.cpp", R"(
int Gate::count() const {
  auto s = snap_.load();
  return s->rules.size();
}
std::shared_ptr<const Snap> Gate::snapshot() const { return snap_.load(); }
)"}});
  EXPECT_EQ(r.errors(), 0u) << render_racecheck_text(r);
}

TEST(RacecheckRcu, MutationThroughImmutableSnapshotIsFound) {
  RacecheckResult r = run_racecheck_on_sources(
      kRcuManifest, "m.toml",
      {{"src/gate.h", kGateHeader},
       {"src/gate.cpp", R"(
void Gate::poison() {
  auto s = snap_.load();
  s->rules.push_back(1);
}
)"}});
  EXPECT_TRUE(has(r, "rcu-mutation", "src/gate.cpp", "push_back"));
}

TEST(RacecheckRcu, ExemptionsSilenceNamedFunctions) {
  std::string manifest = std::string(kRcuManifest) +
                         "exempt_double_load = [\"dump: diagnostics only\"]\n";
  RacecheckResult r = run_racecheck_on_sources(
      manifest, "m.toml",
      {{"src/gate.h", kGateHeader},
       {"src/gate.cpp", R"(
void Gate::dump() const {
  auto a = snap_.load();
  auto b = snap_.load();
  use(a, b);
}
)"}});
  EXPECT_EQ(r.errors(), 0u) << render_racecheck_text(r);
}

// --- pass 3: atomics + fault registry -------------------------------------

TEST(RacecheckAtomics, RelaxedPublicationOutsideAllowlistIsFound) {
  const char* manifest = R"(
[racecheck]
sources = ["src"]
[atomics]
relaxed_ok = ["hits_: stat counter"]
)";
  RacecheckResult r = run_racecheck_on_sources(
      manifest, "m.toml",
      {{"src/mod.cpp", R"(
void Mod::publish() {
  ready_.store(true, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  gen_.store(next, std::memory_order_release);
  word_.store(pack(gen_.load(std::memory_order_relaxed), tok),
              std::memory_order_release);
}
)"}});
  // ready_ is flagged; hits_ is allowlisted; the release stores are fine —
  // including the one whose *argument* contains a nested relaxed load.
  EXPECT_TRUE(has(r, "relaxed-publication", "src/mod.cpp", "ready_"));
  EXPECT_EQ(r.errors(), 1u) << render_racecheck_text(r);
}

TEST(RacecheckFault, UnknownAndUnprobedSitesAreDrift) {
  const char* manifest = R"(
[racecheck]
sources = ["src"]
[fault_sites]
registry = "src/fault.cpp"
external = ["ext.site: armed by an out-of-tree harness"]
)";
  RacecheckResult r = run_racecheck_on_sources(
      manifest, "m.toml",
      {{"src/fault.cpp",
        "constexpr E kBuiltinSites[] = {\n"
        "    {\"known.site\", \"d\"},\n"
        "    {\"stale.site\", \"d\"},\n"
        "    {\"ext.site\", \"d\"},\n"
        "};\n"},
       {"src/probe.cpp",
        "void f() {\n"
        "  fi.fire(\"known.site\");\n"
        "  fi.fire(\"typo.site\");\n"
        "}\n"}});
  EXPECT_TRUE(has(r, "unknown-fault-site", "src/probe.cpp", "typo.site"));
  EXPECT_TRUE(has(r, "unprobed-fault-site", "src/fault.cpp", "stale.site"));
  EXPECT_EQ(r.errors(), 2u) << render_racecheck_text(r);
}

// --- drivers and rendering ------------------------------------------------

TEST(RacecheckDriver, ManifestDiagnosticsBecomeFindingsNotCrashes) {
  RacecheckResult r = run_racecheck_on_sources(
      "[guarded.c]\nmutexes = [\"mu_\"]\n", "bad.toml", {});
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.errors(), 1u);
  EXPECT_TRUE(has(r, "manifest-error", "bad.toml", "missing class"));
  for (const auto& f : r.findings) EXPECT_GT(f.line, 0);
}

TEST(RacecheckDriver, RendersTextAndJson) {
  RacecheckResult r = run_racecheck_on_sources(
      kGuardedManifest, "m.toml",
      {{"src/cache.h",
        "class Cache {\n"
        "  mutable util::Mutex mu_;\n"
        "  int entries_ = 0;\n"
        "};\n"}});
  std::string text = render_racecheck_text(r);
  EXPECT_NE(text.find("src/cache.h:3: error: [unannotated-field]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("racecheck: 1 error(s)"), std::string::npos);
  std::string json = render_racecheck_json(r);
  EXPECT_NE(json.find("\"class\": \"unannotated-field\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/cache.h\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
}

}  // namespace
}  // namespace sack::analysis
