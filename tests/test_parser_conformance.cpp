// Parser conformance tables: many small accept/reject cases for all three
// policy languages, pinned as TEST_P tables so grammar regressions surface
// with the exact offending snippet.
#include <gtest/gtest.h>

#include "apparmor/parser.h"
#include "core/policy_parser.h"
#include "te/te_policy.h"

namespace sack {
namespace {

struct Snippet {
  const char* name;
  const char* text;
  bool accept;
};

// --- SACK policy language ---

class SackGrammar : public ::testing::TestWithParam<Snippet> {};

TEST_P(SackGrammar, AcceptsOrRejects) {
  const Snippet& s = GetParam();
  auto result = core::parse_policy(s.text);
  EXPECT_EQ(result.ok(), s.accept)
      << s.text
      << (result.ok() ? "" : ("\nfirst error: " +
                              result.errors[0].to_string()));
}

INSTANTIATE_TEST_SUITE_P(
    Table, SackGrammar,
    ::testing::Values(
        Snippet{"empty_document", "", true},
        Snippet{"comment_only", "# nothing here\n", true},
        Snippet{"minimal_states", "states { a = 0; } initial a;", true},
        Snippet{"state_needs_encoding", "states { a; }", false},
        Snippet{"state_needs_semicolon", "states { a = 0 }", false},
        Snippet{"negative_encoding_rejected", "states { a = -1; }", false},
        Snippet{"transition_on", "states { a=0; b=1; } initial a;"
                                 "transitions { a -> b on go; }",
                true},
        Snippet{"transition_after", "states { a=0; b=1; } initial a;"
                                    "transitions { a -> b after 100; }",
                true},
        Snippet{"transition_needs_arrow",
                "transitions { a to b on go; }", false},
        Snippet{"transition_after_needs_number",
                "transitions { a -> b after soon; }", false},
        Snippet{"permissions_list", "permissions { A; B_2; C-3; }", true},
        Snippet{"state_per_multi", "state_per { s: A, B, C; }", true},
        Snippet{"state_per_trailing_comma", "state_per { s: A, ; }", false},
        Snippet{"rule_any_subject",
                "per_rules { P { allow * /x read; } }", true},
        Snippet{"rule_profile_subject",
                "per_rules { P { allow @prof /x read; } }", true},
        Snippet{"rule_path_subject",
                "per_rules { P { allow /bin/* /x read; } }", true},
        Snippet{"rule_deny",
                "per_rules { P { deny * /x write; } }", true},
        Snippet{"rule_needs_effect",
                "per_rules { P { * /x read; } }", false},
        Snippet{"rule_needs_object",
                "per_rules { P { allow * read; } }", false},
        Snippet{"rule_unknown_op",
                "per_rules { P { allow * /x teleport; } }", false},
        Snippet{"rule_glob_object",
                "per_rules { P { allow * /a/{b,c}/** read; } }", true},
        Snippet{"rule_bad_glob",
                "per_rules { P { allow * /a/{b read; } }", false},
        Snippet{"multiple_sections",
                "states { a = 0; } initial a; permissions { P; } "
                "state_per { a: P; } per_rules { P { allow * /x read; } }",
                true},
        Snippet{"unknown_top_level", "chapters { }", false},
        Snippet{"events_block", "events { e1; e2; }", true}));

// --- AppArmor-like profile language ---

class AaGrammar : public ::testing::TestWithParam<Snippet> {};

TEST_P(AaGrammar, AcceptsOrRejects) {
  const Snippet& s = GetParam();
  auto result = apparmor::parse_profiles(s.text);
  EXPECT_EQ(result.ok(), s.accept)
      << s.text
      << (result.ok() ? "" : ("\nfirst error: " +
                              result.errors[0].to_string()));
}

INSTANTIATE_TEST_SUITE_P(
    Table, AaGrammar,
    ::testing::Values(
        Snippet{"named_with_attachment",
                "profile app /usr/bin/app { /x r, }", true},
        Snippet{"path_named", "/usr/bin/app { /x r, }", true},
        Snippet{"bare_name_no_attachment", "profile app { /x r, }", true},
        Snippet{"empty_body", "profile app /bin/a { }", true},
        Snippet{"all_perm_letters", "profile a /b { /x rxmkli, }", true},
        Snippet{"write_append_conflict", "profile a /b { /x wa, }", false},
        Snippet{"unknown_perm_letter", "profile a /b { /x q, }", false},
        Snippet{"deny_rule", "profile a /b { deny /x rw, }", true},
        Snippet{"allow_keyword_optional",
                "profile a /b { allow /x r, }", true},
        Snippet{"missing_comma", "profile a /b { /x r }", false},
        Snippet{"capability_rule",
                "profile a /b { capability mac_admin, }", true},
        Snippet{"capability_cap_prefix",
                "profile a /b { capability CAP_SYS_ADMIN, }", true},
        Snippet{"unknown_capability",
                "profile a /b { capability time_travel, }", false},
        Snippet{"network_bare", "profile a /b { network, }", true},
        Snippet{"network_family", "profile a /b { network unix, }", true},
        Snippet{"network_family_type",
                "profile a /b { network inet stream, }", true},
        Snippet{"unknown_network_family",
                "profile a /b { network xns, }", false},
        Snippet{"complain_flag",
                "profile a /b flags=(complain) { /x r, }", true},
        Snippet{"enforce_flag",
                "profile a /b flags=(enforce) { /x r, }", true},
        Snippet{"exec_transition", "profile a /b { /c rx -> target, }", true},
        Snippet{"exec_transition_needs_x",
                "profile a /b { /c r -> target, }", false},
        Snippet{"two_profiles",
                "profile a /bin/a { /x r, } profile b /bin/b { /y w, }",
                true},
        Snippet{"unclosed_brace", "profile a /b { /x r,", false}));

// --- TE policy language ---

class TeGrammar : public ::testing::TestWithParam<Snippet> {};

TEST_P(TeGrammar, AcceptsOrRejects) {
  const Snippet& s = GetParam();
  auto result = te::parse_te_policy(s.text);
  EXPECT_EQ(result.ok(), s.accept)
      << s.text
      << (result.ok() ? "" : ("\nfirst error: " +
                              result.errors[0].to_string()));
}

INSTANTIATE_TEST_SUITE_P(
    Table, TeGrammar,
    ::testing::Values(
        Snippet{"type_decl", "type media_t;", true},
        Snippet{"attribute_decl", "attribute domain;", true},
        Snippet{"allow_single_perm",
                "allow a_t b_t : file { read };", true},
        Snippet{"allow_multi_perm",
                "allow a_t b_t : chardev { write ioctl };", true},
        Snippet{"allow_all_classes",
                "allow a b : dir { read }; allow a b : symlink { getattr };"
                "allow a b : socket { write }; allow a b : process "
                "{ transition };",
                true},
        Snippet{"allow_needs_colon", "allow a b file { read };", false},
        Snippet{"allow_unknown_class", "allow a b : pixie { read };", false},
        Snippet{"allow_unknown_perm", "allow a b : file { fly };", false},
        Snippet{"allow_empty_perms", "allow a b : file { };", false},
        Snippet{"domain_transition_stmt",
                "domain_transition a_t b_exec_t c_t;", true},
        Snippet{"filecon_stmt", "filecon /usr/bin/* app_exec_t;", true},
        Snippet{"filecon_needs_path", "filecon app app_exec_t;", false},
        Snippet{"default_domain_stmt", "default_domain base_t;", true},
        Snippet{"bool_decl", "bool night_mode true;", true},
        Snippet{"bool_needs_bool_value", "bool night_mode maybe;", false},
        Snippet{"if_block", "bool b false; type a;"
                            "if b { allow a a : file { read }; }",
                true},
        Snippet{"if_block_only_allows",
                "bool b false; if b { type x; }", false},
        Snippet{"unknown_statement", "permit a b : file { read };", false}));

}  // namespace
}  // namespace sack
