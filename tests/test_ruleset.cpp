// Rule sets: guarded-object semantics, deny precedence, and the property
// that the compiled and linear implementations are decision-equivalent.
#include <gtest/gtest.h>

#include "core/policy_builder.h"
#include "core/ruleset.h"
#include "util/rng.h"

namespace sack::core {
namespace {

SackPolicy demo_policy() {
  PolicyBuilder b;
  b.state("normal", 0)
      .state("emergency", 1)
      .initial("normal")
      .transition("normal", "crash", "emergency")
      .permission("MEDIA")
      .permission("DOORS")
      .grant("normal", "MEDIA")
      .grant("emergency", "MEDIA")
      .grant("emergency", "DOORS")
      .allow("MEDIA", "*", "/var/media/**", MacOp::read)
      .allow("DOORS", "/usr/bin/rescue", "/dev/door*",
             MacOp::ioctl | MacOp::write)
      .deny("DOORS", "*", "/dev/door9", MacOp::ioctl);
  return b.build();
}

AccessQuery query(std::string_view exe, std::string_view obj, MacOp op) {
  AccessQuery q;
  q.subject_exe = exe;
  q.object_path = obj;
  q.op = op;
  return q;
}

TEST(CompiledRuleSet, UnguardedObjectsAlwaysAllowed) {
  CompiledRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({});  // no permissions at all
  EXPECT_EQ(rs.check(query("/bin/x", "/etc/passwd", MacOp::read)), Errno::ok);
  EXPECT_EQ(rs.check(query("/bin/x", "/tmp/f", MacOp::write)), Errno::ok);
  EXPECT_FALSE(rs.guarded("/etc/passwd"));
  EXPECT_TRUE(rs.guarded("/var/media/track.pcm"));
  EXPECT_TRUE(rs.guarded("/dev/door0"));
}

TEST(CompiledRuleSet, GuardedDenyByDefault) {
  CompiledRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({"MEDIA"});  // normal state
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door0", MacOp::ioctl)),
            Errno::eacces);
  EXPECT_EQ(rs.check(query("/bin/app", "/var/media/t.pcm", MacOp::read)),
            Errno::ok);
  // MEDIA grants read only; write to a guarded media file is denied.
  EXPECT_EQ(rs.check(query("/bin/app", "/var/media/t.pcm", MacOp::write)),
            Errno::eacces);
}

TEST(CompiledRuleSet, ActivationFollowsState) {
  CompiledRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({"MEDIA", "DOORS"});  // emergency state
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door0", MacOp::ioctl)),
            Errno::ok);
  // Subject must match.
  EXPECT_EQ(rs.check(query("/usr/bin/evil", "/dev/door0", MacOp::ioctl)),
            Errno::eacces);
  EXPECT_EQ(rs.active_rule_count(), 3u);
  rs.activate({"MEDIA"});
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door0", MacOp::ioctl)),
            Errno::eacces);
  EXPECT_EQ(rs.active_rule_count(), 1u);
}

TEST(CompiledRuleSet, DenyBeatsAllow) {
  CompiledRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({"DOORS"});
  // door9 matches both the allow glob and the literal deny.
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door9", MacOp::ioctl)),
            Errno::eacces);
  // ...but only for the denied op.
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door9", MacOp::write)),
            Errno::ok);
}

TEST(CompiledRuleSet, ProfileSubjectMatching) {
  PolicyBuilder b;
  b.state("s", 0).initial("s").permission("P").grant("s", "P");
  b.allow("P", "@rescue", "/dev/door*", MacOp::ioctl);
  CompiledRuleSet rs;
  (void)rs.load(b.build());
  rs.activate({"P"});
  AccessQuery q = query("/usr/bin/anything", "/dev/door0", MacOp::ioctl);
  EXPECT_EQ(rs.check(q), Errno::eacces);  // no profile info
  q.subject_profile = "rescue";
  EXPECT_EQ(rs.check(q), Errno::ok);
  q.subject_profile = "media";
  EXPECT_EQ(rs.check(q), Errno::eacces);
}

TEST(LinearRuleSet, MatchesSemantics) {
  LinearRuleSet rs;
  (void)rs.load(demo_policy());
  rs.activate({"MEDIA", "DOORS"});
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door0", MacOp::ioctl)),
            Errno::ok);
  EXPECT_EQ(rs.check(query("/usr/bin/rescue", "/dev/door9", MacOp::ioctl)),
            Errno::eacces);
  EXPECT_EQ(rs.check(query("/x", "/unguarded", MacOp::read)), Errno::ok);
  EXPECT_EQ(rs.total_rule_count(), 3u);
}

// Property: CompiledRuleSet and LinearRuleSet agree on every query, across
// randomized policies and queries.
class RuleSetEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuleSetEquivalence, CompiledEqualsLinear) {
  Rng rng(GetParam());

  // Random policy: a handful of permissions with randomized rules.
  PolicyBuilder b;
  b.state("s0", 0).state("s1", 1).initial("s0");
  b.transition("s0", "go", "s1");
  const char* objects[] = {"/a/lit1", "/a/lit2",   "/b/file",
                           "/a/*",    "/b/**",     "/dev/node[0-5]"};
  const char* subjects[] = {"*", "/bin/app1", "/bin/app2", "/bin/*"};
  const MacOp ops[] = {MacOp::read, MacOp::write, MacOp::ioctl,
                       MacOp::read | MacOp::write};
  std::vector<std::string> perms;
  for (int p = 0; p < 4; ++p) {
    std::string perm = "P" + std::to_string(p);
    b.permission(perm);
    if (rng.chance(0.7)) b.grant("s0", perm);
    if (rng.chance(0.7)) b.grant("s1", perm);
    int n_rules = 1 + static_cast<int>(rng.below(4));
    for (int r = 0; r < n_rules; ++r) {
      bool deny = rng.chance(0.25);
      const char* subject = subjects[rng.below(4)];
      const char* object = objects[rng.below(6)];
      MacOp op = ops[rng.below(4)];
      if (deny) {
        b.deny(perm, subject, object, op);
      } else {
        b.allow(perm, subject, object, op);
      }
    }
    perms.push_back(perm);
  }
  SackPolicy policy = b.build();

  CompiledRuleSet compiled;
  LinearRuleSet linear;
  (void)compiled.load(policy);
  (void)linear.load(policy);

  const char* probe_objects[] = {"/a/lit1", "/a/lit2", "/a/other", "/b/file",
                                 "/b/deep/path", "/dev/node3", "/dev/node7",
                                 "/unrelated"};
  const char* probe_subjects[] = {"/bin/app1", "/bin/app2", "/bin/zzz",
                                  "/sbin/x"};
  const MacOp probe_ops[] = {MacOp::read, MacOp::write, MacOp::ioctl,
                             MacOp::exec};

  for (int round = 0; round < 20; ++round) {
    // Random activation set.
    std::vector<std::string> active;
    for (const auto& p : perms)
      if (rng.chance(0.5)) active.push_back(p);
    compiled.activate(active);
    linear.activate(active);
    ASSERT_EQ(compiled.active_rule_count(), linear.active_rule_count());

    for (const char* obj : probe_objects) {
      EXPECT_EQ(compiled.guarded(obj), linear.guarded(obj)) << obj;
      for (const char* subj : probe_subjects) {
        for (MacOp op : probe_ops) {
          auto q = query(subj, obj, op);
          EXPECT_EQ(compiled.check(q), linear.check(q))
              << "subject=" << subj << " object=" << obj
              << " op=" << mac_op_name(op);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleSetEquivalence,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace sack::core
