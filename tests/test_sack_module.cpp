// SackModule, independent mode: policy loading through SACKfs, situation
// events, adaptive enforcement, fd revocation, status interfaces.
#include <gtest/gtest.h>

#include "core/sack_module.h"
#include "kernel/inode.h"
#include "kernel/process.h"
#include "kernel/task.h"
#include "simbench/policy_gen.h"

namespace sack::core {
namespace {

using kernel::Capability;
using kernel::Cred;
using kernel::Fd;
using kernel::Kernel;
using kernel::OpenFlags;
using kernel::Process;
using kernel::Task;

constexpr std::string_view kPolicy = R"(
states { normal = 0; emergency = 1; }
initial normal;
transitions {
  normal -> emergency on crash_detected;
  emergency -> normal on emergency_cleared;
}
permissions { MEDIA_READ; DOOR_CONTROL; }
state_per {
  normal: MEDIA_READ;
  emergency: MEDIA_READ, DOOR_CONTROL;
}
per_rules {
  MEDIA_READ { allow * /var/media/** read getattr; }
  DOOR_CONTROL { allow /usr/bin/rescue /dev/door write ioctl; }
}
)";

class SackModuleTest : public ::testing::Test {
 protected:
  SackModuleTest() {
    sack_ = static_cast<SackModule*>(kernel_.add_lsm(
        std::make_unique<SackModule>(SackMode::independent)));
    kernel_.vfs().mkdir_p("/var/media");
    Process admin(kernel_, kernel_.init_task());
    EXPECT_TRUE(admin.write_file("/var/media/track.pcm", "DATA").ok());
    EXPECT_TRUE(admin.write_file("/dev/door", "").ok());
    EXPECT_TRUE(admin.write_file("/usr/bin/rescue", "ELF").ok());
    EXPECT_TRUE(admin.write_file("/usr/bin/other", "ELF").ok());
  }

  void load_default() {
    ASSERT_TRUE(sack_->load_policy_text(kPolicy).ok());
  }

  Task& rescue() {
    if (!rescue_)
      rescue_ = &kernel_.spawn_task("rescue", Cred::root(), "/usr/bin/rescue");
    return *rescue_;
  }
  Task& other() {
    if (!other_)
      other_ = &kernel_.spawn_task("other", Cred::root(), "/usr/bin/other");
    return *other_;
  }

  Kernel kernel_;
  SackModule* sack_ = nullptr;
  Task* rescue_ = nullptr;
  Task* other_ = nullptr;
};

TEST_F(SackModuleTest, NoPolicyMeansNoEnforcement) {
  Process p(kernel_, other());
  EXPECT_TRUE(p.read_file("/var/media/track.pcm").ok());
  EXPECT_FALSE(sack_->policy_loaded());
}

TEST_F(SackModuleTest, LoadPolicyAndInitialState) {
  load_default();
  EXPECT_TRUE(sack_->policy_loaded());
  EXPECT_EQ(sack_->current_state_name(), "normal");
  EXPECT_EQ(sack_->current_permissions(),
            std::vector<std::string>{"MEDIA_READ"});
}

TEST_F(SackModuleTest, GuardedObjectDeniedWithoutStatePermission) {
  load_default();
  Process p(kernel_, rescue());
  // /dev/door is guarded; DOOR_CONTROL is not active in 'normal'.
  EXPECT_EQ(p.open("/dev/door", OpenFlags::write).error(), Errno::eacces);
  EXPECT_GT(sack_->denial_count(), 0u);
}

TEST_F(SackModuleTest, UnguardedObjectsUntouched) {
  load_default();
  Process p(kernel_, other());
  EXPECT_TRUE(p.write_file("/tmp/anything", "x").ok());
}

TEST_F(SackModuleTest, TransitionActivatesPermission) {
  load_default();
  Process p(kernel_, rescue());
  EXPECT_EQ(p.open("/dev/door", OpenFlags::write).error(), Errno::eacces);

  auto outcome = sack_->deliver_event("crash_detected");
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->transitioned);
  EXPECT_EQ(sack_->current_state_name(), "emergency");

  EXPECT_TRUE(p.open("/dev/door", OpenFlags::write).ok());
  // Subject matters: another task may not, even in emergency.
  Process q(kernel_, other());
  EXPECT_EQ(q.open("/dev/door", OpenFlags::write).error(), Errno::eacces);

  ASSERT_TRUE(sack_->deliver_event("emergency_cleared").ok());
  EXPECT_EQ(p.open("/dev/door", OpenFlags::write).error(), Errno::eacces);
}

TEST_F(SackModuleTest, OpenFdRevokedOnTransition) {
  load_default();
  (void)sack_->deliver_event("crash_detected");
  Process p(kernel_, rescue());
  Fd fd = *p.open("/dev/door", OpenFlags::write);
  EXPECT_TRUE(p.write(fd, "unlock").ok());

  // Situation resolves; the already-open fd must lose write access (OAC:
  // break-the-glass access disappears with the emergency).
  (void)sack_->deliver_event("emergency_cleared");
  EXPECT_EQ(p.write(fd, "unlock").error(), Errno::eacces);

  // And recovers when the emergency returns.
  (void)sack_->deliver_event("crash_detected");
  EXPECT_TRUE(p.write(fd, "unlock").ok());
}

TEST_F(SackModuleTest, ExecInvalidatesOpenFileVerdicts) {
  // Regression: the revalidation cache must key on the subject, not just the
  // policy generation — open fds survive exec() and the new image may not be
  // allowed what the old one was.
  load_default();
  (void)sack_->deliver_event("crash_detected");
  Process p(kernel_, rescue());
  Fd fd = *p.open("/dev/door", OpenFlags::write);
  EXPECT_TRUE(p.write(fd, "unlock").ok());  // verdict cached for /usr/bin/rescue

  // The rescue process execs into a different binary (no rule names it).
  ASSERT_TRUE(
      kernel_.sys_chmod(kernel_.init_task(), "/usr/bin/other", 0755).ok());
  ASSERT_TRUE(kernel_.sys_execve(rescue(), "/usr/bin/other").ok());
  EXPECT_EQ(p.write(fd, "unlock").error(), Errno::eacces);
}

TEST_F(SackModuleTest, EventsViaSackfs) {
  load_default();
  Process admin(kernel_, kernel_.init_task());
  ASSERT_TRUE(admin
                  .write_existing("/sys/kernel/security/SACK/events",
                                  "crash_detected\n")
                  .ok());
  EXPECT_EQ(sack_->current_state_name(), "emergency");

  // Multiple events in one write, with blank lines.
  ASSERT_TRUE(admin
                  .write_existing("/sys/kernel/security/SACK/events",
                                  "\nemergency_cleared\ncrash_detected\n")
                  .ok());
  EXPECT_EQ(sack_->current_state_name(), "emergency");
  EXPECT_EQ(sack_->events_received(), 3u);
}

TEST_F(SackModuleTest, UnknownEventRejectedAndCounted) {
  load_default();
  Process admin(kernel_, kernel_.init_task());
  EXPECT_EQ(admin
                .write_existing("/sys/kernel/security/SACK/events",
                                "bogus_event\n")
                .error(),
            Errno::einval);
  EXPECT_EQ(sack_->events_rejected(), 1u);
  EXPECT_EQ(sack_->current_state_name(), "normal");
}

TEST_F(SackModuleTest, PartialEventBatchSucceedsAndIsAccounted) {
  // Regression: a batch with one bad line used to fail the whole write(2)
  // even though the good lines had already transitioned the SSM — the SDS
  // would then retry events that already took effect. The write succeeds,
  // and the bad line shows up in the rejected counters instead.
  load_default();
  Process admin(kernel_, kernel_.init_task());
  EXPECT_TRUE(admin
                  .write_existing("/sys/kernel/security/SACK/events",
                                  "crash_detected\nnot_a_thing\n")
                  .ok());
  EXPECT_EQ(sack_->current_state_name(), "emergency");
  EXPECT_EQ(sack_->events_received(), 2u);
  EXPECT_EQ(sack_->events_rejected(), 1u);

  auto metrics = admin.read_file("/sys/kernel/security/SACK/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("events_received: 2"), std::string::npos);
  EXPECT_NE(metrics->find("events_accepted: 1"), std::string::npos);
  EXPECT_NE(metrics->find("events_rejected: 1"), std::string::npos);

  // All-bad batches still fail loudly.
  EXPECT_EQ(admin
                .write_existing("/sys/kernel/security/SACK/events",
                                "junk_a\njunk_b\n")
                .error(),
            Errno::einval);
  EXPECT_EQ(sack_->events_rejected(), 3u);
  EXPECT_EQ(sack_->current_state_name(), "emergency");
}

TEST_F(SackModuleTest, CurrentStateAndStatusFiles) {
  load_default();
  Process admin(kernel_, kernel_.init_task());
  EXPECT_EQ(*admin.read_file("/sys/kernel/security/SACK/current_state"),
            "normal 0\n");
  (void)sack_->deliver_event("crash_detected");
  EXPECT_EQ(*admin.read_file("/sys/kernel/security/SACK/current_state"),
            "emergency 1\n");
  auto status = admin.read_file("/sys/kernel/security/SACK/status");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("mode: independent"), std::string::npos);
  EXPECT_NE(status->find("current_state: emergency"), std::string::npos);
  EXPECT_NE(status->find("transitions_taken: 1"), std::string::npos);
}

TEST_F(SackModuleTest, PolicyLoadViaSackfs) {
  Process admin(kernel_, kernel_.init_task());
  ASSERT_TRUE(
      admin.write_existing("/sys/kernel/security/SACK/policy/load", kPolicy)
          .ok());
  EXPECT_TRUE(sack_->policy_loaded());
  EXPECT_EQ(sack_->current_state_name(), "normal");
}

TEST_F(SackModuleTest, PolicyLoadRequiresMacAdmin) {
  Task& user = kernel_.spawn_task("user", Cred::user(1000, 1000));
  user.cred().caps.add(Capability::dac_override);
  Process up(kernel_, user);
  EXPECT_EQ(
      up.write_existing("/sys/kernel/security/SACK/policy/load", kPolicy)
          .error(),
      Errno::eperm);
}

TEST_F(SackModuleTest, BadPolicyRejectedAtomically) {
  load_default();
  Process admin(kernel_, kernel_.init_task());
  // References an undeclared state -> checker error -> EINVAL, old policy
  // stays in force.
  EXPECT_EQ(admin
                .write_existing("/sys/kernel/security/SACK/policy/load",
                                "states { a = 0; } initial ghost;")
                .error(),
            Errno::einval);
  EXPECT_EQ(sack_->current_state_name(), "normal");
  EXPECT_EQ(sack_->policy().permissions.size(), 2u);
}

TEST_F(SackModuleTest, SectionInterfacesReadAndWrite) {
  load_default();
  Process admin(kernel_, kernel_.init_task());

  auto states = admin.read_file("/sys/kernel/security/SACK/policy/states");
  ASSERT_TRUE(states.ok());
  EXPECT_NE(states->find("normal = 0;"), std::string::npos);
  EXPECT_NE(states->find("initial normal;"), std::string::npos);

  auto perms =
      admin.read_file("/sys/kernel/security/SACK/policy/permissions");
  ASSERT_TRUE(perms.ok());
  EXPECT_NE(perms->find("MEDIA_READ;"), std::string::npos);

  // Replace just Per_Rules: drop the door rule entirely.
  ASSERT_TRUE(admin
                  .write_existing(
                      "/sys/kernel/security/SACK/policy/per_rules",
                      "per_rules { MEDIA_READ { allow * /var/media/** read "
                      "getattr; } DOOR_CONTROL { allow /usr/bin/rescue "
                      "/dev/door write; } }")
                  .ok());
  (void)sack_->deliver_event("crash_detected");
  Process p(kernel_, rescue());
  Fd fd = *p.open("/dev/door", OpenFlags::write);
  EXPECT_EQ(p.ioctl(fd, 1, 0).error(), Errno::eacces);  // ioctl dropped
}

TEST_F(SackModuleTest, SectionWriteValidatedAgainstWholePolicy) {
  load_default();
  Process admin(kernel_, kernel_.init_task());
  // Replacing permissions with a set that state_per doesn't reference
  // anymore must fail the cross-section validation.
  EXPECT_EQ(admin
                .write_existing(
                    "/sys/kernel/security/SACK/policy/permissions",
                    "permissions { SOMETHING_ELSE; }")
                .error(),
            Errno::einval);
  EXPECT_TRUE(sack_->policy().has_permission("MEDIA_READ"));
}

TEST_F(SackModuleTest, ValidateInterfaceIsDryRun) {
  load_default();
  Process admin(kernel_, kernel_.init_task());
  // A broken candidate: the verdict is REJECTED, the report is readable,
  // and the loaded policy is untouched.
  EXPECT_EQ(admin
                .write_existing("/sys/kernel/security/SACK/policy/validate",
                                "states { a = 0; } initial ghost;")
                .error(),
            Errno::einval);
  auto report =
      admin.read_file("/sys/kernel/security/SACK/policy/validate");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("initial state 'ghost'"), std::string::npos);
  EXPECT_NE(report->find("verdict: REJECTED"), std::string::npos);
  EXPECT_EQ(sack_->current_state_name(), "normal");  // untouched

  // A clean candidate validates without being loaded.
  ASSERT_TRUE(admin
                  .write_existing(
                      "/sys/kernel/security/SACK/policy/validate",
                      "states { x = 0; } initial x;")
                  .ok());
  report = admin.read_file("/sys/kernel/security/SACK/policy/validate");
  EXPECT_NE(report->find("verdict: loadable"), std::string::npos);
  EXPECT_EQ(sack_->current_state_name(), "normal");
  EXPECT_TRUE(sack_->policy().has_state("emergency"));  // still the old one
}

TEST_F(SackModuleTest, ExecGuardedByExecOp) {
  // chmod before the policy guards the binary (afterwards even chmod is a
  // mediated op on the guarded object).
  ASSERT_TRUE(
      kernel_.sys_chmod(kernel_.init_task(), "/usr/bin/rescue", 0755).ok());
  // A policy that guards an executable: exec allowed only in 'emergency'.
  ASSERT_TRUE(sack_->load_policy_text(R"(
states { normal = 0; emergency = 1; }
initial normal;
transitions { normal -> emergency on crash_detected; }
permissions { RUN_RESCUE_TOOLS; }
state_per { emergency: RUN_RESCUE_TOOLS; }
per_rules { RUN_RESCUE_TOOLS { allow * /usr/bin/rescue exec getattr; } }
)")
                  .ok());
  Task& t = kernel_.spawn_task("sh", Cred::root(), "/bin/sh");
  EXPECT_EQ(kernel_.sys_execve(t, "/usr/bin/rescue").error(), Errno::eacces);
  (void)sack_->deliver_event("crash_detected");
  EXPECT_TRUE(kernel_.sys_execve(t, "/usr/bin/rescue").ok());
}

TEST_F(SackModuleTest, ReloadRestartsSsm) {
  load_default();
  (void)sack_->deliver_event("crash_detected");
  EXPECT_EQ(sack_->current_state_name(), "emergency");
  load_default();
  EXPECT_EQ(sack_->current_state_name(), "normal");
}

TEST_F(SackModuleTest, GenerationBumpsOnLoadAndTransition) {
  auto g0 = sack_->policy_generation();
  load_default();
  auto g1 = sack_->policy_generation();
  EXPECT_GT(g1, g0);
  (void)sack_->deliver_event("crash_detected");
  EXPECT_GT(sack_->policy_generation(), g1);
}

// --- inode label cache keying ---
// The per-inode label cache memoizes "which loaded rules name this path";
// a label is a property of a *name*, and one inode can carry several names
// (hard links) or change its name (rename). These tests pin the cache's
// miss conditions: same inode + different path, and same inode + a label
// stamped by a different module instance.

kernel::Task standalone_task(const char* exe) {
  kernel::Task task(kernel::Pid(42), kernel::Pid(1), "t", Cred{});
  task.set_exe_path(exe);
  return task;
}

TEST(InodeLabelCache, PathChangeMissesInsteadOfServingWrongLabel) {
  SackModule module(SackMode::independent);
  module.set_avc(false);  // force every decision through the label path
  ASSERT_TRUE(module.load_policy_text(kPolicy).ok());
  kernel::Task task = standalone_task("/usr/bin/other");
  const kernel::Inode inode(kernel::InodeNo(7), kernel::InodeType::regular,
                            0644, kernel::Uid(0), kernel::Gid(0));
  // Warm the cache under an unguarded name: empty label, access OK.
  EXPECT_EQ(module.file_open(task, "/tmp/unguarded.txt", inode,
                             kernel::AccessMask::read),
            Errno::ok);
  // The same inode reached under a guarded name (a hard link, or the same
  // file after rename) must be denied: serving the cached empty label would
  // read as "unguarded" and bypass the /dev/door guard.
  EXPECT_EQ(module.file_open(task, "/dev/door", inode,
                             kernel::AccessMask::write),
            Errno::eacces);
  // No false denial in the other direction either: the denying name's label
  // must not stick to the inode when it is reached via an allowed name.
  EXPECT_EQ(module.file_open(task, "/var/media/track.pcm", inode,
                             kernel::AccessMask::read),
            Errno::ok);
}

TEST(InodeLabelCache, ModulesNeverHitEachOthersLabels) {
  // Stacked module instances share inodes and both store labels under the
  // SACK module name. With per-instance generation counters, both first
  // loads would stamp generation 1 and module B could hit a label resolved
  // under module A's rule numbering; generations are process-unique, so B
  // misses and resolves its own.
  constexpr std::string_view kEtcOnlyPolicy = R"(
states { normal = 0; }
initial normal;
permissions { ETC_READ; }
state_per { normal: ETC_READ; }
per_rules { ETC_READ { allow * /etc/** read; } }
)";
  constexpr std::string_view kRescueMediaPolicy = R"(
states { normal = 0; }
initial normal;
permissions { MEDIA_RESCUE; }
state_per { normal: MEDIA_RESCUE; }
per_rules { MEDIA_RESCUE { allow /usr/bin/rescue /var/media/** read; } }
)";
  SackModule a(SackMode::independent);
  SackModule b(SackMode::independent);
  a.set_avc(false);
  b.set_avc(false);
  ASSERT_TRUE(a.load_policy_text(kEtcOnlyPolicy).ok());
  ASSERT_TRUE(b.load_policy_text(kRescueMediaPolicy).ok());
  ASSERT_NE(a.ruleset().label_generation(), b.ruleset().label_generation());
  kernel::Task task = standalone_task("/usr/bin/other");
  const kernel::Inode inode(kernel::InodeNo(8), kernel::InodeType::regular,
                            0644, kernel::Uid(0), kernel::Gid(0));
  // A does not guard /var/media: empty label cached on the shared inode.
  EXPECT_EQ(a.file_open(task, "/var/media/track.pcm", inode,
                        kernel::AccessMask::read),
            Errno::ok);
  // B guards /var/media for rescue only; hitting A's empty label would
  // allow. Same path, so only the generation distinguishes the entries.
  EXPECT_EQ(b.file_open(task, "/var/media/track.pcm", inode,
                        kernel::AccessMask::read),
            Errno::eacces);
}

}  // namespace
}  // namespace sack::core
