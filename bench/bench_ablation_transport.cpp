// A1 ablation (design choice from §III-C): situation-event transmission
// channel. The paper argues socket- or syscall-based approaches cannot match
// securityfs on latency + security; this bench quantifies the latency side:
//
//   direct      — in-kernel delivery (lower bound; no user/kernel crossing)
//   securityfs  — SACKfs write(2), the paper's design
//   socket hop  — SDS -> AF_UNIX socket -> relay daemon -> SACKfs write,
//                 the extra user-space hop a socket design implies
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/sack_module.h"
#include "simbench/capture.h"
#include "simbench/env.h"
#include "simbench/policy_gen.h"

namespace {

using sack::kernel::Fd;
using sack::kernel::OpenFlags;
using sack::kernel::SockFamily;
using sack::simbench::BenchEnv;
using sack::simbench::BenchMac;
using sack::simbench::EnvOptions;

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  EnvOptions options;
  options.mac = BenchMac::independent_sack;
  options.sack_policy = sack::simbench::speed_gate_policy();
  BenchEnv env(options);
  auto* sack_module = env.sack();

  auto sds = env.root_process();
  Fd events_fd = *sds.open("/sys/kernel/security/SACK/events",
                           OpenFlags::write);

  // Relay pair for the socket design: "SDS" sends on one end, a "relay
  // daemon" receives on the other and forwards into SACKfs.
  auto [sds_sock, relay_sock] =
      *env.kernel().sys_socketpair(env.kernel().init_task(), SockFamily::unix_);

  const char* flip[2] = {"high_speed_entered\n", "low_speed_entered\n"};

  benchmark::RegisterBenchmark("direct_call", [&](benchmark::State& s) {
    std::size_t i = 0;
    for (auto _ : s) {
      auto rc = sack_module->deliver_event(
          i++ % 2 ? "low_speed_entered" : "high_speed_entered");
      if (!rc.ok()) s.SkipWithError("delivery failed");
    }
  })->MinTime(0.2);

  benchmark::RegisterBenchmark("securityfs_write", [&](benchmark::State& s) {
    std::size_t i = 0;
    for (auto _ : s) {
      auto rc = sds.write(events_fd, flip[i++ % 2]);
      if (!rc.ok()) s.SkipWithError("write failed");
    }
  })->MinTime(0.2);

  benchmark::RegisterBenchmark("unix_socket_hop", [&](benchmark::State& s) {
    auto& kernel = env.kernel();
    auto& init = kernel.init_task();
    std::string buf;
    std::size_t i = 0;
    for (auto _ : s) {
      // SDS -> socket
      auto sent = kernel.sys_send(init, sds_sock, flip[i++ % 2]);
      if (!sent.ok()) s.SkipWithError("send failed");
      // relay daemon wakes up, reads, forwards into SACKfs
      auto got = kernel.sys_recv(init, relay_sock, buf, 64);
      if (!got.ok()) s.SkipWithError("recv failed");
      auto rc = sds.write(events_fd, buf);
      if (!rc.ok()) s.SkipWithError("forward failed");
    }
  })->MinTime(0.2);

  sack::simbench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  double direct = reporter.ns("direct_call");
  double secfs = reporter.ns("securityfs_write");
  double socket = reporter.ns("unix_socket_hop");
  std::printf("\n=== Ablation: situation-event transmission channel ===\n");
  std::printf("%-20s %10.2f us  (in-kernel lower bound)\n", "direct call",
              direct / 1000.0);
  std::printf("%-20s %10.2f us  (SACK's design: +%.2f us over direct)\n",
              "securityfs write", secfs / 1000.0, (secfs - direct) / 1000.0);
  std::printf("%-20s %10.2f us  (%.2fx the securityfs path)\n",
              "unix socket hop", socket / 1000.0, socket / secfs);
  std::printf(
      "\nShape check: the securityfs path adds only the syscall crossing to\n"
      "the lower bound, while a socket design pays an extra IPC round trip\n"
      "per event — supporting the paper's choice of a SACKfs pseudo-file.\n");
  return 0;
}
