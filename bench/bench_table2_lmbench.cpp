// E1 / Table II: LMBench-style micro-benchmarks across the three MAC
// configurations of the paper — AppArmor (baseline), SACK-enhanced AppArmor,
// and independent SACK — all with their default policies loaded and the
// benchmark process confined like a production IVI service.
//
// Expected shape (paper): both SACK variants within low single-digit percent
// of the AppArmor baseline on every row.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "lmbench_suite.h"
#include "simbench/workloads.h"

namespace {

using sack::bench::SuiteOptions;
using sack::simbench::BenchEnv;
using sack::simbench::BenchMac;
using sack::simbench::EnvOptions;

struct Config {
  BenchMac mac;
  const char* tag;
  const char* column;
};

constexpr Config kConfigs[] = {
    {BenchMac::apparmor, "apparmor", "AppArmor"},
    {BenchMac::sack_enhanced_apparmor, "sack_aa", "SACK-enhanced AppArmor"},
    {BenchMac::independent_sack, "sack", "Independent SACK"},
};

// Reruns a slice of the workload mix with the observability layer on and
// returns the module's per-stage percentiles. This is deliberately separate
// from the timed table above: the table measures the enforcement cost with
// tracing off (the deployment default), the instrumented pass attributes
// where hook time goes (AVC probe vs matcher walk vs event->enforce).
std::string instrumented_metrics_json(BenchEnv& env, int iterations) {
  auto* sack = env.sack();
  if (!sack) return "null";
  sack->reset_metrics();
  sack->set_observe(true);
  for (int i = 0; i < iterations; ++i) {
    sack::simbench::wl_stat(env);
    sack::simbench::wl_open_close(env);
  }
  // Drive the event half of the pipeline too, so event_to_enforce_ns and
  // apply_state_ns have samples.
  auto root = env.root_process();
  for (int i = 0; i < 32; ++i) {
    (void)root.write_existing("/sys/kernel/security/SACK/events",
                              "crash_detected\n");
    (void)root.write_existing("/sys/kernel/security/SACK/events",
                              "emergency_cleared\n");
  }
  sack->set_observe(false);
  return sack->metrics_json();
}

}  // namespace

int main(int argc, char** argv) {
  // --fast: CI smoke mode — tiny min_time per benchmark, same coverage.
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);

  std::vector<std::unique_ptr<BenchEnv>> envs;
  SuiteOptions options;
  if (fast) options.min_time = 0.01;
  for (const Config& config : kConfigs) {
    EnvOptions env_options;
    env_options.mac = config.mac;
    envs.push_back(std::make_unique<BenchEnv>(env_options));
    sack::bench::register_lmbench_suite(envs.back().get(), config.tag,
                                        options);
  }

  sack::simbench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::printf("\n");
  sack::bench::print_lmbench_table(
      reporter,
      "Table II: LMBench result of SACK (simulated kernel)",
      {"apparmor", "sack_aa", "sack"},
      {"AppArmor", "SACK-enhanced AppArmor", "Independent SACK"}, options);
  std::printf(
      "\nPaper shape check: SACK columns should stay within low single-digit\n"
      "percent of the AppArmor baseline on every row (Table II reports\n"
      "deltas between -7.4%% and +6.4%%, average below 3%%).\n");

  // Instrumented pass: per-stage latency percentiles for each SACK config,
  // written to BENCH_table2.json for trajectory tracking across PRs.
  const int iterations = fast ? 500 : 5000;
  std::ofstream json("BENCH_table2.json");
  json << "{\n  \"fast\": " << (fast ? "true" : "false")
       << ",\n  \"per_stage_metrics\": {\n";
  bool first = true;
  for (std::size_t i = 0; i < envs.size(); ++i) {
    if (!envs[i]->sack()) continue;
    if (!first) json << ",\n";
    first = false;
    json << "    \"" << kConfigs[i].tag
         << "\": " << instrumented_metrics_json(*envs[i], iterations);
  }
  json << "\n  }\n}\n";
  std::printf("\nwrote BENCH_table2.json (per-stage hook percentiles)\n");
  return 0;
}
