// E1 / Table II: LMBench-style micro-benchmarks across the three MAC
// configurations of the paper — AppArmor (baseline), SACK-enhanced AppArmor,
// and independent SACK — all with their default policies loaded and the
// benchmark process confined like a production IVI service.
//
// Expected shape (paper): both SACK variants within low single-digit percent
// of the AppArmor baseline on every row.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lmbench_suite.h"

namespace {

using sack::bench::SuiteOptions;
using sack::simbench::BenchEnv;
using sack::simbench::BenchMac;
using sack::simbench::EnvOptions;

struct Config {
  BenchMac mac;
  const char* tag;
  const char* column;
};

constexpr Config kConfigs[] = {
    {BenchMac::apparmor, "apparmor", "AppArmor"},
    {BenchMac::sack_enhanced_apparmor, "sack_aa", "SACK-enhanced AppArmor"},
    {BenchMac::independent_sack, "sack", "Independent SACK"},
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<std::unique_ptr<BenchEnv>> envs;
  SuiteOptions options;
  for (const Config& config : kConfigs) {
    EnvOptions env_options;
    env_options.mac = config.mac;
    envs.push_back(std::make_unique<BenchEnv>(env_options));
    sack::bench::register_lmbench_suite(envs.back().get(), config.tag,
                                        options);
  }

  sack::simbench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::printf("\n");
  sack::bench::print_lmbench_table(
      reporter,
      "Table II: LMBench result of SACK (simulated kernel)",
      {"apparmor", "sack_aa", "sack"},
      {"AppArmor", "SACK-enhanced AppArmor", "Independent SACK"}, options);
  std::printf(
      "\nPaper shape check: SACK columns should stay within low single-digit\n"
      "percent of the AppArmor baseline on every row (Table II reports\n"
      "deltas between -7.4%% and +6.4%%, average below 3%%).\n");
  return 0;
}
