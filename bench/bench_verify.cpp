// Verification-cost scaling: wall time of the three verify engines vs
// policy size.
//
// Three sweeps, all over the simbench synthetic generators so the shapes
// match the paper's scaling experiments:
//
//   states  N-state ring policies -> model-checker construction + the full
//           privilege-diff/escalation report, and the differential oracle
//           (reference vs compiled vs linear vs AVC) over the generated
//           universe;
//   rules   N extra MAC rules -> the pairwise glob-subsumption matrix
//           (the quadratic kernel of shadow analysis);
//   verify  N extra MAC rules -> verify_policy end to end (lints, model
//           checker, state-level shadow pass; oracle timed separately).
//
// Deterministic; results land in BENCH_verify.json. `--fast` runs reduced
// sizes for CI smoke.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "simbench/policy_gen.h"
#include "verify/model_checker.h"
#include "verify/oracle.h"
#include "verify/subsume.h"
#include "verify/universe.h"
#include "verify/verifier.h"

namespace {

using sack::core::MacRule;
using sack::core::SackPolicy;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<const MacRule*> all_rules(const SackPolicy& policy) {
  std::vector<const MacRule*> rules;
  for (const auto& [perm, list] : policy.per_rules)
    for (const auto& rule : list) rules.push_back(&rule);
  return rules;
}

struct StatesRow {
  int states = 0;
  std::size_t reachable = 0;
  double check_ms = 0;
  double oracle_ms = 0;
  std::size_t oracle_tuples = 0;
  bool oracle_ok = false;
};

struct SubsumeRow {
  int rules = 0;
  std::size_t pairs = 0;
  std::size_t subsumed = 0;
  double ms = 0;
};

struct VerifyRow {
  int rules = 0;
  double ms = 0;
  std::size_t findings = 0;
  std::size_t errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  const std::vector<int> state_sizes =
      fast ? std::vector<int>{4, 8} : std::vector<int>{4, 8, 16, 32};
  const std::vector<int> subsume_sizes =
      fast ? std::vector<int>{32, 128} : std::vector<int>{32, 128, 512};
  const std::vector<int> verify_sizes =
      fast ? std::vector<int>{32, 64} : std::vector<int>{32, 64, 128, 256};

  bool all_ok = true;

  // --- sweep 1: model checker + oracle vs state count -----------------
  std::vector<StatesRow> states_rows;
  for (int n : state_sizes) {
    auto policy = sack::simbench::sack_policy_with_states(n);
    StatesRow row;
    row.states = n;

    auto t0 = std::chrono::steady_clock::now();
    sack::verify::ModelChecker checker(policy);
    auto universe = sack::verify::build_universe(policy);
    auto diffs = checker.privilege_diffs(universe);
    (void)diffs;
    row.check_ms = elapsed_ms(t0);
    row.reachable = checker.reachable().size();

    t0 = std::chrono::steady_clock::now();
    auto oracle = sack::verify::run_differential_oracle(policy);
    row.oracle_ms = elapsed_ms(t0);
    row.oracle_tuples = oracle.tuples_checked;
    row.oracle_ok = oracle.ok();
    all_ok = all_ok && row.oracle_ok && row.reachable == static_cast<std::size_t>(n);

    std::printf(
        "states %3d: reachable %3zu  model+diff %8.2f ms  oracle %8.2f ms "
        "(%zu tuples, %s)\n",
        n, row.reachable, row.check_ms, row.oracle_ms, row.oracle_tuples,
        row.oracle_ok ? "ok" : "MISMATCH");
    states_rows.push_back(row);
  }

  // --- sweep 2: pairwise subsumption matrix vs rule count -------------
  std::vector<SubsumeRow> subsume_rows;
  for (int n : subsume_sizes) {
    auto policy = sack::simbench::sack_policy_with_rules(n, false);
    auto rules = all_rules(policy);
    SubsumeRow row;
    row.rules = n;
    auto t0 = std::chrono::steady_clock::now();
    for (const auto* general : rules) {
      for (const auto* specific : rules) {
        if (general == specific) continue;
        ++row.pairs;
        if (sack::verify::rule_subsumes(*general, *specific)) ++row.subsumed;
      }
    }
    row.ms = elapsed_ms(t0);
    std::printf("rules %4d: %8zu pairs  subsume matrix %8.2f ms  (%zu held)\n",
                n, row.pairs, row.ms, row.subsumed);
    subsume_rows.push_back(row);
  }

  // --- sweep 3: verify_policy end to end vs rule count ----------------
  std::vector<VerifyRow> verify_rows;
  for (int n : verify_sizes) {
    auto policy = sack::simbench::sack_policy_with_rules(n, false);
    sack::verify::VerifyOptions options;
    options.run_oracle = false;  // oracle cost is sweep 1's measurement
    VerifyRow row;
    row.rules = n;
    auto t0 = std::chrono::steady_clock::now();
    auto report = sack::verify::verify_policy(policy, options, "bench");
    row.ms = elapsed_ms(t0);
    row.findings = report.findings.size();
    row.errors = report.count(sack::verify::FindingSeverity::error);
    all_ok = all_ok && row.errors == 0;
    std::printf("verify %4d rules: %8.2f ms  (%zu findings, %zu errors)\n", n,
                row.ms, row.findings, row.errors);
    verify_rows.push_back(row);
  }

  std::printf("shape check: %s\n", all_ok ? "OK" : "FAILED");

  std::ofstream json("BENCH_verify.json");
  json << "{\n  \"fast\": " << (fast ? "true" : "false") << ",\n";
  json << "  \"model_check_states\": [";
  for (std::size_t i = 0; i < states_rows.size(); ++i) {
    const auto& r = states_rows[i];
    json << (i ? ", " : "") << "{\"states\": " << r.states
         << ", \"reachable\": " << r.reachable
         << ", \"check_ms\": " << r.check_ms
         << ", \"oracle_ms\": " << r.oracle_ms
         << ", \"oracle_tuples\": " << r.oracle_tuples
         << ", \"oracle_ok\": " << (r.oracle_ok ? "true" : "false") << "}";
  }
  json << "],\n  \"subsume_rules\": [";
  for (std::size_t i = 0; i < subsume_rows.size(); ++i) {
    const auto& r = subsume_rows[i];
    json << (i ? ", " : "") << "{\"rules\": " << r.rules
         << ", \"pairs\": " << r.pairs << ", \"subsumed\": " << r.subsumed
         << ", \"ms\": " << r.ms << "}";
  }
  json << "],\n  \"verify_rules\": [";
  for (std::size_t i = 0; i < verify_rows.size(); ++i) {
    const auto& r = verify_rows[i];
    json << (i ? ", " : "") << "{\"rules\": " << r.rules
         << ", \"ms\": " << r.ms << ", \"findings\": " << r.findings
         << ", \"errors\": " << r.errors << "}";
  }
  json << "]\n}\n";
  std::printf("wrote BENCH_verify.json\n");
  return all_ok ? 0 : 1;
}
