// Shared registration of the LMBench-style suite for one benchmark
// environment. Used by the Table II and Table III binaries.
#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "simbench/capture.h"
#include "simbench/env.h"
#include "simbench/table.h"
#include "simbench/workloads.h"

namespace sack::bench {

struct SuiteOptions {
  double min_time = 0.15;      // seconds per benchmark
  bool processes = true;       // syscall/fork/stat/open-close/exec rows
  bool null_io = false;        // Table III's "I/O" row
  bool files = true;           // create/delete 0K & 10K, mmap latency
  bool bandwidths = true;      // pipe/AF_UNIX/TCP/file reread/mmap reread
  bool ctxsw = true;           // 2p/0K, 2p/16K
};

// Registers benchmarks named "<op>/<tag>" running against `env`.
// `env` must outlive benchmark::RunSpecifiedBenchmarks().
void register_lmbench_suite(simbench::BenchEnv* env, const std::string& tag,
                            const SuiteOptions& options = {});

// Emits the paper-shaped table: one row per op present in `options`, one
// column per tag (tags[0] is the baseline), reading results from `reporter`.
void print_lmbench_table(const simbench::CaptureReporter& reporter,
                         const std::string& title,
                         const std::vector<std::string>& tags,
                         const std::vector<std::string>& column_names,
                         const SuiteOptions& options = {});

}  // namespace sack::bench
