// A4 ablation: SACK situation transitions vs the pre-SACK alternative —
// SELinux-style policy booleans flipped by a user-space daemon (related
// work's "conditional policy" approach, cf. §II).
//
// Two costs are compared as the loaded policy grows:
//   * SACK: securityfs event write -> O(1) SSM lookup -> APE re-activation
//     of the current state's rules into per-operation tables;
//   * TE boolean: securityfs write -> conditional-rule index rebuild.
//
// (The semantic gap — booleans do not revoke already-open fds, SACK's
// generation bump does — is pinned by TeBooleanTest.BooleanFlipDoesNotRevokeOpenFds.)
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/policy_builder.h"
#include "core/sack_module.h"
#include "kernel/process.h"
#include "simbench/capture.h"
#include "te/te_module.h"

namespace {

using sack::operator|;
using sack::kernel::Kernel;
using sack::kernel::OpenFlags;

constexpr int kRuleCounts[] = {10, 100, 1000};

// SACK policy: two states, `count` rules attached to a permission granted in
// one of them (so every transition re-activates / deactivates all of them).
sack::core::SackPolicy sack_policy(int count) {
  sack::core::PolicyBuilder b;
  b.state("normal", 0).state("special", 1).initial("normal");
  b.transition("normal", "enter", "special");
  b.transition("special", "leave", "normal");
  b.permission("BULK").grant("special", "BULK");
  for (int i = 0; i < count; ++i) {
    b.allow("BULK", "*", "/var/rules/object_" + std::to_string(i),
            sack::core::MacOp::read | sack::core::MacOp::write);
  }
  return b.build();
}

// TE policy: `count` conditional rules behind one boolean.
std::string te_policy(int count) {
  std::string text = "type app_t;\nbool special_mode false;\n";
  for (int i = 0; i < count; ++i)
    text += "type obj" + std::to_string(i) + "_t;\n";
  text += "if special_mode {\n";
  for (int i = 0; i < count; ++i) {
    text += "  allow app_t obj" + std::to_string(i) +
            "_t : file { read write };\n";
  }
  text += "}\n";
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<std::unique_ptr<Kernel>> kernels;

  for (int count : kRuleCounts) {
    // SACK side.
    kernels.push_back(std::make_unique<Kernel>());
    Kernel* sk = kernels.back().get();
    auto* sack_mod = static_cast<sack::core::SackModule*>(sk->add_lsm(
        std::make_unique<sack::core::SackModule>(
            sack::core::SackMode::independent)));
    if (!sack_mod->load_policy(sack_policy(count)).ok()) return 1;

    benchmark::RegisterBenchmark(
        ("sack_transition/" + std::to_string(count)).c_str(),
        [sk, sack_mod](benchmark::State& s) {
          auto sds = sack::kernel::Process(*sk, sk->init_task());
          auto fd = sds.open("/sys/kernel/security/SACK/events",
                             OpenFlags::write);
          if (!fd.ok()) {
            s.SkipWithError("events open failed");
            return;
          }
          bool in = false;
          for (auto _ : s) {
            in = !in;
            auto rc = sds.write(*fd, in ? "enter\n" : "leave\n");
            if (!rc.ok()) s.SkipWithError("event write failed");
          }
        })
        ->MinTime(0.1);

    // TE side.
    kernels.push_back(std::make_unique<Kernel>());
    Kernel* tk = kernels.back().get();
    auto* te_mod = static_cast<sack::te::TeModule*>(
        tk->add_lsm(std::make_unique<sack::te::TeModule>()));
    if (!te_mod->load_policy_text(te_policy(count)).ok()) return 1;

    benchmark::RegisterBenchmark(
        ("te_boolean_flip/" + std::to_string(count)).c_str(),
        [tk](benchmark::State& s) {
          auto admin = sack::kernel::Process(*tk, tk->init_task());
          auto fd = admin.open("/sys/kernel/security/setype/booleans",
                               OpenFlags::write);
          if (!fd.ok()) {
            s.SkipWithError("booleans open failed");
            return;
          }
          bool on = false;
          for (auto _ : s) {
            on = !on;
            auto rc =
                admin.write(*fd, on ? "special_mode 1" : "special_mode 0");
            if (!rc.ok()) s.SkipWithError("boolean write failed");
          }
        })
        ->MinTime(0.1);
  }

  sack::simbench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::printf("\n=== Ablation: situation adaptation mechanisms "
              "(per policy change, securityfs write included) ===\n");
  std::printf("%-8s %20s %20s %10s\n", "rules", "SACK transition",
              "TE boolean flip", "ratio");
  for (int count : kRuleCounts) {
    double sack_ns =
        reporter.ns("sack_transition/" + std::to_string(count));
    double te_ns =
        reporter.ns("te_boolean_flip/" + std::to_string(count));
    std::printf("%-8d %17.1f us %17.1f us %9.1fx\n", count, sack_ns / 1000.0,
                te_ns / 1000.0, te_ns / sack_ns);
  }
  std::printf(
      "\nReading the numbers: both mechanisms are microsecond-scale and\n"
      "linear in the affected rule count. The SACK transition is the more\n"
      "expensive of the two per change because the APE builds richer per-\n"
      "operation tables (which is what keeps the per-ACCESS cost flat,\n"
      "cf. Table III and the matcher ablation) — a cost worth paying for an\n"
      "event that fires at human/vehicle timescales. The decisive gaps are\n"
      "semantic, not latency: a boolean flip neither revokes already-open\n"
      "fds (TeBooleanTest.BooleanFlipDoesNotRevokeOpenFds) nor gives the\n"
      "kernel a first-class situation model (state machine, encodings,\n"
      "transition rules, audit) — each situation would need hand-wired\n"
      "boolean combinations maintained by trusted user-space code.\n");
  return 0;
}
