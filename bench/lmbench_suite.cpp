#include "lmbench_suite.h"

namespace sack::bench {

using simbench::BenchEnv;
using simbench::CaptureReporter;
using simbench::CtxSwitchPair;
using simbench::FileReread;
using simbench::MmapReread;
using simbench::NullIo;
using simbench::PaperTable;
using simbench::PipeChannel;
using simbench::SocketChannel;

namespace {

template <typename Fn>
void reg(const std::string& name, double min_time, Fn fn) {
  benchmark::RegisterBenchmark(name.c_str(), std::move(fn))
      ->MinTime(min_time);
}

}  // namespace

void register_lmbench_suite(BenchEnv* env, const std::string& tag,
                            const SuiteOptions& options) {
  const double t = options.min_time;

  if (options.processes) {
    reg("syscall/" + tag, t, [env](benchmark::State& s) {
      for (auto _ : s) simbench::wl_null_syscall(*env);
    });
    reg("fork/" + tag, t, [env](benchmark::State& s) {
      for (auto _ : s) simbench::wl_fork_exit_wait(*env);
    });
    reg("stat/" + tag, t, [env](benchmark::State& s) {
      for (auto _ : s) simbench::wl_stat(*env);
    });
    reg("open_close/" + tag, t, [env](benchmark::State& s) {
      for (auto _ : s) simbench::wl_open_close(*env);
    });
    reg("exec/" + tag, t, [env](benchmark::State& s) {
      for (auto _ : s) simbench::wl_exec(*env);
    });
  }
  if (options.null_io) {
    reg("null_io/" + tag, t, [env](benchmark::State& s) {
      auto io = std::make_shared<NullIo>(*env);
      for (auto _ : s) io->io_once();
    });
  }
  if (options.files) {
    reg("file_create_0k/" + tag, t, [env](benchmark::State& s) {
      for (auto _ : s) {
        simbench::wl_file_create_delete(*env, 0);
      }
    });
    reg("file_create_10k/" + tag, t, [env](benchmark::State& s) {
      for (auto _ : s) {
        simbench::wl_file_create_delete(*env, 10 * 1024);
      }
    });
    reg("mmap_latency/" + tag, t, [env](benchmark::State& s) {
      for (auto _ : s) simbench::wl_mmap_cycle(*env);
    });
  }
  if (options.bandwidths) {
    reg("pipe_bw/" + tag, t, [env](benchmark::State& s) {
      auto ch = std::make_shared<PipeChannel>(*env);
      std::size_t bytes = 0;
      for (auto _ : s) bytes += ch->transfer();
      s.SetBytesProcessed(static_cast<std::int64_t>(bytes));
    });
    reg("unix_bw/" + tag, t, [env](benchmark::State& s) {
      auto ch = std::make_shared<SocketChannel>(*env,
                                                kernel::SockFamily::unix_);
      std::size_t bytes = 0;
      for (auto _ : s) bytes += ch->transfer();
      s.SetBytesProcessed(static_cast<std::int64_t>(bytes));
    });
    reg("tcp_bw/" + tag, t, [env](benchmark::State& s) {
      auto ch = std::make_shared<SocketChannel>(*env,
                                                kernel::SockFamily::inet);
      std::size_t bytes = 0;
      for (auto _ : s) bytes += ch->transfer();
      s.SetBytesProcessed(static_cast<std::int64_t>(bytes));
    });
    reg("file_reread/" + tag, t, [env](benchmark::State& s) {
      auto ch = std::make_shared<FileReread>(*env);
      std::size_t bytes = 0;
      for (auto _ : s) bytes += ch->transfer();
      s.SetBytesProcessed(static_cast<std::int64_t>(bytes));
    });
    reg("mmap_reread/" + tag, t, [env](benchmark::State& s) {
      auto ch = std::make_shared<MmapReread>(*env);
      std::size_t bytes = 0;
      for (auto _ : s) bytes += ch->transfer();
      s.SetBytesProcessed(static_cast<std::int64_t>(bytes));
    });
  }
  if (options.ctxsw) {
    reg("ctxsw_2p_0k/" + tag, t, [env](benchmark::State& s) {
      auto pair = std::make_shared<CtxSwitchPair>(*env, 0);
      for (auto _ : s) pair->round_trip();
    });
    reg("ctxsw_2p_16k/" + tag, t, [env](benchmark::State& s) {
      auto pair = std::make_shared<CtxSwitchPair>(*env, 16 * 1024);
      for (auto _ : s) pair->round_trip();
    });
  }
}

void print_lmbench_table(const CaptureReporter& reporter,
                         const std::string& title,
                         const std::vector<std::string>& tags,
                         const std::vector<std::string>& column_names,
                         const SuiteOptions& options) {
  PaperTable table(title, column_names);

  auto latency_row = [&](const std::string& op, const std::string& label) {
    std::vector<double> us;
    us.reserve(tags.size());
    for (const auto& tag : tags) {
      us.push_back(reporter.ns(op + "/" + tag) / 1000.0);
    }
    table.row(label, us, "us");
  };
  auto bw_row = [&](const std::string& op, const std::string& label) {
    std::vector<double> mbps;
    mbps.reserve(tags.size());
    for (const auto& tag : tags) mbps.push_back(reporter.mbps(op + "/" + tag));
    table.row(label, mbps, "MB/s", /*higher_is_better=*/true);
  };

  if (options.processes || options.null_io) {
    table.section("Processes (latency in us - smaller is better)");
    if (options.processes) {
      latency_row("syscall", "syscall");
      latency_row("fork", "fork");
      latency_row("stat", "stat");
      latency_row("open_close", "open/close file");
      latency_row("exec", "exec");
    }
    if (options.null_io) latency_row("null_io", "I/O");
  }
  if (options.files) {
    table.section("File Access (latency in us - smaller is better)");
    latency_row("file_create_0k", "file create+delete (0K)");
    latency_row("file_create_10k", "file create+delete (10K)");
    latency_row("mmap_latency", "mmap latency");
  }
  if (options.bandwidths) {
    table.section(
        "Local Communication Bandwidths (MB/s - bigger is better)");
    bw_row("pipe_bw", "pipe");
    bw_row("unix_bw", "AF_UNIX");
    bw_row("tcp_bw", "TCP");
    bw_row("file_reread", "file reread");
    bw_row("mmap_reread", "mmap reread");
  }
  if (options.ctxsw) {
    table.section("Context Switching (latency in us - smaller is better)");
    latency_row("ctxsw_2p_0k", "2p/0K ctxsw");
    latency_row("ctxsw_2p_16k", "2p/16K ctxsw");
  }
  table.print();
}

}  // namespace sack::bench
