// E5 / §IV-B "Situation awareness latency": time from the SDS's write(2) on
// /sys/kernel/security/SACK/events to the situation state being visible in
// the kernel, for four distinct situation events, plus delivery accuracy.
//
// Paper shape: microsecond-scale average latency (≈5.4 µs on their PC) with
// 100% accuracy.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/policy_builder.h"
#include "core/sack_module.h"
#include "simbench/capture.h"
#include "simbench/env.h"
#include "simbench/policy_gen.h"
#include "simbench/stats.h"

namespace {

using sack::simbench::BenchEnv;
using sack::simbench::BenchMac;
using sack::simbench::EnvOptions;

// A four-state ring so four distinct events each cause a real transition.
sack::core::SackPolicy four_event_policy() {
  sack::core::PolicyBuilder b;
  b.state("s0", 0).state("s1", 1).state("s2", 2).state("s3", 3).initial("s0");
  b.transition("s0", "crash_detected", "s1");
  b.transition("s1", "emergency_cleared", "s2");
  b.transition("s2", "start_driving", "s3");
  b.transition("s3", "stop_driving", "s0");
  return b.build();
}

const char* kEvents[] = {"crash_detected", "emergency_cleared",
                         "start_driving", "stop_driving"};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  EnvOptions options;
  options.mac = BenchMac::independent_sack;
  options.sack_policy = four_event_policy();
  BenchEnv env(options);

  // Keep the events fd open like a long-running SDS daemon would.
  auto sds = env.root_process();
  auto events_fd =
      sds.open("/sys/kernel/security/SACK/events", sack::kernel::OpenFlags::write);
  if (!events_fd.ok()) {
    std::fprintf(stderr, "cannot open SACKfs events file\n");
    return 1;
  }

  // google-benchmark measurement: one full event transmission per iteration,
  // cycling through the four events (every write transitions the ring).
  benchmark::RegisterBenchmark(
      "event_transmission_latency",
      [&](benchmark::State& s) {
        std::size_t i = 0;
        for (auto _ : s) {
          auto rc = sds.write(*events_fd, std::string(kEvents[i % 4]) + "\n");
          if (!rc.ok()) s.SkipWithError("event write failed");
          ++i;
        }
      })
      ->MinTime(0.2);

  sack::simbench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Accuracy pass: deliver a known sequence, verify the state after every
  // single event, and per-event latency with a manual timer.
  auto* sack_module = env.sack();
  const auto* ssm = sack_module->ssm();
  // The benchmark loop above left the ring at an arbitrary position; walk
  // it back to s0 so the expected-state table lines up.
  for (int e = 0; ssm->current_name() != "s0" && e < 4; ++e) {
    // kEvents[K] is the event that advances the ring from state sK.
    (void)sds.write(*events_fd,
                    std::string(kEvents[ssm->current_encoding()]) + "\n");
  }
  const char* expected_state[] = {"s1", "s2", "s3", "s0"};
  constexpr int kRounds = 2000;
  std::vector<double> per_event_us;
  per_event_us.reserve(kRounds * 4);
  std::uint64_t correct = 0, total = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int e = 0; e < 4; ++e) {
      sack::MonotonicTimer timer;
      (void)sds.write(*events_fd, std::string(kEvents[e]) + "\n");
      // State visibility check is part of the measured path: the SDS reads
      // back the current state the same way a user-space client would not
      // need to — the transition is already committed when write returns.
      double us = timer.elapsed_us();
      per_event_us.push_back(us);
      ++total;
      if (ssm->current_name() == expected_state[e]) ++correct;
    }
  }
  auto stats = sack::simbench::compute_stats(per_event_us);

  std::printf("\n=== Situation awareness latency (securityfs transmission) "
              "===\n");
  std::printf("events tested: %d kinds x %d rounds\n", 4, kRounds);
  std::printf("google-benchmark: %.2f us per transmitted event\n",
              reporter.ns("event_transmission_latency") / 1000.0);
  std::printf("manual timing:    mean %.2f us  median %.2f us  "
              "stddev %.2f us  max %.2f us\n",
              stats.mean, stats.median, stats.stddev, stats.max);
  std::printf("accuracy: %llu/%llu (%.2f%%)\n",
              static_cast<unsigned long long>(correct),
              static_cast<unsigned long long>(total),
              100.0 * static_cast<double>(correct) / static_cast<double>(total));
  std::printf("kernel-side counters: received=%llu rejected=%llu "
              "transitions=%llu\n",
              static_cast<unsigned long long>(sack_module->events_received()),
              static_cast<unsigned long long>(sack_module->events_rejected()),
              static_cast<unsigned long long>(ssm->transitions_taken()));
  std::printf(
      "\nPaper shape check: microsecond-scale average latency (the paper\n"
      "reports ~5.4 us) with 100%% delivery accuracy.\n");
  return 0;
}
