// SFI enforcement cost: per-syscall transition latency and stacked
// throughput.
//
//   transition_ns_p50/p95/p99   latency of one SfiModule::task_syscall step
//                               for a confined task (dense-table automaton
//                               advance), sampled in batches; the budget is
//                               p50 <= 150 ns;
//   baseline_ops_per_sec        media workload throughput on the two-module
//                               stack (SACK + AppArmor);
//   sfi_ops_per_sec             the same workload with the SFI module
//                               stacked behind them;
//   throughput_fraction         sfi / baseline — must stay >= 0.9 (the
//                               flow gate may cost at most 10%).
//
// Results land in BENCH_sfi.json. `--fast` runs a reduced budget for CI
// smoke; perf budgets are reported as MET/MISS but only the shape check
// (counters consistent, zero unexpected denials) fails the run, so debug
// and loaded CI machines don't flake the gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ivi/ivi_system.h"
#include "kernel/kernel.h"
#include "sfi/module.h"
#include "util/log.h"

namespace {

using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point t0) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  sack::Logger::instance().set_level(sack::LogLevel::off);
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  // --- per-transition latency: the module alone, dense-table hot path ----
  sack::kernel::Kernel kernel;
  auto* module = static_cast<sack::sfi::SfiModule*>(
      kernel.add_lsm(std::make_unique<sack::sfi::SfiModule>()));
  if (!module
           ->load_policy_text(sack::ivi::default_sfi_profiles_text())
           .ok()) {
    std::fprintf(stderr, "bench_sfi: profile load failed\n");
    return 1;
  }
  sack::kernel::Task& task = kernel.spawn_task(
      "media", sack::kernel::Cred::root(),
      std::string(sack::ivi::MediaApp::kExePath));

  // The admissible cycle the profile was learned from.
  static constexpr std::string_view kCycle[] = {"sys_open", "sys_read",
                                                "sys_read", "sys_close"};
  constexpr std::size_t kBatch = 256;  // syscalls per timed sample
  const std::size_t batches = fast ? 200 : 4000;

  // Warm-up attaches the blob and faults the table in.
  for (std::size_t i = 0; i < 1024; ++i)
    (void)module->task_syscall(task, kCycle[i % 4]);

  std::vector<double> per_call_ns;
  per_call_ns.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < kBatch; ++i)
      (void)module->task_syscall(task, kCycle[i % 4]);
    per_call_ns.push_back(ns_since(t0) / kBatch);
  }
  const double p50 = percentile(per_call_ns, 0.50);
  const double p95 = percentile(per_call_ns, 0.95);
  const double p99 = percentile(per_call_ns, 0.99);
  const bool latency_met = p50 <= 150.0;
  const bool clean = module->denial_count() == 0 &&
                     module->check_count() >= batches * kBatch;

  // --- stacked throughput: full IVI media workload, 2 vs 3 modules -------
  const std::size_t ops = fast ? 400 : 4000;
  auto run_workload = [&](bool enable_sfi) {
    sack::ivi::IviSystem sys(sack::ivi::IviSystem::Options{
        .mac = sack::ivi::MacConfig::stacked_independent,
        .start_sds = false,
        .enable_sfi = enable_sfi,
    });
    // Warm-up: caches, lazy attaches.
    (void)sys.media().set_volume(10);
    (void)sys.media().play_track(sack::ivi::IviSystem::kMediaTrack);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      if (!sys.media().set_volume(static_cast<long>(10 + i % 8)).ok() ||
          !sys.media().play_track(sack::ivi::IviSystem::kMediaTrack).ok())
        return -1.0;  // a denial in the steady state is a bench failure
    }
    const double secs = ns_since(t0) / 1e9;
    return static_cast<double>(ops) / (secs > 0 ? secs : 1e-9);
  };
  const double baseline_ops = run_workload(false);
  const double sfi_ops = run_workload(true);
  const double fraction =
      baseline_ops > 0 && sfi_ops > 0 ? sfi_ops / baseline_ops : 0.0;
  const bool throughput_met = fraction >= 0.9;
  const bool workloads_clean = baseline_ops > 0 && sfi_ops > 0;

  std::printf("=== SFI enforcement cost (%s) ===\n", fast ? "fast" : "full");
  std::printf("transition p50/p95/p99: %.1f / %.1f / %.1f ns  [budget 150 ns "
              "p50: %s]\n",
              p50, p95, p99, latency_met ? "MET" : "MISS");
  std::printf("checks: %llu, denials: %llu\n",
              static_cast<unsigned long long>(module->check_count()),
              static_cast<unsigned long long>(module->denial_count()));
  std::printf("throughput 2-module: %.0f ops/s, +sfi: %.0f ops/s, fraction "
              "%.3f  [budget >= 0.9: %s]\n",
              baseline_ops, sfi_ops, fraction,
              throughput_met ? "MET" : "MISS");

  const bool sane = clean && workloads_clean;
  std::printf("shape check: %s\n", sane ? "OK" : "FAILED");

  std::ofstream json("BENCH_sfi.json");
  json << "{\n"
       << "  \"mode\": \"" << (fast ? "fast" : "full") << "\",\n"
       << "  \"transition_ns_p50\": " << p50 << ",\n"
       << "  \"transition_ns_p95\": " << p95 << ",\n"
       << "  \"transition_ns_p99\": " << p99 << ",\n"
       << "  \"latency_budget_ns\": 150,\n"
       << "  \"latency_met\": " << (latency_met ? "true" : "false") << ",\n"
       << "  \"baseline_ops_per_sec\": " << baseline_ops << ",\n"
       << "  \"sfi_ops_per_sec\": " << sfi_ops << ",\n"
       << "  \"throughput_fraction\": " << fraction << ",\n"
       << "  \"throughput_budget\": 0.9,\n"
       << "  \"throughput_met\": " << (throughput_met ? "true" : "false")
       << ",\n"
       << "  \"denials\": "
       << static_cast<unsigned long long>(module->denial_count()) << "\n"
       << "}\n";
  std::printf("wrote BENCH_sfi.json\n");
  return sane ? 0 : 1;
}
