// Fuzzer throughput and time-to-coverage-plateau.
//
// Runs one deterministic sack-fuzz campaign (seed 42, checked-in seed
// corpus, hostile racer armed) and reports:
//
//   execs_per_sec          whole-campaign execution rate — each exec boots a
//                          fresh simulated kernel, replays one program under
//                          the mediation oracle, and runs the whole-program
//                          invariant walks;
//   time_to_plateau_ms     wall-clock until the last new coverage key;
//   plateau_execs          exec index of that last coverage gain;
//   coverage_keys          (syscall x state x errno) + (syscall x hook x
//                          verdict) tuples reached;
//   oracle_violations      must be 0 on a healthy tree — any nonzero value
//                          is a mediation regression, and the bench fails.
//
// Results land in BENCH_fuzz.json. `--fast` runs a reduced budget for CI
// smoke.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "fuzz/fuzzer.h"
#include "util/log.h"

int main(int argc, char** argv) {
  sack::Logger::instance().set_level(sack::LogLevel::off);
  bool fast = false;
  std::string source_dir = SACK_SOURCE_DIR;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  sack::fuzz::FuzzConfig config;
  config.seed = 42;
  config.max_execs = fast ? 2000 : 100000;
  config.plateau_execs = fast ? 1000 : 8000;
  config.corpus_dir = source_dir + "/tests/fixtures/fuzz/corpus";

  sack::fuzz::Fuzzer fuzzer(config, sack::fuzz::load_manifest_or_die(
                                        source_dir + "/docs/hook_manifest.toml"));
  fuzzer.run();

  const auto& s = fuzzer.stats();
  const double secs =
      s.elapsed_ms > 0 ? static_cast<double>(s.elapsed_ms) / 1000.0 : 1e-3;
  const double execs_per_sec = static_cast<double>(s.execs) / secs;

  std::printf("=== sack-fuzz campaign: seed %llu, budget %zu execs ===\n",
              static_cast<unsigned long long>(config.seed), config.max_execs);
  std::printf("execs:              %zu (%.0f/sec)\n", s.execs, execs_per_sec);
  std::printf("coverage keys:      %zu\n", s.coverage_keys);
  std::printf("corpus:             %zu programs\n", s.corpus_size);
  std::printf("plateau:            %s at exec %zu (~%llu ms)\n",
              s.hit_plateau ? "reached" : "not reached", s.plateau_execs,
              static_cast<unsigned long long>(s.time_to_plateau_ms));
  std::printf("oracle violations:  %zu (%zu findings)\n", s.violations,
              fuzzer.findings().size());
  for (const auto& f : fuzzer.findings()) {
    std::printf("FINDING %s in %s: %s\n", f.violations.front().rule.c_str(),
                f.violations.front().syscall.c_str(),
                f.violations.front().detail.c_str());
  }

  const bool sane = fuzzer.findings().empty() && s.coverage_keys > 100;
  std::printf("shape check: %s\n", sane ? "OK" : "FAILED");

  std::ofstream json("BENCH_fuzz.json");
  json << "{\n"
       << "  \"seed\": " << config.seed << ",\n"
       << "  \"execs\": " << s.execs << ",\n"
       << "  \"execs_per_sec\": " << execs_per_sec << ",\n"
       << "  \"coverage_keys\": " << s.coverage_keys << ",\n"
       << "  \"corpus_size\": " << s.corpus_size << ",\n"
       << "  \"hit_plateau\": " << (s.hit_plateau ? "true" : "false") << ",\n"
       << "  \"plateau_execs\": " << s.plateau_execs << ",\n"
       << "  \"time_to_plateau_ms\": " << s.time_to_plateau_ms << ",\n"
       << "  \"elapsed_ms\": " << s.elapsed_ms << ",\n"
       << "  \"oracle_violations\": " << s.violations << ",\n"
       << "  \"findings\": " << fuzzer.findings().size() << "\n"
       << "}\n";
  std::printf("wrote BENCH_fuzz.json\n");
  return sane ? 0 : 1;
}
