// E3 / Fig 3(a): runtime overhead of independent SACK vs the number of
// situation states {1, 10, 50, 100}, measured on a file-operation workload
// against a no-MAC baseline. Independent SACK is the worst case (it runs its
// own LSM hooks). Paper shape: ~1.8% overhead at 100 states — i.e. nearly
// flat, because per-op cost depends on the active rule set, not state count.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "simbench/capture.h"
#include "simbench/env.h"
#include "simbench/policy_gen.h"
#include "simbench/stats.h"
#include "simbench/table.h"
#include "simbench/workloads.h"

namespace {

using sack::simbench::BenchEnv;
using sack::simbench::BenchMac;
using sack::simbench::EnvOptions;

constexpr int kStateCounts[] = {1, 10, 50, 100};

// The Fig 3(a) "file operations" workload: open/read/close plus a
// create/delete cycle.
void file_ops(BenchEnv& env) {
  sack::simbench::wl_open_close(env);
  sack::simbench::wl_stat(env);
  sack::simbench::wl_file_create_delete(env, 0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<std::unique_ptr<BenchEnv>> envs;

  // Baseline: LSM framework enabled but no MAC module.
  {
    EnvOptions options;
    options.mac = BenchMac::none;
    envs.push_back(std::make_unique<BenchEnv>(options));
    BenchEnv* env = envs.back().get();
    benchmark::RegisterBenchmark("file_ops/baseline",
                                 [env](benchmark::State& s) {
                                   for (auto _ : s) file_ops(*env);
                                 })
        ->MinTime(0.1);
  }
  for (int states : kStateCounts) {
    EnvOptions options;
    options.mac = BenchMac::independent_sack;
    options.sack_policy = sack::simbench::sack_policy_with_states(states);
    envs.push_back(std::make_unique<BenchEnv>(options));
    BenchEnv* env = envs.back().get();
    std::string name = "file_ops/states" + std::to_string(states);
    benchmark::RegisterBenchmark(name.c_str(), [env](benchmark::State& s) {
      for (auto _ : s) file_ops(*env);
    })->MinTime(0.1);
  }

  sack::simbench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::printf("\n=== Fig 3(a): runtime overhead vs number of situation states "
              "(independent SACK) ===\n");
  double baseline = reporter.ns("file_ops/baseline");
  std::printf("%-12s %12s %12s\n", "states", "us/op", "overhead");
  std::printf("%-12s %12.3f %12s\n", "no SACK", baseline / 1000.0, "-");
  for (int states : kStateCounts) {
    double ns = reporter.ns("file_ops/states" + std::to_string(states));
    std::printf("%-12d %12.3f %11.2f%%\n", states, ns / 1000.0,
                sack::simbench::percent_delta(baseline, ns));
  }
  std::printf(
      "\nPaper shape check: overhead is ~flat in state count (per-operation\n"
      "cost depends on the active rule set, not on how many states exist).\n"
      "Fig 3(a) reports ~1.8%% at 100 states on real hardware; absolute\n"
      "percentages run higher here because the simulated file operations\n"
      "lack the millisecond-scale filesystem costs of LMBench's, so the\n"
      "same fixed mediation cost is a larger fraction.\n");
  return 0;
}
