// Chaos campaign: availability and failover timing under injected faults.
//
// Each trial boots the full stack (kernel + SACK module with a watchdog
// policy + SDS with a crash detector), drives ~10 Hz sensor frames on the
// virtual clock, and starves the SDS for a randomized outage window while
// ENOSPC faults bite the events channel. Measured per trial:
//
//   time_to_failsafe_ms  outage start -> SSM forced into the declared
//                        failsafe state (bounded by the watchdog deadline
//                        plus one clock tick);
//   time_to_recovery_ms  outage end -> resync handshake complete and the
//                        SSM re-converged with the SDS's detector belief
//                        (target: within one frame);
//   availability         1 - (undefined window / scenario time), where the
//                        undefined window is outage time before the trip —
//                        the only span where the kernel believes a dead SDS
//                        is alive.
//
// Everything is deterministic from the trial seeds: a regression replays.
// Results land in BENCH_chaos.json. `--fast` runs a reduced trial count for
// CI smoke.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/policy_builder.h"
#include "core/sack_module.h"
#include "kernel/kernel.h"
#include "kernel/process.h"
#include "sds/detectors.h"
#include "sds/sds.h"
#include "util/fault.h"
#include "util/log.h"
#include "util/rng.h"

namespace {

using sack::Rng;
using sack::operator|;
using sack::core::MacOp;
using sack::core::PolicyBuilder;
using sack::core::SackMode;
using sack::core::SackModule;
using sack::kernel::Kernel;
using sack::kernel::Process;
using sack::sds::CrashDetector;
using sack::sds::SensorFrame;
using sack::sds::SituationDetectionService;
using sack::util::FaultInjector;
using sack::util::FaultSpec;

constexpr std::int64_t kDeadlineMs = 500;

sack::core::SackPolicy chaos_policy() {
  PolicyBuilder b;
  b.state("normal", 0)
      .state("emergency", 1)
      .state("lockdown", 2)
      .initial("normal")
      .transition("normal", "crash_detected", "emergency")
      .transition("emergency", "emergency_cleared", "normal")
      .transition("lockdown", "sds_recovered", "normal")
      .watchdog(kDeadlineMs, "lockdown")
      .permission("DOORS")
      .grant("emergency", "DOORS")
      .allow("DOORS", "*", "/dev/door", MacOp::write | MacOp::ioctl);
  return b.build();
}

struct TrialResult {
  double availability = 0;
  std::int64_t time_to_failsafe_ms = -1;  // -1: outage ended before trip
  std::int64_t time_to_recovery_ms = -1;
  bool reconverged = false;
  std::uint64_t retry_enqueued = 0;
  std::uint64_t retry_succeeded = 0;
  std::uint64_t retry_dropped = 0;
  std::uint64_t retry_exhausted = 0;
};

TrialResult run_trial(std::uint64_t trial) {
  Rng rng(0xc4a05'0000ULL + trial);

  Kernel kernel;
  auto* mod = static_cast<SackModule*>(
      kernel.add_lsm(std::make_unique<SackModule>(SackMode::independent)));
  if (!mod->load_policy(chaos_policy()).ok()) std::abort();
  SituationDetectionService sds(Process(kernel, kernel.init_task()));
  sds.add_detector(std::make_unique<CrashDetector>());

  // Transient disk pressure on the events channel for the whole trial; the
  // retry queue has to absorb it without losing events unaccounted.
  FaultInjector::instance().reset();
  FaultSpec enospc;
  enospc.probability = 0.15;
  enospc.seed = 0xd15c'0000ULL + trial;
  enospc.error = sack::Errno::enospc;
  enospc.match = "events";
  FaultInjector::instance().arm("sackfs.write", enospc);

  // Scenario: ~20 s of frames with jittered periods (so the outage phase
  // lands at varying offsets inside the watchdog deadline), a crash in
  // roughly half the trials, and one SDS outage long enough to trip.
  const std::size_t total_frames = 200;
  const std::size_t outage_start = 30 + rng.below(60);
  const std::size_t outage_frames = 8 + rng.below(30);
  const std::size_t crash_frame = rng.chance(0.5) ? 10 + rng.below(15) : 0;

  std::int64_t t_ms = 0;
  std::int64_t outage_start_ms = -1, outage_end_ms = -1;
  std::int64_t trip_ms = -1, recovery_ms = -1;
  std::int64_t undefined_ms = 0;
  bool pending_recovery = false;

  for (std::size_t i = 0; i < total_frames; ++i) {
    const std::int64_t step =
        60 + static_cast<std::int64_t>(rng.below(80));  // ~10 Hz, jittered
    const bool starved =
        i >= outage_start && i < outage_start + outage_frames;
    if (starved) {
      if (outage_start_ms < 0) outage_start_ms = t_ms;
    } else {
      const bool was_tripped = !mod->sds_alive();
      SensorFrame f;
      f.time_ms = t_ms;
      f.speed_kmh = 80.0;
      f.gear = sack::sds::Gear::drive;
      f.driver_present = true;
      f.crash_signal = crash_frame != 0 && i == crash_frame;
      (void)sds.feed(f);
      if (outage_start_ms >= 0 && outage_end_ms < 0) {
        outage_end_ms = t_ms;  // first frame the SDS ran again
        pending_recovery = was_tripped;
      }
    }
    const bool was_alive = mod->sds_alive();
    kernel.advance_clock_ms(step);
    t_ms += step;
    if (starved && was_alive) {
      // Kernel still trusts a silent SDS: the undefined span. Charge the
      // whole tick even when the trip lands inside it (conservative).
      undefined_ms += step;
      if (!mod->sds_alive()) trip_ms = t_ms;
    }
    if (pending_recovery && recovery_ms < 0 && mod->resyncs() > 0 &&
        mod->sds_alive()) {
      recovery_ms = t_ms;  // handshake completed within this frame period
    }
  }

  TrialResult r;
  r.availability =
      1.0 - static_cast<double>(undefined_ms) / static_cast<double>(t_ms);
  if (trip_ms >= 0 && outage_start_ms >= 0)
    r.time_to_failsafe_ms = trip_ms - outage_start_ms;
  if (recovery_ms >= 0 && outage_end_ms >= 0)
    r.time_to_recovery_ms = recovery_ms - outage_end_ms;
  // Reconvergence: the kernel's state must match the SDS's belief again.
  const std::string state = mod->current_state_name();
  const bool believes_emergency = crash_frame != 0;
  r.reconverged = believes_emergency ? state == "emergency"
                                     : state == "normal";
  r.retry_enqueued = sds.retry_enqueued();
  r.retry_succeeded = sds.retry_succeeded();
  r.retry_dropped = sds.retry_dropped();
  r.retry_exhausted = sds.retry_exhausted();
  // Conservation law, checked every trial.
  if (r.retry_enqueued !=
      r.retry_succeeded + r.retry_dropped + r.retry_exhausted +
          sds.retry_depth())
    std::abort();
  FaultInjector::instance().reset();
  return r;
}

double pct(std::vector<std::int64_t> v, double p) {
  if (v.empty()) return -1;
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  return static_cast<double>(v[static_cast<std::size_t>(idx + 0.5)]);
}

}  // namespace

int main(int argc, char** argv) {
  // Hundreds of trials each tripping the watchdog on purpose: the expected
  // warnings would drown the results table.
  sack::Logger::instance().set_level(sack::LogLevel::error);
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  const std::uint64_t trials = fast ? 40 : 200;

  std::vector<std::int64_t> failsafe_ms, recovery_ms;
  double avail_sum = 0, avail_min = 1.0;
  std::uint64_t reconverged = 0, tripped = 0;
  std::uint64_t enq = 0, ok = 0, dropped = 0, exhausted = 0;

  for (std::uint64_t t = 0; t < trials; ++t) {
    auto r = run_trial(t);
    avail_sum += r.availability;
    avail_min = std::min(avail_min, r.availability);
    if (r.time_to_failsafe_ms >= 0) {
      failsafe_ms.push_back(r.time_to_failsafe_ms);
      ++tripped;
    }
    if (r.time_to_recovery_ms >= 0) recovery_ms.push_back(r.time_to_recovery_ms);
    if (r.reconverged) ++reconverged;
    enq += r.retry_enqueued;
    ok += r.retry_succeeded;
    dropped += r.retry_dropped;
    exhausted += r.retry_exhausted;
  }

  const double avail_mean = avail_sum / static_cast<double>(trials);
  std::printf("=== chaos campaign: %llu trials (deadline %lld ms) ===\n",
              static_cast<unsigned long long>(trials),
              static_cast<long long>(kDeadlineMs));
  std::printf("availability:        mean %.4f  min %.4f\n", avail_mean,
              avail_min);
  std::printf("watchdog trips:      %llu/%llu trials\n",
              static_cast<unsigned long long>(tripped),
              static_cast<unsigned long long>(trials));
  std::printf("time_to_failsafe_ms: p50 %.0f  p95 %.0f  p99 %.0f\n",
              pct(failsafe_ms, 50), pct(failsafe_ms, 95),
              pct(failsafe_ms, 99));
  std::printf("time_to_recovery_ms: p50 %.0f  p95 %.0f  p99 %.0f\n",
              pct(recovery_ms, 50), pct(recovery_ms, 95),
              pct(recovery_ms, 99));
  std::printf("reconverged:         %llu/%llu trials\n",
              static_cast<unsigned long long>(reconverged),
              static_cast<unsigned long long>(trials));
  std::printf("retry accounting:    enqueued %llu = succeeded %llu + dropped "
              "%llu + exhausted %llu (+ depth)\n",
              static_cast<unsigned long long>(enq),
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(exhausted));

  // Shape guarantees the suite relies on: every sufficiently long outage
  // trips, failsafe latency is bounded by deadline + one (jittered) tick,
  // and every trial ends reconverged.
  const double p99_failsafe = pct(failsafe_ms, 99);
  const bool sane = !failsafe_ms.empty() && reconverged == trials &&
                    p99_failsafe <= kDeadlineMs + 140;
  std::printf("shape check: %s\n", sane ? "OK" : "FAILED");

  std::ofstream json("BENCH_chaos.json");
  json << "{\n"
       << "  \"trials\": " << trials << ",\n"
       << "  \"deadline_ms\": " << kDeadlineMs << ",\n"
       << "  \"availability\": {\"mean\": " << avail_mean
       << ", \"min\": " << avail_min << "},\n"
       << "  \"time_to_failsafe_ms\": {\"p50\": " << pct(failsafe_ms, 50)
       << ", \"p95\": " << pct(failsafe_ms, 95)
       << ", \"p99\": " << pct(failsafe_ms, 99) << "},\n"
       << "  \"time_to_recovery_ms\": {\"p50\": " << pct(recovery_ms, 50)
       << ", \"p95\": " << pct(recovery_ms, 95)
       << ", \"p99\": " << pct(recovery_ms, 99) << "},\n"
       << "  \"reconverged_trials\": " << reconverged << ",\n"
       << "  \"watchdog_trip_trials\": " << tripped << ",\n"
       << "  \"retry\": {\"enqueued\": " << enq << ", \"succeeded\": " << ok
       << ", \"dropped\": " << dropped << ", \"exhausted\": " << exhausted
       << "}\n}\n";
  std::printf("wrote BENCH_chaos.json\n");
  return sane ? 0 : 1;
}
