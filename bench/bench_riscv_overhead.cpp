// E1b / §IV-B (VisionFive2 RISC-V board): independent SACK vs the original
// system *without the LSM framework*. The paper reports +4.53% on file read
// and +6.36% on file write for this comparison — larger than Table II's
// deltas because the baseline has no LSM hooks at all, so SACK pays for the
// hook plumbing *and* its checks.
//
// We reproduce the comparison structurally: BenchMac::none boots the kernel
// with an empty LSM stack (the capability module only), independent SACK
// adds the full hook traffic plus rule matching.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "simbench/capture.h"
#include "simbench/env.h"
#include "simbench/stats.h"
#include "simbench/workloads.h"
#include "util/clock.h"

namespace {

using sack::operator|;  // bitmask ops live in the outer sack namespace
using sack::kernel::Fd;
using sack::kernel::OpenFlags;
using sack::kernel::Whence;
using sack::simbench::BenchEnv;
using sack::simbench::BenchMac;
using sack::simbench::EnvOptions;

// File read: sequential ~0.5K reads over the 1 MiB file through one fd.
// (An odd size sidesteps 4K-aliasing artifacts between the source string
// and the destination buffer that otherwise dwarf the hook cost.)
void register_file_ops(BenchEnv* env, const std::string& tag) {
  benchmark::RegisterBenchmark(
      ("file_read/" + tag).c_str(),
      [env](benchmark::State& s) {
        auto& k = env->kernel();
        Fd fd = k.sys_open(env->task(), BenchEnv::kRereadFile,
                           OpenFlags::read)
                    .value();
        std::string buf;
        for (auto _ : s) {
          auto n = k.sys_read(env->task(), fd, buf, 503);
          if (!n.ok() || *n == 0)
            (void)k.sys_lseek(env->task(), fd, 0, Whence::set);
        }
        (void)k.sys_close(env->task(), fd);
      })
      ->MinTime(0.2);
  benchmark::RegisterBenchmark(
      ("file_write/" + tag).c_str(),
      [env](benchmark::State& s) {
        auto& k = env->kernel();
        const std::string path = std::string(BenchEnv::kWorkDir) + "/wfile";
        Fd fd = k.sys_open(env->task(), path,
                           OpenFlags::write | OpenFlags::create)
                    .value();
        const std::string chunk(503, 'w');
        for (auto _ : s) {
          (void)k.sys_write(env->task(), fd, chunk);
          if (k.sys_lseek(env->task(), fd, 0, Whence::cur).value() >
              (1u << 20))
            (void)k.sys_lseek(env->task(), fd, 0, Whence::set);
        }
        (void)k.sys_close(env->task(), fd);
        (void)k.sys_unlink(env->task(), path);
      })
      ->MinTime(0.2);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  EnvOptions base_options;
  base_options.mac = BenchMac::none;
  BenchEnv baseline(base_options);
  EnvOptions sack_options;
  sack_options.mac = BenchMac::independent_sack;
  BenchEnv with_sack(sack_options);

  register_file_ops(&baseline, "no_lsm");
  register_file_ops(&with_sack, "sack");

  // Warm-up: drive both kernels' read/write paths until the CPU governor
  // and caches settle, otherwise whichever benchmark runs first eats the
  // cold-start cost and the comparison flips sign with registration order.
  for (BenchEnv* env : {&baseline, &with_sack}) {
    auto& k = env->kernel();
    Fd fd = k.sys_open(env->task(), BenchEnv::kRereadFile, OpenFlags::read)
                .value();
    std::string buf;
    sack::MonotonicTimer timer;
    while (timer.elapsed_ms() < 300) {
      for (int i = 0; i < 512; ++i) {
        auto n = k.sys_read(env->task(), fd, buf, 503);
        if (!n.ok() || *n == 0)
          (void)k.sys_lseek(env->task(), fd, 0, Whence::set);
      }
    }
    (void)k.sys_close(env->task(), fd);
  }

  sack::simbench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::printf("\n=== Embedded-board comparison: independent SACK vs no-LSM "
              "baseline ===\n");
  for (const char* op : {"file_read", "file_write"}) {
    double base = reporter.ns(std::string(op) + "/no_lsm");
    double sack_ns = reporter.ns(std::string(op) + "/sack");
    std::printf("%-11s baseline %8.1f ns/op   with SACK %8.1f ns/op   "
                "overhead %+.2f%%  (+%.1f ns/op)\n",
                op, base, sack_ns,
                sack::simbench::percent_delta(base, sack_ns),
                sack_ns - base);
  }
  std::printf(
      "\nPaper shape check: positive overhead on both rows, write above\n"
      "read (the VisionFive2 numbers are +4.53%% read / +6.36%% write).\n"
      "The absolute added cost here is ~10-15 ns per operation (hooks +\n"
      "guard probe); the percentage is inflated because a simulated small\n"
      "read costs ~20 ns where a real kernel's costs a microsecond.\n");
  return 0;
}
