// E2 / Table III: LMBench-style benchmarks on SACK-enhanced AppArmor with a
// growing number of SACK rules {0, 10, 100, 500, 1000}. The paper finds the
// overhead essentially flat in rule count because (a) rules only enter the
// hot path when their permission is active and (b) the matcher is indexed,
// not a linear scan.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lmbench_suite.h"
#include "simbench/policy_gen.h"

namespace {

using sack::bench::SuiteOptions;
using sack::simbench::BenchEnv;
using sack::simbench::BenchMac;
using sack::simbench::EnvOptions;

constexpr int kRuleCounts[] = {0, 10, 100, 500, 1000};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  SuiteOptions options;
  options.processes = false;  // Table III keeps syscall + I/O only
  options.null_io = true;
  // ... and we add the plain-syscall row by hand for fidelity:
  std::vector<std::unique_ptr<BenchEnv>> envs;
  std::vector<std::string> tags;
  std::vector<std::string> columns;

  for (int count : kRuleCounts) {
    EnvOptions env_options;
    env_options.mac = BenchMac::sack_enhanced_apparmor;
    env_options.sack_policy =
        sack::simbench::sack_policy_with_rules(count, /*profile_subjects=*/true);
    envs.push_back(std::make_unique<BenchEnv>(env_options));

    std::string tag = "rules" + std::to_string(count);
    tags.push_back(tag);
    columns.push_back(count == 0 ? "0 rules" : std::to_string(count));

    BenchEnv* env = envs.back().get();
    benchmark::RegisterBenchmark(
        ("syscall/" + tag).c_str(),
        [env](benchmark::State& s) {
          for (auto _ : s) sack::simbench::wl_null_syscall(*env);
        })
        ->MinTime(options.min_time);
    sack::bench::register_lmbench_suite(env, tag, options);
  }

  sack::simbench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::printf("\n");
  // Print the syscall row first, then the shared table.
  {
    sack::simbench::PaperTable head(
        "Table III: LMBench result vs number of SACK rules "
        "(SACK-enhanced AppArmor, simulated kernel)",
        columns);
    head.section("Processes (latency in us - smaller is better)");
    std::vector<double> syscall_us;
    for (const auto& tag : tags)
      syscall_us.push_back(reporter.ns("syscall/" + tag) / 1000.0);
    head.row("syscall", syscall_us, "us");
    head.print();
  }
  sack::bench::print_lmbench_table(
      reporter, "Table III (continued)", tags, columns, options);
  std::printf(
      "\nPaper shape check: overhead should be roughly flat in rule count\n"
      "(Table III attributes residual differences to jitter; the rule\n"
      "tables are indexed so inactive bulk rules never hit the hot path).\n");
  return 0;
}
