// A3 ablation: the per-open-file revalidation cache in independent SACK.
//
// file_permission runs on every read/write. With the cache, a successful
// check is remembered until the policy generation changes (a situation
// transition or reload); without it, every read/write pays a full rule
// match. Measured on a steady-read workload over a guarded file, at varying
// transition rates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/sack_module.h"
#include "simbench/capture.h"
#include "simbench/env.h"
#include "simbench/policy_gen.h"
#include "simbench/stats.h"

namespace {

using sack::kernel::Fd;
using sack::kernel::OpenFlags;
using sack::simbench::BenchEnv;
using sack::simbench::BenchMac;
using sack::simbench::EnvOptions;

std::unique_ptr<BenchEnv> make_env(bool cache) {
  EnvOptions options;
  options.mac = BenchMac::independent_sack;
  options.sack_policy = sack::simbench::speed_gate_policy();
  auto env = std::make_unique<BenchEnv>(options);
  env->sack()->set_revalidation_cache(cache);
  return env;
}

void register_read_loop(BenchEnv* env, const std::string& tag,
                        long transitions_every) {
  benchmark::RegisterBenchmark(
      ("guarded_read/" + tag).c_str(),
      [env, transitions_every](benchmark::State& s) {
        // Read the guarded critical file through a persistent fd (allowed in
        // low_speed, the current state).
        auto proc = env->process();
        auto fd = proc.open(BenchEnv::kCriticalFile, OpenFlags::read);
        if (!fd.ok()) {
          s.SkipWithError("open failed");
          return;
        }
        auto sds = env->root_process();
        std::string buffer;
        long counter = 0;
        for (auto _ : s) {
          (void)env->kernel().sys_lseek(env->task(), *fd, 0,
                                        sack::kernel::Whence::set);
          auto rc = proc.read(*fd, buffer, 16);
          if (!rc.ok()) s.SkipWithError("read failed");
          if (transitions_every > 0 && ++counter >= transitions_every) {
            counter = 0;
            // A transition away and back: two generation bumps.
            (void)sds.write_existing("/sys/kernel/security/SACK/events",
                                     "high_speed_entered\n");
            (void)sds.write_existing("/sys/kernel/security/SACK/events",
                                     "low_speed_entered\n");
          }
        }
        (void)proc.close(*fd);
      })
      ->MinTime(0.1);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  auto cached = make_env(true);
  auto uncached = make_env(false);
  auto cached_churn = make_env(true);

  register_read_loop(cached.get(), "cached", 0);
  register_read_loop(uncached.get(), "uncached", 0);
  // Churn case: with transitions every 64 reads the cache keeps being
  // invalidated, so the two designs should converge.
  register_read_loop(cached_churn.get(), "cached_churn64", 64);

  sack::simbench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  double with_cache = reporter.ns("guarded_read/cached");
  double without = reporter.ns("guarded_read/uncached");
  double churn = reporter.ns("guarded_read/cached_churn64");
  std::printf("\n=== Ablation: file_permission revalidation cache ===\n");
  std::printf("%-28s %10.1f ns/read\n", "cache on (stable state)",
              with_cache);
  std::printf("%-28s %10.1f ns/read  (+%.1f%%)\n",
              "cache off (full re-match)", without,
              sack::simbench::percent_delta(with_cache, without));
  std::printf("%-28s %10.1f ns/read\n", "cache on, churn every 64",
              churn);
  std::printf(
      "\nShape check: the cache removes the rule match from steady-state\n"
      "reads while transitions still revoke open fds immediately (the\n"
      "correctness tests cover revocation); under heavy churn the benefit\n"
      "shrinks toward the uncached cost, as expected.\n");
  return 0;
}
