// E4 / Fig 3(b): runtime overhead vs situation-state transition frequency.
//
// Two situations, high_speed and low_speed; a critical file is accessible
// only in low_speed. The SDS (simulated by a root writer on SACKfs) flips
// the situation every {1, 10, 100, 1000} ms of workload time while the
// benchmark process runs a file-operation loop. Overhead is measured against
// the same environment with no transitions at all.
//
// Paper shape: ~0.93% overhead at a 1000 ms period, growing as the period
// shrinks (every transition runs the APE and invalidates permission caches).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "kernel/process.h"
#include "simbench/capture.h"
#include "simbench/env.h"
#include "simbench/policy_gen.h"
#include "simbench/stats.h"
#include "simbench/workloads.h"
#include "util/clock.h"

namespace {

using sack::simbench::BenchEnv;
using sack::simbench::BenchMac;
using sack::simbench::EnvOptions;

constexpr long kPeriodsMs[] = {1, 10, 100, 1000};

void file_op(BenchEnv& env) { sack::simbench::wl_open_close(env); }

std::unique_ptr<BenchEnv> make_env() {
  EnvOptions options;
  options.mac = BenchMac::independent_sack;
  options.sack_policy = sack::simbench::speed_gate_policy();
  return std::make_unique<BenchEnv>(options);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  // Calibrate: how many workload ops fit in one millisecond?
  auto calibration_env = make_env();
  double ops_per_ms;
  {
    constexpr int kCalibrationOps = 20000;
    sack::MonotonicTimer timer;
    for (int i = 0; i < kCalibrationOps; ++i) file_op(*calibration_env);
    ops_per_ms = kCalibrationOps / timer.elapsed_ms();
  }

  std::vector<std::unique_ptr<BenchEnv>> envs;

  envs.push_back(make_env());
  {
    BenchEnv* env = envs.back().get();
    benchmark::RegisterBenchmark("file_ops/no_transitions",
                                 [env](benchmark::State& s) {
                                   for (auto _ : s) file_op(*env);
                                 })
        ->MinTime(0.1);
  }

  for (long period_ms : kPeriodsMs) {
    envs.push_back(make_env());
    BenchEnv* env = envs.back().get();
    long ops_per_period =
        std::max(1L, static_cast<long>(ops_per_ms * static_cast<double>(period_ms)));
    std::string name = "file_ops/period_ms" + std::to_string(period_ms);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [env, ops_per_period](benchmark::State& s) {
          // The "SDS": a root process flipping the speed situation through
          // SACKfs every ops_per_period workload operations.
          auto sds = env->root_process();
          long counter = 0;
          bool high = false;
          for (auto _ : s) {
            file_op(*env);
            if (++counter >= ops_per_period) {
              counter = 0;
              high = !high;
              auto rc = sds.write_existing(
                  "/sys/kernel/security/SACK/events",
                  high ? "high_speed_entered\n" : "low_speed_entered\n");
              if (!rc.ok()) s.SkipWithError("event transmission failed");
            }
          }
        })
        ->MinTime(0.1);
  }

  sack::simbench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::printf("\n=== Fig 3(b): runtime overhead vs situation transition "
              "period (independent SACK) ===\n");
  std::printf("(calibrated workload rate: %.0f ops/ms)\n", ops_per_ms);
  double baseline = reporter.ns("file_ops/no_transitions");
  std::printf("%-16s %12s %12s\n", "period", "us/op", "overhead");
  std::printf("%-16s %12.3f %12s\n", "no transitions", baseline / 1000.0, "-");
  for (long period_ms : kPeriodsMs) {
    double ns =
        reporter.ns("file_ops/period_ms" + std::to_string(period_ms));
    std::printf("%-14ldms %12.3f %11.2f%%\n", period_ms, ns / 1000.0,
                sack::simbench::percent_delta(baseline, ns));
  }
  std::printf(
      "\nPaper shape check: overhead shrinks as the period grows; Fig 3(b)\n"
      "reports ~0.93%% at a 1000 ms transition period.\n");

  // Functional cross-check: the critical file flips with the situation.
  {
    auto env = make_env();
    auto proc = env->process();
    auto sds = env->root_process();
    bool low_ok =
        proc.read_file(BenchEnv::kCriticalFile).ok();
    (void)sds.write_existing("/sys/kernel/security/SACK/events",
                             "high_speed_entered\n");
    bool high_ok = proc.read_file(BenchEnv::kCriticalFile).ok();
    std::printf("\ncritical-file gate: low_speed=%s high_speed=%s\n",
                low_ok ? "allowed" : "DENIED", high_ok ? "ALLOWED" : "denied");
  }
  return 0;
}
