// Multi-threaded enforcement hot path: the AVC + snapshot-publication
// optimisation, measured end to end at the rule-set level.
//
// Three experiments, all driving the exact probe-then-match sequence
// SackModule::check_op runs:
//
//  1. single-thread guarded steady state, AVC off vs on — the per-operation
//     win of caching a verdict instead of re-walking glob rules (target:
//     >= 3x at steady state);
//  2. throughput scaling over 1..8 threads on unguarded+cached traffic —
//     the read path shares no mutable state beyond a sharded cache probe,
//     so throughput should scale with cores (flat on a 1-core box);
//  3. transition storms at Fig 3(b) frequencies (1..1000 transitions/sec)
//     racing 4 enforcement threads — adaptive revocation pressure: every
//     transition republishes the rule snapshot, bumps the generation, and
//     flushes the AVC;
//  4. the same per-stage and storm measurements with the table-driven
//     DfaRuleSet — the post-storm AVC miss is a DFA table walk instead of a
//     glob-rule scan, so storm throughput should stay within ~10% of steady
//     state — plus the Table-III shape: the 1000-rule miss-path percentiles
//     where the DFA's rule-count independence actually shows.
//
// Results print as a table and land in BENCH_mt.json (threads -> ops/sec,
// AVC hit rate; long-standing field names are stable across PRs, DFA
// results are additive fields).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <memory>

#include "core/avc.h"
#include "core/policy_parser.h"
#include "core/ruleset.h"
#include "simbench/policy_gen.h"
#include "util/clock.h"
#include "util/metrics.h"

namespace {

using sack::Errno;
using sack::core::AccessQuery;
using sack::core::AccessVectorCache;
using sack::core::CompiledRuleSet;
using sack::core::DfaRuleSet;
using sack::core::MacOp;
using sack::core::RuleSetBase;

// A glob-heavy policy: the shape where per-operation matching actually
// hurts (literal rules are already one hash probe; glob rules are the
// linear-scan tail every guarded *and* unguarded query pays).
constexpr int kStreams = 32;
constexpr int kTracksPerStream = 8;

std::string build_policy_text() {
  std::string rules_a, rules_b;
  for (int i = 0; i < kStreams; ++i) {
    rules_a += "    allow * /var/media/stream_" + std::to_string(i) +
               "/** read getattr;\n";
    // ALT swaps every second stream to write-only: a real verdict change.
    rules_b += i % 2 ? "    allow * /var/media/stream_" + std::to_string(i) +
                           "/** read getattr;\n"
                     : "    allow * /var/media/stream_" + std::to_string(i) +
                           "/** write;\n";
  }
  return "states { cruising = 0; parked = 1; }\n"
         "initial cruising;\n"
         "transitions { cruising -> parked on stop; parked -> cruising on "
         "go; }\n"
         "permissions { STREAMING; PARKED_MEDIA; }\n"
         "state_per { cruising: STREAMING; parked: PARKED_MEDIA; }\n"
         "per_rules {\n  STREAMING {\n" +
         rules_a + "  }\n  PARKED_MEDIA {\n" + rules_b + "  }\n}\n";
}

// The same sequence as SackModule::check_op: read the generation, probe the
// AVC, fall back to the rule walk, insert under the pre-read stamp. The
// matcher behind the walk is pluggable so the compiled and DFA rule sets run
// the identical harness.
struct Enforcer {
  std::unique_ptr<RuleSetBase> rules;
  AccessVectorCache avc{8192};
  std::atomic<std::uint64_t> generation{1};
  bool use_avc = true;

  Errno check(const AccessQuery& q) {
    const std::uint64_t gen = generation.load(std::memory_order_acquire);
    if (use_avc) {
      if (auto cached = avc.probe(q, gen)) return *cached;
    }
    Errno rc = rules->check(q);
    if (use_avc) avc.insert(q, gen, rc);
    return rc;
  }
};

std::vector<std::string> guarded_paths() {
  std::vector<std::string> paths;
  for (int s = 0; s < kStreams; ++s)
    for (int t = 0; t < kTracksPerStream; ++t)
      paths.push_back("/var/media/stream_" + std::to_string(s) + "/track_" +
                      std::to_string(t) + ".pcm");
  return paths;
}

std::vector<std::string> unguarded_paths() {
  std::vector<std::string> paths;
  for (int i = 0; i < 256; ++i)
    paths.push_back("/tmp/scratch/file_" + std::to_string(i));
  return paths;
}

// Drives `threads` workers over `paths` for `duration_ms`, returns total
// ops/sec. Each worker cycles its own offset so threads don't run in
// lockstep on the same key.
double run_workload(Enforcer& enf, const std::vector<std::string>& paths,
                    int threads, int duration_ms) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_ops{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::string exe = "/usr/bin/ivi_media";
      std::uint64_t ops = 0;
      std::size_t i = static_cast<std::size_t>(t) * 7;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int burst = 0; burst < 64; ++burst, ++i, ++ops) {
          AccessQuery q;
          q.subject_exe = exe;
          q.object_path = paths[i % paths.size()];
          q.op = MacOp::read;
          Errno rc = enf.check(q);
          if (rc != Errno::ok && rc != Errno::eacces) std::abort();
        }
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(total_ops.load()) / secs;
}

struct StormResult {
  double ops_per_sec = 0;
  double hit_rate = 0;
  std::uint64_t transitions = 0;
};

// Readers race a control thread that flips the active permission set (the
// APE sequence: republish snapshot, bump generation, flush AVC) at the
// given rate.
StormResult run_storm(Enforcer& enf, int threads, int transitions_per_sec,
                      int duration_ms) {
  auto paths = guarded_paths();
  auto scratch = unguarded_paths();
  paths.insert(paths.end(), scratch.begin(), scratch.end());

  enf.avc.invalidate_all();
  enf.avc.reset_stats();

  std::atomic<bool> stop{false};
  std::uint64_t transitions = 0;
  std::thread storm([&] {
    const auto period =
        std::chrono::microseconds(1'000'000 / transitions_per_sec);
    bool parked = false;
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(period);
      parked = !parked;
      enf.rules->activate(parked ? std::vector<std::string>{"PARKED_MEDIA"}
                                 : std::vector<std::string>{"STREAMING"});
      enf.generation.fetch_add(1, std::memory_order_release);
      enf.avc.invalidate_all();
      ++transitions;
    }
  });

  StormResult r;
  r.ops_per_sec = run_workload(enf, paths, threads, duration_ms);
  stop.store(true, std::memory_order_relaxed);
  storm.join();
  r.hit_rate = enf.avc.stats().hit_rate();
  r.transitions = transitions;
  // Restore the steady state for whoever runs next.
  enf.rules->activate({"STREAMING"});
  enf.generation.fetch_add(1, std::memory_order_release);
  enf.avc.invalidate_all();
  return r;
}

// Per-stage attribution: the same check sequence, timed per stage with the
// module's log2 histograms. Steady state (cache warm) so the probe numbers
// are the hit path and the walk numbers come from the miss-only warmup.
struct StageHistograms {
  sack::util::LatencyHistogram probe_ns;   // AVC probe, hit or miss
  sack::util::LatencyHistogram walk_ns;    // rule walk on AVC miss
  sack::util::LatencyHistogram total_ns;   // full check
};

void run_instrumented(Enforcer& enf, const std::vector<std::string>& paths,
                      int iterations, StageHistograms& h) {
  const std::string exe = "/usr/bin/ivi_media";
  std::size_t i = 0;
  for (int n = 0; n < iterations; ++n, ++i) {
    AccessQuery q;
    q.subject_exe = exe;
    q.object_path = paths[i % paths.size()];
    q.op = MacOp::read;
    const std::uint64_t gen =
        enf.generation.load(std::memory_order_acquire);
    const std::uint64_t t0 = sack::monotonic_ns();
    auto cached = enf.avc.probe(q, gen);
    const std::uint64_t t1 = sack::monotonic_ns();
    h.probe_ns.record(t1 - t0);
    if (!cached) {
      Errno rc = enf.rules->check(q);
      const std::uint64_t t2 = sack::monotonic_ns();
      h.walk_ns.record(t2 - t1);
      enf.avc.insert(q, gen, rc);
      h.total_ns.record(t2 - t0);
    } else {
      h.total_ns.record(t1 - t0);
    }
  }
}

}  // namespace

int main() {
  const auto parsed = sack::core::parse_policy(build_policy_text());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench policy failed to parse\n");
    return 1;
  }

  Enforcer enf;
  enf.rules = std::make_unique<CompiledRuleSet>();
  (void)enf.rules->load(parsed.policy);
  enf.rules->activate({"STREAMING"});

  const unsigned hw_threads = std::thread::hardware_concurrency();
  constexpr int kDurationMs = 250;
  const auto guarded = guarded_paths();
  const auto unguarded = unguarded_paths();

  std::printf("=== MT enforcement: AVC + snapshot publication ===\n");
  std::printf("hardware threads: %u, policy: %d glob rules active\n\n",
              hw_threads, kStreams);

  // (1) single-thread guarded steady state, AVC off vs on.
  enf.use_avc = false;
  const double off_ops = run_workload(enf, guarded, 1, kDurationMs);
  enf.use_avc = true;
  enf.avc.invalidate_all();
  enf.avc.reset_stats();
  (void)run_workload(enf, guarded, 1, 50);  // warm the cache to steady state
  const double on_ops = run_workload(enf, guarded, 1, kDurationMs);
  const double speedup = on_ops / off_ops;
  std::printf("guarded 1-thread:  AVC off %12.0f ops/s\n", off_ops);
  std::printf("guarded 1-thread:  AVC on  %12.0f ops/s   speedup %.2fx %s\n\n",
              on_ops, speedup, speedup >= 3.0 ? "(target >=3x: MET)"
                                              : "(target >=3x: MISSED)");

  // (2) thread scaling on unguarded+cached traffic.
  struct ScalePoint {
    int threads;
    double ops_per_sec;
    double hit_rate;
  };
  std::vector<ScalePoint> scaling;
  std::printf("unguarded+cached scaling:\n");
  for (int threads : {1, 2, 4, 8}) {
    enf.avc.invalidate_all();
    enf.avc.reset_stats();
    (void)run_workload(enf, unguarded, threads, 50);  // warm
    const double ops = run_workload(enf, unguarded, threads, kDurationMs);
    const double rate = enf.avc.stats().hit_rate();
    scaling.push_back({threads, ops, rate});
    std::printf("  %d thread(s): %12.0f ops/s  (avc hit rate %.3f, %.2fx "
                "of 1-thread)\n",
                threads, ops, rate, ops / scaling.front().ops_per_sec);
  }

  // (3) transition storms at Fig 3(b) frequencies.
  std::printf("\ntransition storm (4 enforcement threads):\n");
  struct StormPoint {
    int rate;
    StormResult result;
  };
  std::vector<StormPoint> storms;
  for (int rate : {1, 10, 100, 1000}) {
    auto r = run_storm(enf, 4, rate, kDurationMs);
    storms.push_back({rate, r});
    std::printf("  %4d transitions/s: %12.0f ops/s  (avc hit rate %.3f, "
                "%llu transitions taken)\n",
                rate, r.ops_per_sec, r.hit_rate,
                static_cast<unsigned long long>(r.transitions));
  }

  std::printf(
      "\nShape check: AVC-on guarded traffic should sit well above the\n"
      "rule-walk baseline (every hit replaces a glob scan with one sharded\n"
      "hash probe), throughput should grow with threads up to the core\n"
      "count, and storms should degrade hit rate gracefully rather than\n"
      "serve stale verdicts (correctness is covered by tests/test_avc.cpp).\n");

  // Per-stage latency attribution (steady-state, single thread): where a
  // check spends its time — the AVC probe vs the glob-rule walk.
  enf.avc.invalidate_all();
  enf.avc.reset_stats();
  StageHistograms stages;
  run_instrumented(enf, guarded, 200'000, stages);
  std::printf("\nper-stage latency (guarded, steady state):\n");
  std::printf("  avc_probe:    %s\n", stages.probe_ns.summary().c_str());
  std::printf("  matcher_walk: %s\n", stages.walk_ns.summary().c_str());
  std::printf("  check_total:  %s\n", stages.total_ns.summary().c_str());

  // (4) the table-driven matcher through the identical harness.
  Enforcer dfa_enf;
  {
    auto dfa_rules = std::make_unique<DfaRuleSet>();
    (void)dfa_rules->load(parsed.policy);
    dfa_rules->activate({"STREAMING"});
    if (!dfa_rules->table_driven())
      std::fprintf(stderr, "warning: stream policy fell back to scan\n");
    dfa_enf.rules = std::move(dfa_rules);
  }

  // Per-stage attribution with the DFA: matcher_walk becomes one table walk
  // over the path plus mask intersections.
  StageHistograms dfa_stages;
  run_instrumented(dfa_enf, guarded, 200'000, dfa_stages);
  std::printf("\nper-stage latency (dfa matcher, guarded, steady state):\n");
  std::printf("  avc_probe:    %s\n", dfa_stages.probe_ns.summary().c_str());
  std::printf("  dfa_match:    %s\n", dfa_stages.walk_ns.summary().c_str());
  std::printf("  check_total:  %s\n", dfa_stages.total_ns.summary().c_str());

  // DFA storm vs steady state: activation is a mask swap and every
  // post-flush AVC miss re-runs only the table walk, so the worst storm
  // should cost ~10% of throughput, not ~40%.
  dfa_enf.avc.invalidate_all();
  dfa_enf.avc.reset_stats();
  (void)run_workload(dfa_enf, guarded, 4, 50);  // warm
  const double dfa_steady_ops = run_workload(dfa_enf, guarded, 4, kDurationMs);
  std::printf("\ndfa steady state (4 threads): %12.0f ops/s\n",
              dfa_steady_ops);
  std::printf("dfa transition storm (4 enforcement threads):\n");
  std::vector<StormPoint> dfa_storms;
  for (int rate : {1, 10, 100, 1000}) {
    auto r = run_storm(dfa_enf, 4, rate, kDurationMs);
    dfa_storms.push_back({rate, r});
    std::printf("  %4d transitions/s: %12.0f ops/s  (%.1f%% of steady, avc "
                "hit rate %.3f, %llu transitions)\n",
                rate, r.ops_per_sec, 100.0 * r.ops_per_sec / dfa_steady_ops,
                r.hit_rate,
                static_cast<unsigned long long>(r.transitions));
  }

  // Table-III shape: the 1000-rule policy's *miss* path — the number that
  // motivates the DFA. No AVC: every check is a full decision.
  auto table3_policy = sack::simbench::sack_policy_with_rules(1000, false);
  DfaRuleSet dfa_1000;
  dfa_1000.load(table3_policy);
  dfa_1000.activate({"BULK"});
  CompiledRuleSet compiled_1000;
  compiled_1000.load(table3_policy);
  compiled_1000.activate({"BULK"});
  sack::util::LatencyHistogram dfa_miss_ns, compiled_miss_ns;
  {
    std::vector<std::string> miss_paths;
    for (int i = 0; i < 64; ++i)
      miss_paths.push_back("/var/rules/object_" + std::to_string(i * 7));
    AccessQuery q;
    q.subject_exe = "/usr/bin/media_app";
    q.op = MacOp::read;
    for (int n = 0; n < 200'000; ++n) {
      q.object_path = miss_paths[static_cast<std::size_t>(n) %
                                 miss_paths.size()];
      const std::uint64_t t0 = sack::monotonic_ns();
      Errno rc = dfa_1000.check(q);
      const std::uint64_t t1 = sack::monotonic_ns();
      Errno rc2 = compiled_1000.check(q);
      const std::uint64_t t2 = sack::monotonic_ns();
      dfa_miss_ns.record(t1 - t0);
      compiled_miss_ns.record(t2 - t1);
      if (rc != rc2) std::abort();  // the oracle's job, but never run blind
    }
  }
  std::printf("\n1000-rule miss path (no AVC):\n");
  std::printf("  dfa check:      %s\n", dfa_miss_ns.summary().c_str());
  std::printf("  compiled check: %s  (target: dfa p50 <= 300 ns %s)\n",
              compiled_miss_ns.summary().c_str(),
              dfa_miss_ns.percentile_ns(50) <= 300.0 ? "MET" : "MISSED");

  // Machine-readable trajectory for future PRs.
  std::ofstream json("BENCH_mt.json");
  json << "{\n"
       << "  \"hardware_threads\": " << hw_threads << ",\n"
       << "  \"single_thread_guarded\": {\n"
       << "    \"avc_off_ops_per_sec\": " << static_cast<long long>(off_ops)
       << ",\n"
       << "    \"avc_on_ops_per_sec\": " << static_cast<long long>(on_ops)
       << ",\n"
       << "    \"speedup\": " << speedup << "\n  },\n"
       << "  \"scaling_unguarded_cached\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    json << "    {\"threads\": " << scaling[i].threads << ", \"ops_per_sec\": "
         << static_cast<long long>(scaling[i].ops_per_sec)
         << ", \"avc_hit_rate\": " << scaling[i].hit_rate << "}"
         << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"transition_storm\": [\n";
  for (std::size_t i = 0; i < storms.size(); ++i) {
    json << "    {\"transitions_per_sec\": " << storms[i].rate
         << ", \"threads\": 4, \"ops_per_sec\": "
         << static_cast<long long>(storms[i].result.ops_per_sec)
         << ", \"avc_hit_rate\": " << storms[i].result.hit_rate
         << ", \"transitions_taken\": " << storms[i].result.transitions << "}"
         << (i + 1 < storms.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"per_stage\": {\n"
       << "    \"avc_probe_ns\": " << stages.probe_ns.json() << ",\n"
       << "    \"matcher_walk_ns\": " << stages.walk_ns.json() << ",\n"
       << "    \"check_total_ns\": " << stages.total_ns.json() << "\n  },\n";
  json << "  \"per_stage_dfa\": {\n"
       << "    \"avc_probe_ns\": " << dfa_stages.probe_ns.json() << ",\n"
       << "    \"dfa_match_ns\": " << dfa_stages.walk_ns.json() << ",\n"
       << "    \"check_total_ns\": " << dfa_stages.total_ns.json()
       << "\n  },\n";
  json << "  \"dfa_steady_ops_per_sec\": "
       << static_cast<long long>(dfa_steady_ops) << ",\n"
       << "  \"transition_storm_dfa\": [\n";
  for (std::size_t i = 0; i < dfa_storms.size(); ++i) {
    json << "    {\"transitions_per_sec\": " << dfa_storms[i].rate
         << ", \"threads\": 4, \"ops_per_sec\": "
         << static_cast<long long>(dfa_storms[i].result.ops_per_sec)
         << ", \"fraction_of_steady\": "
         << dfa_storms[i].result.ops_per_sec / dfa_steady_ops
         << ", \"avc_hit_rate\": " << dfa_storms[i].result.hit_rate
         << ", \"transitions_taken\": " << dfa_storms[i].result.transitions
         << "}" << (i + 1 < dfa_storms.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"dfa_miss_1000_rules\": {\n"
       << "    \"dfa_check_ns\": " << dfa_miss_ns.json() << ",\n"
       << "    \"compiled_check_ns\": " << compiled_miss_ns.json()
       << "\n  }\n";
  json << "}\n";
  std::printf("\nwrote BENCH_mt.json\n");
  return 0;
}
