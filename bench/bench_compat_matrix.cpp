// E7 / §IV-D compatibility: 10 distinct SACK policies, each loaded into a
// system stacked as CONFIG_LSM="sack,apparmor" with the default AppArmor
// profiles, for both independent SACK and SACK-enhanced AppArmor. For every
// cell we verify (a) the policy loads, (b) baseline app behaviour still
// works under AppArmor, (c) situation transitions keep working, and we
// report the policy load + transition times.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ivi/ivi_system.h"
#include "simbench/policy_gen.h"
#include "util/clock.h"

namespace {

using sack::ivi::IviSystem;
using sack::ivi::MacConfig;

struct CellResult {
  bool load_ok = false;
  bool apparmor_ok = false;
  bool transition_ok = false;
  double load_us = 0;
  double transition_us = 0;

  bool pass() const { return load_ok && apparmor_ok && transition_ok; }
};

CellResult run_cell(MacConfig mac, const sack::core::SackPolicy& policy) {
  CellResult cell;
  IviSystem ivi({.mac = mac});

  sack::core::SackPolicy to_load = policy;
  if (mac == MacConfig::sack_enhanced_apparmor) {
    // Enhanced mode needs @profile subjects; retarget every rule at the
    // media_app profile (the object space is what varies per policy).
    for (auto& [perm, rules] : to_load.per_rules) {
      for (auto& rule : rules) {
        rule.subject_kind = sack::core::SubjectKind::profile;
        rule.subject_text = "media_app";
      }
    }
  }

  sack::MonotonicTimer load_timer;
  cell.load_ok = ivi.sack()->load_policy(to_load).ok();
  cell.load_us = load_timer.elapsed_us();
  if (!cell.load_ok) return cell;

  // AppArmor still enforces its default profiles underneath.
  cell.apparmor_ok =
      ivi.apparmor() != nullptr &&
      ivi.apparmor()->find_profile("media_app") != nullptr &&
      ivi.media().play_track(IviSystem::kMediaTrack).ok() &&
      ivi.attacker().inject_vehicle_control().all_denied();

  sack::MonotonicTimer transition_timer;
  bool t1 = ivi.sds().send_event("enter_special").ok();
  cell.transition_us = transition_timer.elapsed_us();
  bool t2 = ivi.sds().send_event("leave_special").ok();
  cell.transition_ok = t1 && t2 && ivi.situation() == "normal";
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::Shutdown();

  auto policies = sack::simbench::compatibility_policies();

  std::printf("=== Compatibility matrix: 10 SACK policies x default AppArmor "
              "profiles (LSM stacking: sack,apparmor) ===\n\n");
  std::printf("%-4s %-16s | %-28s | %-28s\n", "#", "policy",
              "independent SACK", "SACK-enhanced AppArmor");
  std::printf("%.*s\n", 84,
              "-----------------------------------------------------------------"
              "--------------------");

  int pass_count = 0;
  for (std::size_t i = 0; i < policies.size(); ++i) {
    std::string name = policies[i].permissions.empty()
                           ? "policy" + std::to_string(i)
                           : policies[i].permissions[0];
    CellResult indep = run_cell(MacConfig::stacked_independent, policies[i]);
    CellResult enh = run_cell(MacConfig::sack_enhanced_apparmor, policies[i]);
    auto fmt = [](const CellResult& c) {
      static char buf[64];
      std::snprintf(buf, sizeof buf, "%s (load %5.1fus, trans %5.1fus)",
                    c.pass() ? "PASS" : "FAIL", c.load_us, c.transition_us);
      return std::string(buf);
    };
    std::printf("%-4zu %-16s | %-28s | %-28s\n", i, name.c_str(),
                fmt(indep).c_str(), fmt(enh).c_str());
    if (indep.pass() && enh.pass()) ++pass_count;
  }
  std::printf("\n%d/10 policies work with the default AppArmor policies in "
              "both modes.\n",
              pass_count);
  std::printf(
      "\nPaper shape check: all 10 SACK policies coexist with the default\n"
      "AppArmor profiles under whitelist-based LSM stacking (SACK first).\n");
  return pass_count == 10 ? 0 : 1;
}
