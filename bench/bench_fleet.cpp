// Fleet control-plane benchmark: scale and convergence.
//
// Part 1 — scale sweep. For fleet sizes 1 → 10k vehicles (each a full
// kernel + SACK module stack): sharded boot time, aggregate enforcement
// throughput through the batch check API, rollout convergence time for a
// verify-gated benign update, and rollback latency for a health-gated
// regression (the "bad" policy that verifies clean but denies the fleet's
// media workload).
//
// Part 2 — chaos campaign. >= 200 seeded trials with every fleet.* fault
// site armed (push drops/delays, activation failures, vehicle crashes).
// Invariants the suite relies on, asserted here and by the CI smoke job:
// every trial ends fully rolled out or fully rolled back (zero
// mixed-version vehicles), rollback is exercised at least once, and the
// rollback-equivalence oracle reports zero verdict mismatches.
//
// Deterministic modulo wall-clock timing fields. Results land in
// BENCH_fleet.json; `--fast` shrinks fleet sizes and workloads for CI.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/rollout.h"
#include "util/clock.h"
#include "util/fault.h"
#include "util/log.h"

namespace {

using namespace sack;
using namespace sack::fleet;
using sack::util::FaultInjector;
using sack::util::FaultSpec;

PolicyVersion must_version(std::uint64_t version, std::string text) {
  auto pv = make_policy_version(version, std::move(text));
  if (!pv.ok()) {
    std::fprintf(stderr, "bench_fleet: built-in policy failed to parse\n");
    std::exit(1);
  }
  return std::move(pv).value();
}

struct SizeResult {
  std::size_t vehicles = 0;
  std::size_t shards = 0;
  double boot_ms = 0;
  double checks_per_sec = 0;
  std::uint64_t workload_checks = 0;
  double rollout_convergence_ms = 0;
  double rollback_ms = 0;
  std::size_t mixed_after_rollout = 0;
  std::size_t mixed_after_rollback = 0;
  std::size_t equivalence_mismatches = 0;
};

SizeResult run_size(std::size_t vehicles, std::uint64_t target_checks) {
  SizeResult r;
  r.vehicles = vehicles;

  FleetConfig fc;
  fc.vehicles = vehicles;
  fc.start_sds = false;  // isolate enforcement + control-plane cost
  const std::uint64_t boot0 = monotonic_ns();
  Fleet fleet(fc, must_version(1, fleet_policy_v1()));
  r.boot_ms = static_cast<double>(monotonic_ns() - boot0) / 1e6;
  r.shards = fleet.shards();

  // Aggregate check throughput: every vehicle runs the standard mixed
  // workload (6 checks/round through the batch API) on the shard threads.
  const std::size_t rounds = std::max<std::size_t>(
      4, target_checks / (6 * std::max<std::size_t>(vehicles, 1)));
  std::atomic<std::uint64_t> checks{0};
  const std::uint64_t work0 = monotonic_ns();
  fleet.for_each([rounds, &checks](Vehicle& vehicle) {
    auto stats = vehicle.run_workload(rounds);
    checks.fetch_add(stats.checks, std::memory_order_relaxed);
  });
  const double work_s =
      static_cast<double>(monotonic_ns() - work0) / 1e9;
  r.workload_checks = checks.load();
  r.checks_per_sec =
      work_s > 0 ? static_cast<double>(r.workload_checks) / work_s : 0;

  // Rollout convergence: benign update through the full control plane
  // (verify gate without the oracle — its cost is size-independent and
  // bench_verify owns it).
  RolloutConfig rc;
  rc.run_oracle = false;
  RolloutController controller(fleet, rc);
  auto rollout = controller.roll_out(must_version(2, fleet_policy_v2()));
  if (rollout.outcome != RolloutOutcome::committed) {
    std::fprintf(stderr, "bench_fleet: benign rollout did not commit\n");
    std::exit(1);
  }
  r.rollout_convergence_ms =
      static_cast<double>(rollout.convergence_ns) / 1e6;
  r.mixed_after_rollout = rollout.mixed_version_vehicles;

  // Rollback latency: the regression is caught at the canary and the fleet
  // must return to the retained v2 snapshot.
  auto rollback = controller.roll_out(must_version(3, fleet_policy_bad()));
  if (rollback.outcome != RolloutOutcome::rolled_back) {
    std::fprintf(stderr, "bench_fleet: bad rollout was not rolled back\n");
    std::exit(1);
  }
  r.rollback_ms = static_cast<double>(rollback.rollback_ns) / 1e6;
  r.mixed_after_rollback = rollback.mixed_version_vehicles;
  r.equivalence_mismatches = rollback.equivalence_mismatches;
  return r;
}

struct CampaignResult {
  int trials = 0;
  int commits = 0;
  int rollbacks = 0;
  int non_converged = 0;
  std::uint64_t push_drops = 0;
  std::uint64_t push_delays = 0;
  std::uint64_t activation_failures = 0;
  std::uint64_t crashes = 0;
  std::uint64_t forced_reboots = 0;
  std::uint64_t equivalence_checked = 0;
  std::uint64_t equivalence_mismatches = 0;
};

CampaignResult run_campaign(int trials, std::size_t vehicles) {
  CampaignResult c;
  c.trials = trials;
  auto& fi = FaultInjector::instance();
  for (int trial = 0; trial < trials; ++trial) {
    fi.reset();
    const auto seed = 0x5ac4f1ULL + static_cast<std::uint64_t>(trial);
    FaultSpec drop;
    drop.probability = 0.25;
    drop.seed = seed;
    FaultSpec delay;
    delay.probability = 0.25;
    delay.seed = seed ^ 0xde1a7ULL;
    FaultSpec crash;
    crash.probability = 0.08;
    crash.seed = seed ^ 0xc4a54ULL;
    FaultSpec activate;
    activate.probability = 0.15;
    activate.seed = seed ^ 0xac7ULL;
    activate.error = Errno::eio;
    fi.arm("fleet.push.drop", drop);
    fi.arm("fleet.push.delay", delay);
    fi.arm("fleet.vehicle.crash", crash);
    fi.arm("fleet.activate.fail", activate);

    FleetConfig fc;
    fc.vehicles = vehicles;
    fc.shards = 1;  // serial: fault draws replay from the trial seed
    fc.start_sds = false;
    Fleet fleet(fc, must_version(1, fleet_policy_v1()));
    RolloutConfig rc;
    rc.run_oracle = false;
    RolloutController controller(fleet, rc);

    // Every fifth trial ships the health regression.
    const bool bad = trial % 5 == 4;
    auto report = controller.roll_out(
        must_version(2, bad ? fleet_policy_bad() : fleet_policy_v2()));

    if (report.outcome == RolloutOutcome::rolled_back)
      ++c.rollbacks;
    else if (report.outcome == RolloutOutcome::committed)
      ++c.commits;
    c.push_drops += report.push_drops;
    c.push_delays += report.push_delays;
    c.activation_failures += report.activation_failures;
    c.crashes += report.crashes;
    c.forced_reboots += report.forced_reboots;
    c.equivalence_checked += report.equivalence_checked;
    c.equivalence_mismatches += report.equivalence_mismatches;

    const std::uint64_t final_version =
        report.outcome == RolloutOutcome::committed ? 2u : 1u;
    const bool converged = report.fully_converged &&
                           report.mixed_version_vehicles == 0 &&
                           fleet.converged_on(final_version) &&
                           report.equivalence_mismatches == 0;
    if (!converged) {
      ++c.non_converged;
      std::fprintf(stderr, "trial %d NOT converged: %s\n", trial,
                   report.to_json().c_str());
    }
  }
  fi.reset();
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  // Rollback trials log an expected warning each; keep the table readable.
  sack::Logger::instance().set_level(sack::LogLevel::error);
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  std::vector<std::size_t> sizes =
      fast ? std::vector<std::size_t>{1, 100, 1000}
           : std::vector<std::size_t>{1, 100, 1000, 10000};
  const std::uint64_t target_checks = fast ? 120'000 : 600'000;

  std::printf(
      "=== fleet scale sweep ===\n"
      "%8s %7s %10s %14s %14s %12s\n",
      "vehicles", "shards", "boot_ms", "checks/sec", "rollout_ms",
      "rollback_ms");
  std::vector<SizeResult> results;
  for (std::size_t n : sizes) {
    auto r = run_size(n, target_checks);
    std::printf("%8zu %7zu %10.1f %14.0f %14.2f %12.3f\n", r.vehicles,
                r.shards, r.boot_ms, r.checks_per_sec,
                r.rollout_convergence_ms, r.rollback_ms);
    results.push_back(r);
  }

  const int trials = 200;
  const std::size_t campaign_vehicles = fast ? 4 : 8;
  auto campaign = run_campaign(trials, campaign_vehicles);
  std::printf(
      "=== rollout chaos campaign: %d trials x %zu vehicles ===\n"
      "commits %d  rollbacks %d  non_converged %d\n"
      "push_drops %llu  push_delays %llu  activation_failures %llu  "
      "crashes %llu  forced_reboots %llu\n"
      "equivalence: %llu fingerprints checked, %llu mismatches\n",
      trials, campaign_vehicles, campaign.commits, campaign.rollbacks,
      campaign.non_converged,
      static_cast<unsigned long long>(campaign.push_drops),
      static_cast<unsigned long long>(campaign.push_delays),
      static_cast<unsigned long long>(campaign.activation_failures),
      static_cast<unsigned long long>(campaign.crashes),
      static_cast<unsigned long long>(campaign.forced_reboots),
      static_cast<unsigned long long>(campaign.equivalence_checked),
      static_cast<unsigned long long>(campaign.equivalence_mismatches));

  std::ofstream json("BENCH_fleet.json");
  json << "{\n  \"fast\": " << (fast ? "true" : "false")
       << ",\n  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"vehicles\": " << r.vehicles
         << ", \"shards\": " << r.shards << ", \"boot_ms\": " << r.boot_ms
         << ", \"checks_per_sec\": " << r.checks_per_sec
         << ", \"workload_checks\": " << r.workload_checks
         << ", \"rollout_convergence_ms\": " << r.rollout_convergence_ms
         << ", \"rollback_ms\": " << r.rollback_ms
         << ", \"mixed_after_rollout\": " << r.mixed_after_rollout
         << ", \"mixed_after_rollback\": " << r.mixed_after_rollback
         << ", \"equivalence_mismatches\": " << r.equivalence_mismatches
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"campaign\": {\"trials\": " << campaign.trials
       << ", \"commits\": " << campaign.commits
       << ", \"rollbacks\": " << campaign.rollbacks
       << ", \"non_converged\": " << campaign.non_converged
       << ", \"push_drops\": " << campaign.push_drops
       << ", \"push_delays\": " << campaign.push_delays
       << ", \"activation_failures\": " << campaign.activation_failures
       << ", \"crashes\": " << campaign.crashes
       << ", \"forced_reboots\": " << campaign.forced_reboots
       << ", \"equivalence_checked\": " << campaign.equivalence_checked
       << ", \"equivalence_mismatches\": " << campaign.equivalence_mismatches
       << "}\n}\n";
  std::printf("wrote BENCH_fleet.json\n");

  const bool sane =
      campaign.non_converged == 0 && campaign.rollbacks > 0 &&
      campaign.commits > 0 && campaign.equivalence_mismatches == 0;
  if (!sane) {
    std::fprintf(stderr, "bench_fleet: campaign invariants violated\n");
    return 1;
  }
  return 0;
}
