// Analyzer-cost benchmark for sack-racecheck.
//
// Two sweeps:
//
//   tree       the shipped tree against docs/concurrency_manifest.toml,
//              repeated; reports best-of-N wall time plus the parse/check
//              split so the CI smoke can assert the gate stays cheap enough
//              to run on every build (and that the shipped tree stays
//              clean);
//   synthetic  generated trees of N guarded classes (each with a mutex, an
//              annotated field, a lock-holding writer, and an RCU cell with
//              a loader) through the in-memory pipeline, so lockset and
//              snapshot-discipline scaling is visible independently of repo
//              size.
//
// Deterministic; results land in BENCH_racecheck.json. `--fast` runs
// reduced sizes for CI smoke.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/racecheck.h"

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct SyntheticTree {
  std::string manifest;
  std::vector<std::pair<std::string, std::string>> sources;
};

// N classes, each a guarded cache plus an RCU-published snapshot. Every
// class contributes a declared lock class, a guarded field, a lock-holding
// mutator, a snapshot decision function, and a cross-TU caller — so all
// three pass families do real work per class.
SyntheticTree make_tree(int n) {
  SyntheticTree t;
  t.manifest =
      "[racecheck]\n"
      "sources = [\"src\"]\n"
      "lockfree_types = [\"atomic\", \"RcuPtr\"]\n\n";
  std::string header = "namespace bench {\n";
  std::string impl = "#include \"src/tree.h\"\nnamespace bench {\n";
  for (int i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    header += "class Cache" + id +
              " {\n"
              " public:\n"
              "  void put(int v);\n"
              "  int decide() const;\n"
              " private:\n"
              "  mutable util::Mutex mu_;\n"
              "  int entries_" + id + "_ SACK_GUARDED_BY(mu_);\n"
              "  util::RcuPtr<const Snap> snap_;\n"
              "  std::atomic<int> hits_;\n"
              "};\n";
    impl += "void Cache" + id +
            "::put(int v) {\n"
            "  MutexLock lock(mu_);\n"
            "  entries_" + id + "_ = v;\n"
            "}\n"
            "int Cache" + id +
            "::decide() const {\n"
            "  auto s = snap_.load();\n"
            "  return s ? s->value : 0;\n"
            "}\n"
            "void drive_" + id + "(Cache" + id +
            "& c) {\n"
            "  c.put(1);\n"
            "  (void)c.decide();\n"
            "}\n";
    t.manifest += "[guarded.cache" + id + "]\nclass = \"Cache" + id +
                  "\"\nmutexes = [\"mu_\"]\n\n[rcu.snap" + id +
                  "]\ncell = \"snap_\"\nclass = \"Cache" + id +
                  "\"\nimmutable = true\n\n";
  }
  header += "}\n";
  impl += "}\n";
  t.sources = {{"src/tree.h", std::move(header)},
               {"src/tree.cpp", std::move(impl)}};
  return t;
}

struct SyntheticRow {
  int classes = 0;
  std::size_t functions = 0;
  std::size_t guarded_fields = 0;
  std::size_t rcu_cells = 0;
  double ms = 0;
  std::size_t errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  bool all_ok = true;

  // --- sweep 1: the shipped tree --------------------------------------
  const int reps = fast ? 3 : 10;
  const std::string root = SACK_SOURCE_DIR;
  sack::analysis::RacecheckResult tree;
  double best_ms = 0;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto r = sack::analysis::run_racecheck(
        root, root + "/docs/concurrency_manifest.toml");
    double ms = elapsed_ms(t0);
    if (i == 0 || ms < best_ms) best_ms = ms;
    tree = std::move(r);
  }
  if (!tree.ok()) {
    std::fprintf(stderr, "fatal: %s\n", tree.fatal.c_str());
    return 1;
  }
  all_ok = all_ok && tree.errors() == 0;
  std::printf(
      "tree: %zu files %zu functions %zu classes %zu guarded fields "
      "%zu rcu cells %zu fault sites  best %.2f ms (parse %.2f + check "
      "%.2f)  %zu error(s)\n",
      tree.stats.files, tree.stats.functions, tree.stats.classes,
      tree.stats.guarded_fields, tree.stats.rcu_cells,
      tree.stats.fault_sites_registered, best_ms, tree.stats.parse_ms,
      tree.stats.check_ms, tree.errors());

  // --- sweep 2: synthetic scaling -------------------------------------
  const std::vector<int> sizes =
      fast ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024};
  std::vector<SyntheticRow> rows;
  for (int n : sizes) {
    SyntheticTree t = make_tree(n);
    auto t0 = std::chrono::steady_clock::now();
    auto r = sack::analysis::run_racecheck_on_sources(
        t.manifest, "synthetic.toml", t.sources);
    SyntheticRow row;
    row.classes = n;
    row.ms = elapsed_ms(t0);
    if (!r.ok()) {
      std::fprintf(stderr, "fatal: %s\n", r.fatal.c_str());
      return 1;
    }
    row.functions = r.stats.functions;
    row.guarded_fields = r.stats.guarded_fields;
    row.rcu_cells = r.stats.rcu_cells;
    row.errors = r.errors();
    all_ok = all_ok && row.errors == 0 &&
             row.guarded_fields == static_cast<std::size_t>(n) &&
             row.rcu_cells == static_cast<std::size_t>(n);
    std::printf(
        "synthetic %5d classes: %8.2f ms  (%zu functions, %zu guarded "
        "fields, %zu rcu cells, %zu errors)\n",
        n, row.ms, row.functions, row.guarded_fields, row.rcu_cells,
        row.errors);
    rows.push_back(row);
  }

  std::printf("shape check: %s\n", all_ok ? "OK" : "FAILED");

  std::ofstream json("BENCH_racecheck.json");
  json << "{\n  \"fast\": " << (fast ? "true" : "false") << ",\n";
  json << "  \"tree\": {\"files\": " << tree.stats.files
       << ", \"functions\": " << tree.stats.functions
       << ", \"classes\": " << tree.stats.classes
       << ", \"guarded_fields\": " << tree.stats.guarded_fields
       << ", \"rcu_cells\": " << tree.stats.rcu_cells
       << ", \"fault_sites\": " << tree.stats.fault_sites_registered
       << ", \"best_ms\": " << best_ms
       << ", \"parse_ms\": " << tree.stats.parse_ms
       << ", \"check_ms\": " << tree.stats.check_ms
       << ", \"errors\": " << tree.errors() << "},\n";
  json << "  \"synthetic\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << (i ? ", " : "") << "{\"classes\": " << r.classes
         << ", \"functions\": " << r.functions
         << ", \"guarded_fields\": " << r.guarded_fields
         << ", \"rcu_cells\": " << r.rcu_cells << ", \"ms\": " << r.ms
         << ", \"errors\": " << r.errors << "}";
  }
  json << "]\n}\n";
  std::printf("wrote BENCH_racecheck.json\n");
  return all_ok ? 0 : 1;
}
