// A2 ablation (design choice from §III-E): table-driven DFA vs compiled,
// indexed rule set vs a naive linear scan, as a function of loaded rule
// count. This is the mechanism behind Table III's flat overhead — with a
// linear matcher the guard check alone would scale with policy size; the
// DFA makes even the miss path independent of rule count (one table walk
// over the path bytes). The AVC column layers the access vector cache
// (core/avc.h) on top of each matcher: at steady state the decision
// collapses to one sharded hash probe regardless of matcher.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>

#include "core/avc.h"
#include "core/ruleset.h"
#include "simbench/capture.h"
#include "simbench/policy_gen.h"

namespace {

using sack::core::AccessQuery;
using sack::core::AccessVectorCache;
using sack::core::CompiledRuleSet;
using sack::core::DfaRuleSet;
using sack::core::LinearRuleSet;
using sack::core::MacOp;
using sack::core::RuleSetBase;

constexpr int kRuleCounts[] = {10, 100, 1000};

AccessQuery query(std::string_view object, MacOp op) {
  AccessQuery q;
  q.subject_exe = "/usr/bin/media_app";
  q.object_path = object;
  q.op = op;
  return q;
}

void register_checks(RuleSetBase* rs, const std::string& tag) {
  // Three probe classes: a guarded literal hit, a guarded miss (different
  // op), and the hot-path common case — an unguarded object.
  benchmark::RegisterBenchmark(
      ("guarded_hit/" + tag).c_str(),
      [rs](benchmark::State& s) {
        auto q = query("/var/rules/object_5", MacOp::read);
        for (auto _ : s) benchmark::DoNotOptimize(rs->check(q));
      })
      ->MinTime(0.05);
  benchmark::RegisterBenchmark(
      ("guarded_denied/" + tag).c_str(),
      [rs](benchmark::State& s) {
        auto q = query("/var/rules/object_5", MacOp::ioctl);
        for (auto _ : s) benchmark::DoNotOptimize(rs->check(q));
      })
      ->MinTime(0.05);
  benchmark::RegisterBenchmark(
      ("unguarded/" + tag).c_str(),
      [rs](benchmark::State& s) {
        auto q = query("/tmp/bench/scratch", MacOp::write);
        for (auto _ : s) benchmark::DoNotOptimize(rs->check(q));
      })
      ->MinTime(0.05);
  // Same guarded-hit probe through an AVC, mirroring SackModule::check_op:
  // probe, fall back to the matcher on a miss, insert. Steady state is all
  // hits, so this measures the cached decision path.
  benchmark::RegisterBenchmark(
      ("guarded_hit_avc/" + tag).c_str(),
      [rs](benchmark::State& s) {
        AccessVectorCache avc;
        std::atomic<std::uint64_t> generation{1};
        auto q = query("/var/rules/object_5", MacOp::read);
        for (auto _ : s) {
          const std::uint64_t gen = generation.load(std::memory_order_acquire);
          if (auto cached = avc.probe(q, gen)) {
            benchmark::DoNotOptimize(*cached);
            continue;
          }
          auto rc = rs->check(q);
          avc.insert(q, gen, rc);
          benchmark::DoNotOptimize(rc);
        }
      })
      ->MinTime(0.05);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<std::unique_ptr<RuleSetBase>> rulesets;
  std::vector<std::pair<std::string, std::string>> tags;  // (tag, label)

  for (int count : kRuleCounts) {
    auto policy = sack::simbench::sack_policy_with_rules(count, false);
    auto compiled = std::make_unique<CompiledRuleSet>();
    (void)compiled->load(policy);
    compiled->activate({"BULK"});
    auto linear = std::make_unique<LinearRuleSet>();
    (void)linear->load(policy);
    linear->activate({"BULK"});
    auto dfa = std::make_unique<DfaRuleSet>();
    (void)dfa->load(policy);
    dfa->activate({"BULK"});
    if (!dfa->table_driven())
      std::fprintf(stderr, "warning: %d-rule policy fell back to scan\n",
                   count);

    std::string ctag = "compiled_" + std::to_string(count);
    std::string ltag = "linear_" + std::to_string(count);
    std::string dtag = "dfa_" + std::to_string(count);
    register_checks(compiled.get(), ctag);
    register_checks(linear.get(), ltag);
    register_checks(dfa.get(), dtag);
    rulesets.push_back(std::move(compiled));
    rulesets.push_back(std::move(linear));
    rulesets.push_back(std::move(dfa));
    tags.emplace_back(ctag, "compiled/" + std::to_string(count));
    tags.emplace_back(ltag, "linear/" + std::to_string(count));
    tags.emplace_back(dtag, "dfa/" + std::to_string(count));
  }

  sack::simbench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::printf("\n=== Ablation: dfa (table) vs compiled (indexed) vs linear "
              "rule matching ===\n");
  std::printf("%-18s %14s %14s %14s %14s\n", "matcher/rules", "guarded hit",
              "guarded denied", "unguarded", "hit (AVC on)");
  for (const auto& [tag, label] : tags) {
    std::printf("%-18s %11.1f ns %11.1f ns %11.1f ns %11.1f ns\n",
                label.c_str(), reporter.ns("guarded_hit/" + tag),
                reporter.ns("guarded_denied/" + tag),
                reporter.ns("unguarded/" + tag),
                reporter.ns("guarded_hit_avc/" + tag));
  }
  std::printf(
      "\nShape check: the compiled matcher is ~flat in rule count; the\n"
      "linear matcher's cost grows linearly, which would put MAC-check\n"
      "latency on every file operation at 1000+ rules (cf. Table III).\n"
      "The DFA rows are flat in rule count on every probe class — guarded\n"
      "hit, denied, and unguarded all cost one table walk over the path.\n"
      "The AVC column is ~constant for *all* matchers at any rule count —\n"
      "a steady-state hit never reaches the matcher at all.\n");
  return 0;
}
