// Analyzer-cost benchmark for sack-hookcheck.
//
// Two sweeps:
//
//   tree       the shipped kernel tree against docs/hook_manifest.toml,
//              repeated; reports best-of-N parse and check wall time so the
//              CI smoke can assert the gate stays cheap enough to run on
//              every build (and that the shipped tree stays clean);
//   synthetic  generated trees of N syscalls (one hook + one manifest spec
//              each) through the in-memory pipeline, so extraction and
//              reachability scaling is visible independently of repo size.
//
// Deterministic; results land in BENCH_hookcheck.json. `--fast` runs
// reduced sizes for CI smoke.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/hookcheck.h"

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct SyntheticTree {
  std::string manifest;
  std::vector<std::pair<std::string, std::string>> sources;
};

// N syscalls, each dispatching its own hook and guarded by an order rule.
SyntheticTree make_tree(int n) {
  SyntheticTree t;
  std::string header =
      "namespace sack {\n"
      "class SecurityModule {\n"
      " public:\n"
      "  virtual ~SecurityModule() = default;\n";
  std::string kernel = "namespace sack {\n";
  t.manifest =
      "[hookcheck]\n"
      "sources = [\"src/kernel\"]\n"
      "hook_header = \"src/kernel/lsm/module.h\"\n\n";
  for (int i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    header += "  virtual Errno hook_" + id +
              "(int pid) { return Errno::ok; }\n";
    kernel += "Errno Kernel::sys_op_" + id +
              "(int pid) {\n"
              "  Errno rc = lsm_.check([&](SecurityModule& m) {"
              " return m.hook_" + id + "(pid); });\n"
              "  if (rc != Errno::ok) return rc;\n"
              "  table_" + id + ".install(pid);\n"
              "  return Errno::ok;\n"
              "}\n";
    t.manifest += "[syscall.sys_op_" + id + "]\nrequire = [\"hook_" + id +
                  "\"]\norder = [\"hook_" + id + " < table_" + id +
                  ".install\"]\n\n";
  }
  header += "};\n}\n";
  kernel += "}\n";
  t.sources = {{"src/kernel/lsm/module.h", std::move(header)},
               {"src/kernel/kernel.cpp", std::move(kernel)}};
  return t;
}

struct SyntheticRow {
  int syscalls = 0;
  std::size_t functions = 0;
  std::size_t dispatch_sites = 0;
  double ms = 0;
  std::size_t errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  bool all_ok = true;

  // --- sweep 1: the shipped tree --------------------------------------
  const int reps = fast ? 3 : 10;
  const std::string root = SACK_SOURCE_DIR;
  sack::analysis::HookcheckResult tree;
  double best_ms = 0;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto r = sack::analysis::run_hookcheck(root,
                                           root + "/docs/hook_manifest.toml");
    double ms = elapsed_ms(t0);
    if (i == 0 || ms < best_ms) best_ms = ms;
    tree = std::move(r);
  }
  if (!tree.ok()) {
    std::fprintf(stderr, "fatal: %s\n", tree.fatal.c_str());
    return 1;
  }
  all_ok = all_ok && tree.errors() == 0;
  std::printf(
      "tree: %zu files %zu functions %zu dispatch sites %zu entries  "
      "best %.2f ms (parse %.2f + check %.2f)  %zu error(s)\n",
      tree.stats.files, tree.stats.functions, tree.stats.dispatch_sites,
      tree.stats.entries_checked, best_ms, tree.stats.parse_ms,
      tree.stats.check_ms, tree.errors());

  // --- sweep 2: synthetic scaling -------------------------------------
  const std::vector<int> sizes =
      fast ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024};
  std::vector<SyntheticRow> rows;
  for (int n : sizes) {
    SyntheticTree t = make_tree(n);
    auto t0 = std::chrono::steady_clock::now();
    auto r = sack::analysis::run_hookcheck_on_sources(
        t.manifest, "synthetic.toml", t.sources);
    SyntheticRow row;
    row.syscalls = n;
    row.ms = elapsed_ms(t0);
    if (!r.ok()) {
      std::fprintf(stderr, "fatal: %s\n", r.fatal.c_str());
      return 1;
    }
    row.functions = r.stats.functions;
    row.dispatch_sites = r.stats.dispatch_sites;
    row.errors = r.errors();
    all_ok = all_ok && row.errors == 0 &&
             row.dispatch_sites == static_cast<std::size_t>(n);
    std::printf("synthetic %5d syscalls: %8.2f ms  (%zu functions, "
                "%zu dispatch sites, %zu errors)\n",
                n, row.ms, row.functions, row.dispatch_sites, row.errors);
    rows.push_back(row);
  }

  std::printf("shape check: %s\n", all_ok ? "OK" : "FAILED");

  std::ofstream json("BENCH_hookcheck.json");
  json << "{\n  \"fast\": " << (fast ? "true" : "false") << ",\n";
  json << "  \"tree\": {\"files\": " << tree.stats.files
       << ", \"functions\": " << tree.stats.functions
       << ", \"dispatch_sites\": " << tree.stats.dispatch_sites
       << ", \"entries\": " << tree.stats.entries_checked
       << ", \"best_ms\": " << best_ms
       << ", \"parse_ms\": " << tree.stats.parse_ms
       << ", \"check_ms\": " << tree.stats.check_ms
       << ", \"errors\": " << tree.errors() << "},\n";
  json << "  \"synthetic\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << (i ? ", " : "") << "{\"syscalls\": " << r.syscalls
         << ", \"functions\": " << r.functions
         << ", \"dispatch_sites\": " << r.dispatch_sites
         << ", \"ms\": " << r.ms << ", \"errors\": " << r.errors << "}";
  }
  json << "]\n}\n";
  std::printf("wrote BENCH_hookcheck.json\n");
  return all_ok ? 0 : 1;
}
